//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset `rtseed-trading` uses for the 24-byte tick wire
//! format: `BytesMut` with big-endian `put_*` writers, `Bytes` with
//! big-endian `get_*` readers, `freeze`, and `from_static`. Network byte
//! order matches upstream `bytes`.

/// Read access to a contiguous byte buffer, consuming from the front.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;
    /// Removes and returns the first `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads a big-endian `u64` from the front.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.copy_to_array::<8>())
    }

    /// Reads a big-endian IEEE-754 `f64` from the front.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.copy_to_array::<8>())
    }
}

/// Write access to a growable byte buffer, appending at the back.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: bytes.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.remaining() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        out
    }
}

/// A growable, writable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_is_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u64(0x0102_0304_0506_0708);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 8);
        assert_eq!(b.get_u64(), 0x0102_0304_0506_0708);
        assert!(b.is_empty());
    }

    #[test]
    fn f64_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_f64(1.25);
        buf.put_f64(-0.5);
        let mut b = buf.freeze();
        assert_eq!(b.get_f64(), 1.25);
        assert_eq!(b.get_f64(), -0.5);
    }

    #[test]
    fn from_static_and_remaining() {
        let mut b = Bytes::from_static(&[0u8; 23]);
        assert_eq!(b.remaining(), 23);
        let _: [u8; 8] = b.copy_to_array();
        assert_eq!(b.remaining(), 15);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1, 2, 3]);
        let _ = b.get_u64();
    }
}
