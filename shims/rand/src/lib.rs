//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace-local crate provides the (small) subset of the rand 0.10 API
//! the RT-Seed workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and the [`RngExt`] sampling methods `random::<T>()`
//! and `random_range(..)`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! portable, and of more than sufficient quality for simulation jitter and
//! task-set generation. It intentionally does NOT match upstream `StdRng`
//! stream-for-stream; all in-repo consumers only rely on determinism for a
//! fixed seed, never on specific values.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a full value domain (the `random::<T>()` support
/// trait; mirrors rand's `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut impl RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample(rng: &mut impl RngCore) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample(rng: &mut impl RngCore) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut impl RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`RngExt::random_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, width + 1) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

/// Unbiased uniform sample in `[0, width)` by rejection.
fn reject_sample(rng: &mut impl RngCore, width: u64) -> u64 {
    debug_assert!(width > 0);
    let zone = u64::MAX - (u64::MAX % width);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % width;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// The sampling interface (`random`, `random_range`, `random_bool`).
pub trait RngExt: RngCore {
    /// One uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// One uniformly distributed value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept for call sites written against the historical `Rng` name.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // per the xoshiro authors' recommendation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(-1.5f64..=2.5);
            assert!((-1.5..=2.5).contains(&f));
        }
    }

    #[test]
    fn unit_f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
