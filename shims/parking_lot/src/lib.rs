//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` and `Condvar` with parking_lot's API shape —
//! `lock()` returns a guard directly (no `Result`), `Condvar::wait`
//! takes `&mut MutexGuard` — implemented over `std::sync`. Poisoning is
//! transparently cleared: a panic while holding a lock does not poison
//! it for other threads, matching parking_lot semantics.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (parking_lot-shaped API over std).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds `Option<std::sync::MutexGuard>` so [`Condvar::wait`]
/// can temporarily take ownership of the std guard and hand it back
/// (std's wait consumes and returns the guard; parking_lot's mutates it
/// in place).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable (parking_lot-shaped API over std).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// guard's mutex. Spurious wakeups are possible, as with std.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
