//! Offline stand-in for the `serde` crate.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits and (behind the
//! `derive` feature, which the workspace enables) re-exports the no-op
//! derive macros from the local `serde_derive` shim. The workspace uses
//! serde purely as an annotation today; see `serde_derive` for the
//! growth path to real serialization.

/// Marker for types intended to be serializable.
pub trait Serialize {}

/// Marker for types intended to be deserializable from lifetime `'de`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
