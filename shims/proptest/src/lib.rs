//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's
//! property tests use: the `proptest!` macro (with optional
//! `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, range and `any::<T>()` strategies, `Just`, and
//! `prop::collection::vec`.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports the exact generated input
//!   (all inputs are `Debug`) plus the case index; cases are derived
//!   deterministically from the test name, so failures replay exactly.
//! - **No persistence files.** Determinism comes from the fixed seed
//!   derivation, not from `proptest-regressions/`.

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased uniform sample in `[0, width)`.
    pub fn below(&mut self, width: u64) -> u64 {
        debug_assert!(width > 0);
        let zone = u64::MAX - (u64::MAX % width);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % width;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let width = (hi - lo) as u64;
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(width + 1) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// Full-domain sampling, used by [`any`].
    pub trait Arbitrary: Sized {
        /// One uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }
    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            (rng.next_u64() >> 48) as u16
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy over the full domain of `T` (see [`any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Wraps a non-empty set of alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length ranges accepted by [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec`s of `element`-generated values with a length
    /// drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution and configuration.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::fmt::Debug;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — fails the test.
        Fail(String),
        /// Case rejected (e.g. precondition unmet) — skipped, not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (skipped) case carrying `msg`.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Executes strategies against a test closure.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner using `config`.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Runs `test` against `config.cases` inputs drawn from
        /// `strategy`. Case seeds are a pure function of `name` and the
        /// case index, so reruns are bit-identical.
        ///
        /// # Panics
        ///
        /// Panics (failing the enclosing `#[test]`) on the first case
        /// returning [`TestCaseError::Fail`], reporting the input.
        pub fn run_named<S, F>(&mut self, name: &str, strategy: S, test: F)
        where
            S: Strategy,
            S::Value: Debug,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            let base = fnv1a(name.as_bytes());
            for case in 0..self.config.cases {
                let mut rng = TestRng::new(base ^ (u64::from(case)).wrapping_mul(0xA076_1D64_78BD_642F));
                let value = strategy.generate(&mut rng);
                let repr = format!("{value:?}");
                match test(value) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest failed: {msg}\n  test: {name}, case {case}/{total}\n  input: {repr}",
                            total = self.config.cases,
                        );
                    }
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset upstream proptest accepts that this
/// workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]  // optional
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_named(
                stringify!($name),
                ($($strat,)+),
                |($($arg,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    concat!(
                        "assertion failed: ",
                        stringify!($left),
                        " == ",
                        stringify!($right),
                        "\n  left: {:?}\n  right: {:?}"
                    ),
                    l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    concat!(
                        "assertion failed: ",
                        stringify!($left),
                        " != ",
                        stringify!($right),
                        "\n  both: {:?}"
                    ),
                    l
                ),
            ));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` path alias used by `prop::collection::vec`.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_hold(a in 1u64..100, b in 5u8..=9) {
            prop_assert!((1..100).contains(&a));
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(0u8), 100u8..=255]) {
            prop_assert!(v == 0u8 || v >= 100u8, "{}", v);
        }

        #[test]
        fn vecs_respect_len(xs in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn any_works(x in any::<u64>(), flip in any::<bool>()) {
            let _ = (x, flip);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x.wrapping_add(1), x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut r1 = crate::TestRng::new(7);
        let mut r2 = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "proptest failed")]
    fn failure_reports_input() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(8));
        runner.run_named("always_fails", (0u64..10,), |(_x,)| {
            Err(crate::test_runner::TestCaseError::fail("boom"))
        });
    }
}
