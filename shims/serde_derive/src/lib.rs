//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! purely as forward-looking serialization markers — nothing takes
//! `T: Serialize` bounds or calls serde entry points yet. These derives
//! therefore expand to nothing, which keeps every annotation compiling
//! without syn/quote (unavailable offline). When real serialization
//! lands, this crate is the single place to grow actual impl generation.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
