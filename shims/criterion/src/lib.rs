//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!` — over a simple wall-clock harness: each benchmark
//! is warmed up, then timed for `sample_size` samples with an
//! auto-scaled iteration count, and the per-iteration mean/min are
//! printed. No statistics engine, plots, or baselines; numbers are
//! indicative, not criterion-grade.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark as `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Measures `routine`, auto-scaling the iteration count so each
    /// sample runs for roughly a millisecond.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: find how many iterations fill ~1 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        let mut mean_sum = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let per_iter = start.elapsed() / iters;
            mean_sum += per_iter;
            min = min.min(per_iter);
        }
        self.result = Some((mean_sum / self.samples as u32, min));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            result: None,
        };
        body(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            result: None,
        };
        body(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Ends the group (printing is incremental; this is a no-op kept for
    /// API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        match bencher.result {
            Some((mean, min)) => {
                println!("{}/{id}: mean {mean:?}/iter, min {min:?}/iter", self.name);
            }
            None => println!("{}/{id}: no measurement (iter not called)", self.name),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..100).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(smoke, trivial_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
    }
}
