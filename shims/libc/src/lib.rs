//! Offline stand-in for the `libc` crate.
//!
//! Declares exactly the glibc scheduling surface `rtseed-core`'s
//! `runtime/posix.rs` uses: `sched_setscheduler`, `sched_setaffinity`,
//! `sched_getcpu`, `sysconf`, plus the associated types and constants.
//! Layouts and constant values match glibc on x86_64/aarch64 Linux
//! (`sched_param` is one `int`; `cpu_set_t` is 1024 bits of
//! `unsigned long`).

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// C `long` (LP64).
pub type c_long = i64;
/// C `size_t`.
pub type size_t = usize;
/// POSIX process/thread id.
pub type pid_t = i32;

/// `SCHED_OTHER`: the default time-sharing policy.
pub const SCHED_OTHER: c_int = 0;
/// `SCHED_FIFO`: first-in-first-out real-time policy.
pub const SCHED_FIFO: c_int = 1;
/// Number of CPUs representable in a `cpu_set_t`.
pub const CPU_SETSIZE: c_int = 1024;
/// Operation not permitted.
pub const EPERM: c_int = 1;
/// Invalid argument.
pub const EINVAL: c_int = 22;
/// `sysconf` name for the count of online processors (glibc value).
pub const _SC_NPROCESSORS_ONLN: c_int = 84;

/// Scheduling parameters for `sched_setscheduler`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sched_param {
    /// Static priority (1–99 for the real-time policies).
    pub sched_priority: c_int,
}

/// CPU affinity mask: `CPU_SETSIZE` bits packed into `unsigned long`s,
/// matching glibc's layout on 64-bit targets.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; CPU_SETSIZE as usize / 64],
}

/// Adds `cpu` to the affinity mask `set` (the `CPU_SET` macro).
///
/// # Safety
///
/// Matches the upstream `libc` signature (declared `unsafe` there because
/// it mirrors a C macro); `cpu` must be below [`CPU_SETSIZE`].
#[allow(non_snake_case, clippy::missing_safety_doc)]
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    let (word, bit) = (cpu / 64, cpu % 64);
    if word < set.bits.len() {
        set.bits[word] |= 1u64 << bit;
    }
}

extern "C" {
    /// Sets the scheduling policy and parameters of `pid` (0 = caller).
    pub fn sched_setscheduler(pid: pid_t, policy: c_int, param: *const sched_param) -> c_int;
    /// Sets the CPU affinity mask of `pid` (0 = caller).
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    /// CPU number the caller is currently running on, or -1.
    pub fn sched_getcpu() -> c_int;
    /// POSIX runtime configuration query.
    pub fn sysconf(name: c_int) -> c_long;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sysconf_reports_cpus() {
        let n = unsafe { sysconf(_SC_NPROCESSORS_ONLN) };
        assert!(n >= 1, "{n}");
    }

    #[test]
    fn cpu_set_sets_the_right_bit() {
        let mut set = unsafe { std::mem::zeroed::<cpu_set_t>() };
        unsafe { CPU_SET(65, &mut set) };
        assert_eq!(set.bits[1], 2);
        assert_eq!(set.bits[0], 0);
    }

    #[test]
    fn getcpu_is_sane() {
        let cpu = unsafe { sched_getcpu() };
        assert!(cpu >= -1);
    }
}
