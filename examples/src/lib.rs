//! Shared helpers for the RT-Seed example binaries (see `src/bin/`).
//!
//! Run an example with e.g. `cargo run -p rtseed-examples --bin quickstart`.
