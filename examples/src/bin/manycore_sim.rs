//! Many-core exploration: sweep assignment policies on the simulated Xeon
//! Phi for a chosen np and print overheads, QoS and a trace excerpt.
//!
//!     cargo run -p rtseed-examples --bin manycore_sim -- 171

use rtseed::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let np: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(171);
    let phi = Topology::xeon_phi_3120a();
    println!("Simulated machine: {phi}");
    println!("Parallel optional parts: {np}\n");

    let task = TaskSpec::builder("τ1")
        .period(Span::from_secs(1))
        .mandatory(Span::from_millis(250))
        .windup(Span::from_millis(250))
        .optional_parts(np, Span::from_secs(1))
        .build()?;

    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "policy", "cores", "Δm", "Δb", "Δs", "Δe", "misses"
    );
    for policy in AssignmentPolicy::PAPER_POLICIES {
        let config = SystemConfig::build(
            TaskSet::new(vec![task.clone()])?,
            phi,
            policy,
        )?;
        let run = RunConfig::builder()
            .jobs(20)
            .load(BackgroundLoad::CpuMemoryLoad)
            .build()?;
        let outcome = SimExecutor::new(config, run).run();
        let means: String = OverheadKind::ALL
            .iter()
            .map(|&k| format!(" {:>12}", outcome.overheads.mean(k).to_string()))
            .collect();
        println!(
            "{:<12} {:>8}{means} {:>8}",
            policy.label(),
            policy.distinct_cores(&phi, np),
            outcome.qos.deadline_misses(),
        );
    }

    // Trace excerpt for one job under One by One.
    let config = SystemConfig::build(
        TaskSet::new(vec![task.with_optional_parts(4, Span::from_secs(1))])?,
        phi,
        AssignmentPolicy::OneByOne,
    )?;
    let run = RunConfig::builder()
        .jobs(1)
        .trace(TraceConfig::enabled())
        .build()?;
    let outcome = SimExecutor::new(config, run).run();
    println!("\nTrace of one job with np = 4 (one-by-one):");
    print!("{}", outcome.trace);
    Ok(())
}
