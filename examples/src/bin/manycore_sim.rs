//! Many-core exploration: sweep assignment policies on the simulated Xeon
//! Phi for a chosen np and print overheads, QoS and a trace excerpt.
//!
//!     cargo run -p rtseed-examples --bin manycore_sim -- 171

use rtseed::config::SystemConfig;
use rtseed::exec_sim::{SimExecutor, SimRunConfig};
use rtseed::policy::AssignmentPolicy;
use rtseed_model::{Span, TaskSet, TaskSpec, Topology};
use rtseed_sim::{BackgroundLoad, OverheadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let np: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(171);
    let phi = Topology::xeon_phi_3120a();
    println!("Simulated machine: {phi}");
    println!("Parallel optional parts: {np}\n");

    let task = TaskSpec::builder("τ1")
        .period(Span::from_secs(1))
        .mandatory(Span::from_millis(250))
        .windup(Span::from_millis(250))
        .optional_parts(np, Span::from_secs(1))
        .build()?;

    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "policy", "cores", "Δm", "Δb", "Δs", "Δe", "misses"
    );
    for policy in AssignmentPolicy::PAPER_POLICIES {
        let config = SystemConfig::build(
            TaskSet::new(vec![task.clone()])?,
            phi,
            policy,
        )?;
        let outcome = SimExecutor::new(
            config,
            SimRunConfig {
                jobs: 20,
                load: BackgroundLoad::CpuMemoryLoad,
                ..Default::default()
            },
        )
        .run();
        println!(
            "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8}",
            policy.label(),
            policy.distinct_cores(&phi, np),
            outcome.overheads.mean(OverheadKind::BeginMandatory).to_string(),
            outcome.overheads.mean(OverheadKind::BeginOptional).to_string(),
            outcome.overheads.mean(OverheadKind::SwitchToOptional).to_string(),
            outcome.overheads.mean(OverheadKind::EndOptional).to_string(),
            outcome.qos.deadline_misses(),
        );
    }

    // Trace excerpt for one job under One by One.
    let config = SystemConfig::build(
        TaskSet::new(vec![task.with_optional_parts(4, Span::from_secs(1))])?,
        phi,
        AssignmentPolicy::OneByOne,
    )?;
    let outcome = SimExecutor::new(
        config,
        SimRunConfig {
            jobs: 1,
            collect_trace: true,
            ..Default::default()
        },
    )
    .run();
    println!("\nTrace of one job with np = 4 (one-by-one):");
    print!("{}", outcome.trace);
    Ok(())
}
