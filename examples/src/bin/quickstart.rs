//! Quickstart: define the paper's trading task, configure P-RMWP on a
//! simulated Xeon Phi, run 10 jobs, and print what happened.
//!
//!     cargo run -p rtseed-examples --bin quickstart

use rtseed::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's evaluation task (§V-A): period 1 s, mandatory 250 ms,
    // wind-up 250 ms, 57 parallel optional parts that always overrun.
    let task = TaskSpec::builder("trader")
        .period(Span::from_secs(1))
        .mandatory(Span::from_millis(250))
        .windup(Span::from_millis(250))
        .optional_parts(57, Span::from_secs(1))
        .build()?;
    let set = TaskSet::new(vec![task])?;

    // Offline P-RMWP configuration: partitioning, optional deadlines,
    // SCHED_FIFO priorities, and the optional-part assignment policy.
    let config = SystemConfig::build(
        set,
        Topology::xeon_phi_3120a(),
        AssignmentPolicy::OneByOne,
    )?;
    let id = TaskId(0);
    println!("Task τ1 on {}", config.topology());
    println!("  mandatory thread   : hw {}", config.mandatory_hw(id));
    println!("  optional deadline  : {}", config.optional_deadline(id));
    println!(
        "  priorities         : mandatory {}, optional {}",
        config.priorities().mandatory(id),
        config.priorities().optional(id)
    );

    // Run 10 jobs on the discrete-event backend.
    let outcome = SimExecutor::new(config, RunConfig::builder().jobs(10).build()?).run();

    println!("\n{}", outcome.summary());
    Ok(())
}
