//! Multi-tenant serving demo: one process, many trading desks, online
//! admission control.
//!
//! Eight desks submit imprecise trading pipelines to a single
//! [`SessionManager`]; an over-subscribed ninth desk is turned away by the
//! RMWP admission test *before* it can cause a deadline miss. Mid-run, a
//! desk departs and a late desk takes the freed capacity — all replayed
//! from a deterministic churn plan, so this demo prints the same numbers
//! every run.
//!
//!     cargo run -p rtseed-examples --bin multi_tenant_serve -- --trace-dir traces/
//!
//! With `--trace-dir`, the per-tenant slices of the shared trace are
//! written as JSONL files (one per tenant) for inspection or CI
//! artifacts.

use rtseed::obs::{export, TraceConfig};
use rtseed::serve::{SessionManager, Submission};
use rtseed::{AssignmentPolicy, RunConfig};
use rtseed_analysis::PartitionHeuristic;
use rtseed_model::{Span, TaskSpec, Time, Topology};
use rtseed_sim::ChurnPlan;
use rtseed_trading::imprecise::desk_task_set;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let mut trace_dir = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-dir" => trace_dir = args.next(),
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    let run = RunConfig::builder()
        .jobs(20)
        .trace(TraceConfig::enabled())
        .build()?;
    let mut mgr = SessionManager::new(
        Topology::quad_core_smt2(),
        PartitionHeuristic::WorstFitDecreasing,
        AssignmentPolicy::OneByOne,
        run,
    );

    // Eight desks, two symbols each, three parallel analyses per symbol,
    // 50 ms pipeline cadence (accelerated from the paper's 1 s).
    let cadence = Span::from_millis(50);
    let symbols: [[&str; 2]; 8] = [
        ["EURUSD", "GBPUSD"],
        ["USDJPY", "EURJPY"],
        ["AUDUSD", "NZDUSD"],
        ["USDCHF", "EURCHF"],
        ["USDCAD", "EURGBP"],
        ["EURAUD", "GBPJPY"],
        ["AUDJPY", "CHFJPY"],
        ["EURNZD", "CADJPY"],
    ];
    for (i, pair) in symbols.iter().enumerate() {
        let name = format!("desk{i}");
        let tasks = desk_task_set(&name, pair, 3, cadence)?;
        mgr.submit(Submission::new(&name, tasks))?;
    }
    println!(
        "Admitted {} desks ({} tasks), mandatory+wind-up utilization {:.3}",
        mgr.admitted_tenants(),
        symbols.len() * 2,
        mgr.total_utilization(),
    );

    // A desk whose single task leaves no room for the residents'
    // interference on any CPU: the admission test rejects it up front —
    // no deadline is ever at risk.
    let greedy = vec![TaskSpec::builder("greedy/EURUSD")
        .period(Span::from_millis(100))
        .mandatory(Span::from_millis(60))
        .windup(Span::from_millis(35))
        .optional_parts(3, Span::from_millis(10))
        .build()?];
    match mgr.submit(Submission::new("greedy", greedy)) {
        Ok(_) => unreachable!("a 95 % task must not be admitted next to residents"),
        Err(e) => println!("Desk 'greedy' rejected by admission: {e}"),
    }

    // Scripted churn: desk3 departs 400 ms in; a late desk arrives at
    // 500 ms and inherits the freed capacity.
    let late = desk_task_set("late", &["XAUUSD", "XAGUSD"], 3, cadence)?;
    let plan = ChurnPlan::new()
        .depart(Time::from_nanos(400_000_000), "desk3")
        .arrive(Time::from_nanos(500_000_000), "late", late);

    let out = mgr.run_with_churn(&plan);

    println!("\n{:<8} {:<10} {:>5} {:>7} {:>9} {:>7}", "tenant", "state", "jobs", "misses", "degraded", "qos");
    for t in &out.tenants {
        println!(
            "{:<8} {:<10} {:>5} {:>7} {:>9} {:>7.3}",
            t.name,
            t.state.to_string(),
            t.qos.jobs(),
            t.qos.deadline_misses(),
            t.qos.degraded_jobs(),
            t.qos.aggregate_ratio(),
        );
    }
    let c = out.counters;
    println!(
        "\nSubmissions {}, admissions {}, rejections {}, departures {}, OD updates {}, churn events {}",
        c.submissions, c.admissions, c.rejections, c.departures, c.od_updates_applied, c.churn_events,
    );
    println!(
        "Aggregate: {} jobs, {} deadline misses, {} trace events",
        out.outcome.qos.jobs(),
        out.outcome.qos.deadline_misses(),
        out.outcome.trace.len(),
    );

    if let Some(dir) = trace_dir {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir)?;
        for t in &out.tenants {
            let path = dir.join(format!("{}.jsonl", t.name));
            export::write_jsonl(&path, &out.tenant_trace(t.tenant))?;
        }
        println!("Per-tenant traces written to {}", dir.display());
    }
    Ok(())
}
