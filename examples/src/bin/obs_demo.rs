//! Observability end to end: run the paper workload on the simulated
//! backend with tracing enabled, then export the stream as JSON Lines and
//! as a Chrome trace (load the latter in Perfetto / `chrome://tracing`).
//!
//!     cargo run -p rtseed-examples --bin obs_demo -- [out-dir]
//!
//! Writes `rtseed-trace.jsonl` and `rtseed-trace.json` into `out-dir`
//! (default: the current directory). The run is seeded: re-running
//! produces byte-identical files.

use rtseed::obs::export;
use rtseed::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir)?;

    // A two-task system so queue contention shows up in the trace.
    let trader = TaskSpec::builder("trader")
        .period(Span::from_millis(100))
        .mandatory(Span::from_millis(10))
        .windup(Span::from_millis(10))
        .optional_parts(4, Span::from_millis(40))
        .build()?;
    let logger = TaskSpec::builder("logger")
        .period(Span::from_millis(200))
        .mandatory(Span::from_millis(5))
        .windup(Span::from_millis(5))
        .optional_parts(2, Span::from_millis(30))
        .build()?;
    let config = SystemConfig::build(
        TaskSet::new(vec![trader, logger])?,
        Topology::quad_core_smt2(),
        AssignmentPolicy::OneByOne,
    )?;

    let run = RunConfig::builder()
        .jobs(20)
        .seed(2026)
        .trace(TraceConfig::enabled())
        .build()?;
    let outcome = SimExecutor::new(config, run).run();

    println!("{}", outcome.summary());
    println!("Metrics: {}", outcome.metrics);

    let jsonl_path = format!("{out_dir}/rtseed-trace.jsonl");
    let chrome_path = format!("{out_dir}/rtseed-trace.json");
    export::write_jsonl(&jsonl_path, &outcome.trace)?;
    export::write_chrome_trace(&chrome_path, &outcome.trace, &outcome.metrics)?;
    println!("Wrote {jsonl_path} ({} events)", outcome.trace.len());
    println!("Wrote {chrome_path} (open in ui.perfetto.dev)");
    Ok(())
}
