//! Offline schedulability tooling: generate a random task set, analyze it
//! with RMWP (optional deadlines, response times), partition it onto a
//! topology, and print the resulting system configuration.
//!
//!     cargo run -p rtseed-examples --bin schedulability -- 8 0.6 42
//!     (tasks, total utilization, seed)

use rtseed::config::SystemConfig;
use rtseed::policy::AssignmentPolicy;
use rtseed_analysis::bounds::{hyperbolic_schedulable, liu_layland_schedulable, rmus_threshold};
use rtseed_analysis::rmwp::RmwpAnalysis;
use rtseed_analysis::taskgen::{generate, TaskGenConfig};
use rtseed_model::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let tasks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let util: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.6);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    let set = generate(
        &TaskGenConfig {
            tasks,
            total_utilization: util,
            ..TaskGenConfig::default()
        },
        seed,
    );
    println!("Generated {} tasks, ΣU = {:.3}", set.len(), set.total_utilization());
    println!("  Liu–Layland sufficient test : {}", liu_layland_schedulable(&set));
    println!("  Hyperbolic sufficient test  : {}", hyperbolic_schedulable(&set));

    println!("\nRMWP analysis (single processor):");
    match RmwpAnalysis::analyze(&set) {
        Ok(a) => {
            println!(
                "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "task", "T", "m", "w", "OD", "R^m"
            );
            for (id, spec) in set.iter() {
                println!(
                    "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    spec.name(),
                    spec.period().to_string(),
                    spec.mandatory().to_string(),
                    spec.windup().to_string(),
                    a.optional_deadline(id).to_string(),
                    a.mandatory_response(id).to_string(),
                );
            }
        }
        Err(e) => println!("  unschedulable on one processor: {e}"),
    }

    let topo = Topology::quad_core_smt2();
    println!("\nPartitioned P-RMWP on {} (RM-US threshold {:.3}):",
        topo, rmus_threshold(topo.hw_threads() as usize));
    match SystemConfig::build(set, topo, AssignmentPolicy::OneByOne) {
        Ok(cfg) => {
            for (id, spec) in cfg.set().iter() {
                println!(
                    "  {:<8} -> hw {:<4} prio {:<7} OD {}",
                    spec.name(),
                    cfg.mandatory_hw(id).to_string(),
                    cfg.priorities().mandatory(id).to_string(),
                    cfg.optional_deadline(id),
                );
            }
        }
        Err(e) => println!("  partitioning failed: {e}"),
    }
    Ok(())
}
