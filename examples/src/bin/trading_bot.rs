//! A complete real-time trading bot on the *native* backend: real threads,
//! cooperative optional-part termination, synthetic EUR/USD feed at an
//! accelerated cadence.
//!
//!     cargo run -p rtseed-examples --bin trading_bot

use std::sync::Arc;

use rtseed::prelude::*;
use rtseed_trading::execution::{ExecutionConfig, PaperVenue};
use rtseed_trading::imprecise::{ImpreciseTrader, PipelineTracer};
use rtseed_trading::market::SyntheticFeed;
use rtseed_trading::strategy::{
    BollingerReversion, MacdMomentum, RsiContrarian, Signal, SignalAggregator,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three parallel analyses — the paper's technical-analysis example.
    let trader = Arc::new(ImpreciseTrader::new(
        Box::new(SyntheticFeed::eur_usd(2026)),
        vec![
            Box::new(BollingerReversion::standard()),
            Box::new(MacdMomentum::new(0.00002)),
            Box::new(RsiContrarian::standard()),
        ],
        SignalAggregator::new(1),
        PaperVenue::new(ExecutionConfig::default()),
        10_000.0, // 10k units per order
    ));

    // A 50 ms period (accelerated from the paper's 1 s so the demo runs in
    // seconds): mandatory 2 ms, wind-up 2 ms, 3 optional parts.
    let spec = TaskSpec::builder("eurusd-bot")
        .period(Span::from_millis(50))
        .mandatory(Span::from_millis(2))
        .windup(Span::from_millis(2))
        .optional_parts(trader.analyses(), Span::from_millis(20))
        .build()?;
    let config = SystemConfig::build(
        TaskSet::new(vec![spec])?,
        Topology::uniprocessor(),
        AssignmentPolicy::OneByOne,
    )?;

    // Trace both the middleware protocol and the pipeline's own stages.
    let tracer = Arc::new(PipelineTracer::new(TraceConfig::enabled()));
    trader.attach_tracer(Arc::clone(&tracer));

    let jobs = 100;
    println!("Running {jobs} trading cycles on the native backend…");
    let run = RunConfig::builder()
        .jobs(jobs)
        .termination(TerminationMode::PeriodicCheck {
            interval: Span::from_millis(1),
        })
        .trace(TraceConfig::enabled())
        .build()?;
    let outcome = NativeExecutor::new(config, run).run(vec![trader.task_body()])?;

    let decisions = trader.decisions();
    let bids = decisions.iter().filter(|s| **s == Signal::Bid).count();
    let asks = decisions.iter().filter(|s| **s == Signal::Ask).count();
    let waits = decisions.iter().filter(|s| **s == Signal::Wait).count();
    let venue = trader.venue_snapshot();

    println!("\nDecisions : {bids} bids, {asks} asks, {waits} waits");
    println!("Fills     : {}", venue.fills().len());
    println!("Equity    : {:+.5} (quote ccy)", venue.equity());
    println!("QoS       : {}", outcome.qos);
    println!("\nRuntime report: {:#?}", outcome.runtime);
    println!("\nOverheads (native, mean):\n{}", outcome.overheads);

    let pipeline = Trace::merged(vec![outcome.trace, tracer.snapshot()]);
    println!(
        "Trace     : {} events ({} pipeline-stage, {} dropped)",
        pipeline.len(),
        pipeline.count(|e| matches!(e, TraceEvent::PipelineStage { .. })),
        pipeline.dropped(),
    );
    println!("Metrics   : {}", outcome.metrics);
    Ok(())
}
