//! Deterministic fault injection end to end: a seeded overload episode on
//! the simulated backend with and without the overload supervisor, then a
//! hostile market feed tamed by the watchdog + kill-switch stack.
//!
//!     cargo run -p rtseed-examples --bin fault_demo
//!
//! Everything below is seeded — run it twice and the output is identical.

use rtseed::prelude::*;
use rtseed_sim::{FaultTarget, JobWindow, WcetFault};
use rtseed_trading::fault::{FeedFault, FeedFaultPlan};
use rtseed_trading::market::SyntheticFeed;
use rtseed_trading::{FaultyFeed, FeedError, FeedWatchdog, WatchdogConfig};

fn simulate(supervisor: SupervisorConfig) -> Result<Outcome, Box<dyn std::error::Error>> {
    // The paper's task (T = 1 s, m = w = 250 ms) with a seeded overload:
    // jobs 2–4 run their mandatory part at 5× the declared WCET.
    let task = TaskSpec::builder("τ1")
        .period(Span::from_secs(1))
        .mandatory(Span::from_millis(250))
        .windup(Span::from_millis(250))
        .optional_parts(4, Span::from_secs(1))
        .build()?;
    let config = SystemConfig::build(
        TaskSet::new(vec![task])?,
        Topology::xeon_phi_3120a(),
        AssignmentPolicy::OneByOne,
    )?;
    let run = RunConfig::builder()
        .jobs(10)
        .fault_plan(FaultPlan::new(2026).with_wcet_fault(WcetFault {
            task: None,
            jobs: JobWindow { from: 2, until: 5 },
            target: FaultTarget::Mandatory,
            factor: 5.0,
        }))
        .supervisor(supervisor)
        .build()?;
    Ok(SimExecutor::new(config, run).run())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== 1. Seeded overload, no supervisor ===\n");
    let unsupervised = simulate(SupervisorConfig::default())?;
    println!("QoS    : {}", unsupervised.qos);
    println!("Faults : {}\n", unsupervised.faults);

    println!("=== 2. Same fault seed, overload supervisor armed ===\n");
    let supervised = simulate(SupervisorConfig::armed())?;
    println!("QoS    : {}", supervised.qos);
    println!("Faults : {}\n", supervised.faults);
    println!(
        "Supervisor turned {} deadline misses into {} by shedding optional \
         parts on {} jobs (degraded-mode dwell {}).\n",
        unsupervised.qos.deadline_misses(),
        supervised.qos.deadline_misses(),
        supervised.faults.jobs_degraded,
        supervised.faults.degraded_dwell,
    );

    println!("=== 3. Hostile market feed behind the watchdog ===\n");
    // A synthetic EUR/USD feed with scripted corruption: a NaN tick, an
    // out-of-order pair, a gap, and a stall long enough to trip the
    // kill switch after bounded retries.
    let plan = FeedFaultPlan::new(7)
        .with_fault(10, FeedFault::NanTick)
        .with_fault(25, FeedFault::OutOfOrder)
        .with_fault(40, FeedFault::Gap { ticks: 3 })
        .with_fault(60, FeedFault::Stall { polls: 500 });
    let faulty = FaultyFeed::new(Box::new(SyntheticFeed::eur_usd(7)), plan);
    let mut dog = FeedWatchdog::new(faulty, WatchdogConfig::default());
    let kill = dog.kill_switch();

    let mut delivered = 0u32;
    let mut dropouts = 0u32;
    for _ in 0..200 {
        match dog.poll() {
            Ok(_) => delivered += 1,
            Err(FeedError::Dropout { .. }) => dropouts += 1,
            Err(FeedError::KillSwitch) => break,
        }
    }
    println!("Delivered ticks : {delivered}");
    println!("Dropout cycles  : {dropouts}");
    println!("Kill switch     : {}", if kill.is_tripped() { "TRIPPED" } else { "clear" });
    println!("Feed report     : {}", dog.report());
    println!("\nRe-run this binary: every number above is identical (seeded).");
    Ok(())
}
