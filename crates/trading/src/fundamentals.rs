//! Synthetic fundamental analysis (paper §II-A: "fundamental analysis
//! makes forecasts using the financial statements of companies and/or
//! countries", e.g. GDP).
//!
//! A [`MacroFeed`] emits periodic releases of macro indicators for the two
//! economies of a currency pair; [`FundamentalModel`] folds releases into a
//! bias score in [−1, 1] interpretable as "base currency should
//! appreciate (+) / depreciate (−)".

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtseed_model::{Span, Time};
use serde::{Deserialize, Serialize};

/// A macro-economic indicator type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MacroIndicator {
    /// Annualized GDP growth (percent).
    GdpGrowth,
    /// Policy interest rate (percent).
    InterestRate,
    /// Unemployment rate (percent).
    Unemployment,
    /// Year-over-year inflation (percent).
    Inflation,
}

impl MacroIndicator {
    /// All indicator kinds.
    pub const ALL: [MacroIndicator; 4] = [
        MacroIndicator::GdpGrowth,
        MacroIndicator::InterestRate,
        MacroIndicator::Unemployment,
        MacroIndicator::Inflation,
    ];
}

/// Which economy of the pair a release concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Economy {
    /// The base currency's economy (EUR in EUR/USD).
    Base,
    /// The quote currency's economy (USD in EUR/USD).
    Quote,
}

/// One released data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacroRelease {
    /// Release timestamp.
    pub at: Time,
    /// Which economy.
    pub economy: Economy,
    /// Which indicator.
    pub indicator: MacroIndicator,
    /// Released value (percent).
    pub value: f64,
    /// Consensus expectation (percent); the surprise is `value − expected`.
    pub expected: f64,
}

impl MacroRelease {
    /// The release surprise, `value − expected`.
    pub fn surprise(&self) -> f64 {
        self.value - self.expected
    }
}

/// Deterministic synthetic stream of macro releases.
#[derive(Debug)]
pub struct MacroFeed {
    rng: StdRng,
    interval: Span,
    now: Time,
    state: [[f64; 4]; 2],
}

impl MacroFeed {
    /// Creates a feed releasing one indicator every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(seed: u64, interval: Span) -> MacroFeed {
        assert!(!interval.is_zero(), "release interval must be positive");
        MacroFeed {
            rng: StdRng::seed_from_u64(seed),
            interval,
            now: Time::ZERO,
            // Plausible starting macro state: [gdp, rate, unemp, infl].
            state: [[1.5, 2.0, 6.0, 2.0], [2.0, 2.5, 4.5, 2.2]],
        }
    }

    /// Produces the next release.
    pub fn next_release(&mut self) -> MacroRelease {
        let econ_idx = usize::from(self.rng.random::<bool>());
        let ind_idx = (self.rng.random::<u32>() % 4) as usize;
        let drift: f64 = (self.rng.random::<f64>() - 0.5) * 0.4;
        let expected = self.state[econ_idx][ind_idx];
        let value = (expected + drift).clamp(-5.0, 25.0);
        self.state[econ_idx][ind_idx] = value;
        let at = self.now;
        self.now += self.interval;
        MacroRelease {
            at,
            economy: if econ_idx == 0 {
                Economy::Base
            } else {
                Economy::Quote
            },
            indicator: MacroIndicator::ALL[ind_idx],
            value,
            expected,
        }
    }
}

/// Folds macro releases into a directional bias for the base currency.
#[derive(Debug, Clone, Default)]
pub struct FundamentalModel {
    base_score: f64,
    quote_score: f64,
    releases: usize,
}

impl FundamentalModel {
    /// An empty model (zero bias).
    pub fn new() -> FundamentalModel {
        FundamentalModel::default()
    }

    /// Ingests one release. Growth/rate/inflation surprises strengthen an
    /// economy's currency; unemployment surprises weaken it.
    pub fn ingest(&mut self, release: &MacroRelease) {
        let s = release.surprise();
        let contribution = match release.indicator {
            MacroIndicator::GdpGrowth => s * 1.0,
            MacroIndicator::InterestRate => s * 1.5,
            MacroIndicator::Inflation => s * 0.5,
            MacroIndicator::Unemployment => -s * 0.8,
        };
        match release.economy {
            Economy::Base => self.base_score += contribution,
            Economy::Quote => self.quote_score += contribution,
        }
        self.releases += 1;
    }

    /// Number of releases ingested.
    pub fn releases(&self) -> usize {
        self.releases
    }

    /// Directional bias for the base currency in [−1, 1]: positive means
    /// the base should appreciate (buy), negative depreciate (sell).
    pub fn bias(&self) -> f64 {
        let diff = self.base_score - self.quote_score;
        diff.tanh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn release(economy: Economy, indicator: MacroIndicator, surprise: f64) -> MacroRelease {
        MacroRelease {
            at: Time::ZERO,
            economy,
            indicator,
            value: 2.0 + surprise,
            expected: 2.0,
        }
    }

    #[test]
    fn surprise_is_value_minus_expected() {
        let r = release(Economy::Base, MacroIndicator::GdpGrowth, 0.3);
        assert!((r.surprise() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn feed_is_deterministic_and_periodic() {
        let mut a = MacroFeed::new(11, Span::from_secs(60));
        let mut b = MacroFeed::new(11, Span::from_secs(60));
        for i in 0..50 {
            let ra = a.next_release();
            let rb = b.next_release();
            assert_eq!(ra, rb);
            assert_eq!(ra.at, Time::ZERO + Span::from_secs(60) * i);
        }
    }

    #[test]
    fn feed_values_stay_plausible() {
        let mut feed = MacroFeed::new(3, Span::from_secs(1));
        for _ in 0..5000 {
            let r = feed.next_release();
            assert!((-5.0..=25.0).contains(&r.value), "{r:?}");
        }
    }

    #[test]
    fn positive_base_growth_surprise_buys_base() {
        let mut m = FundamentalModel::new();
        m.ingest(&release(Economy::Base, MacroIndicator::GdpGrowth, 1.0));
        assert!(m.bias() > 0.0);
    }

    #[test]
    fn positive_quote_rate_surprise_sells_base() {
        let mut m = FundamentalModel::new();
        m.ingest(&release(Economy::Quote, MacroIndicator::InterestRate, 1.0));
        assert!(m.bias() < 0.0);
    }

    #[test]
    fn unemployment_surprise_inverts() {
        let mut m = FundamentalModel::new();
        m.ingest(&release(Economy::Base, MacroIndicator::Unemployment, 1.0));
        assert!(m.bias() < 0.0, "higher unemployment weakens the base");
    }

    #[test]
    fn bias_is_bounded_and_saturating() {
        let mut m = FundamentalModel::new();
        for _ in 0..100 {
            m.ingest(&release(Economy::Base, MacroIndicator::InterestRate, 2.0));
        }
        assert!(m.bias() <= 1.0 && m.bias() > 0.99);
        assert_eq!(m.releases(), 100);
    }

    #[test]
    fn symmetric_surprises_cancel() {
        let mut m = FundamentalModel::new();
        m.ingest(&release(Economy::Base, MacroIndicator::GdpGrowth, 0.5));
        m.ingest(&release(Economy::Quote, MacroIndicator::GdpGrowth, 0.5));
        assert!(m.bias().abs() < 1e-12);
    }
}
