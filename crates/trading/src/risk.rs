//! Risk management for the trading pipeline: position limits, drawdown
//! guard, and volatility-aware position sizing.
//!
//! A real-time trading system needs its wind-up part to make a *safe*
//! decision even at degraded QoS; [`RiskManager`] sits between the signal
//! aggregator and the venue, vetoing or resizing orders. All checks are
//! O(1) so they fit in the wind-up part's WCET budget.

use core::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::execution::{Position, Side};
use crate::fault::KillSwitch;
use crate::strategy::Signal;

/// Risk limits configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskLimits {
    /// Maximum absolute position (base-currency units).
    pub max_position: f64,
    /// Maximum tolerated equity drawdown from the high-water mark (quote
    /// currency) before trading halts.
    pub max_drawdown: f64,
    /// Base order size (base-currency units).
    pub base_order: f64,
    /// Volatility (ATR) above which orders shrink proportionally; at
    /// `2 × vol_target` orders halve, etc. Zero disables vol scaling.
    pub vol_target: f64,
}

impl Default for RiskLimits {
    fn default() -> Self {
        RiskLimits {
            max_position: 10.0,
            max_drawdown: 1.0,
            base_order: 1.0,
            vol_target: 0.0,
        }
    }
}

/// Why an order was vetoed or resized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RiskVerdict {
    /// Order approved at the returned size.
    Approved,
    /// Position limit reached in that direction: vetoed.
    PositionLimit,
    /// Drawdown halt is active: vetoed.
    DrawdownHalt,
    /// The feed watchdog's kill switch is tripped: vetoed.
    KillSwitch,
    /// The signal was `Wait`: nothing to do.
    NoSignal,
}

impl fmt::Display for RiskVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RiskVerdict::Approved => "approved",
            RiskVerdict::PositionLimit => "position-limit",
            RiskVerdict::DrawdownHalt => "drawdown-halt",
            RiskVerdict::KillSwitch => "kill-switch",
            RiskVerdict::NoSignal => "no-signal",
        };
        f.write_str(s)
    }
}

/// Stateful risk manager.
#[derive(Debug, Clone)]
pub struct RiskManager {
    limits: RiskLimits,
    high_water: f64,
    halted: bool,
    kill_switch: Option<Arc<KillSwitch>>,
}

impl RiskManager {
    /// Creates a manager with the given limits.
    ///
    /// # Panics
    ///
    /// Panics if any limit is non-positive where positivity is required.
    pub fn new(limits: RiskLimits) -> RiskManager {
        assert!(limits.max_position > 0.0, "max_position must be positive");
        assert!(limits.max_drawdown > 0.0, "max_drawdown must be positive");
        assert!(limits.base_order > 0.0, "base_order must be positive");
        assert!(limits.vol_target >= 0.0, "vol_target must be non-negative");
        RiskManager {
            limits,
            high_water: 0.0,
            halted: false,
            kill_switch: None,
        }
    }

    /// Attaches a feed watchdog's [`KillSwitch`]: once the watchdog trips
    /// it (sustained feed failure), every order is vetoed with
    /// [`RiskVerdict::KillSwitch`] until the switch is manually reset —
    /// the final rung of the fault-escalation ladder.
    pub fn with_kill_switch(mut self, switch: Arc<KillSwitch>) -> RiskManager {
        self.kill_switch = Some(switch);
        self
    }

    /// `true` while an attached kill switch is tripped.
    pub fn is_killed(&self) -> bool {
        self.kill_switch.as_ref().is_some_and(|k| k.is_tripped())
    }

    /// The configured limits.
    pub fn limits(&self) -> &RiskLimits {
        &self.limits
    }

    /// `true` once the drawdown guard has tripped (latched until
    /// [`RiskManager::reset_halt`]).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Clears a drawdown halt (manual intervention).
    pub fn reset_halt(&mut self) {
        self.halted = false;
    }

    /// Updates the equity high-water mark and the drawdown guard. Call
    /// once per cycle with current total equity.
    pub fn on_equity(&mut self, equity: f64) {
        if equity > self.high_water {
            self.high_water = equity;
        }
        if self.high_water - equity > self.limits.max_drawdown {
            self.halted = true;
        }
    }

    /// Vets a signal against the current position and (optionally) a
    /// volatility estimate. Returns the verdict and the approved order
    /// quantity (zero unless approved).
    pub fn vet(
        &self,
        signal: Signal,
        position: &Position,
        volatility: Option<f64>,
    ) -> (RiskVerdict, f64) {
        let Some(side) = Side::from_signal(signal) else {
            return (RiskVerdict::NoSignal, 0.0);
        };
        if self.is_killed() {
            return (RiskVerdict::KillSwitch, 0.0);
        }
        if self.halted {
            return (RiskVerdict::DrawdownHalt, 0.0);
        }
        let direction = match side {
            Side::Buy => 1.0,
            Side::Sell => -1.0,
        };
        // Orders that *reduce* exposure are always allowed; orders that
        // grow it respect the cap.
        let projected = position.quantity + direction * self.limits.base_order;
        if projected.abs() > self.limits.max_position
            && projected.abs() > position.quantity.abs()
        {
            return (RiskVerdict::PositionLimit, 0.0);
        }
        let mut size = self.limits.base_order;
        if self.limits.vol_target > 0.0 {
            if let Some(vol) = volatility {
                if vol > self.limits.vol_target {
                    size *= self.limits.vol_target / vol;
                }
            }
        }
        (RiskVerdict::Approved, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> RiskManager {
        RiskManager::new(RiskLimits {
            max_position: 3.0,
            max_drawdown: 0.5,
            base_order: 1.0,
            vol_target: 0.01,
        })
    }

    fn long(q: f64) -> Position {
        Position {
            quantity: q,
            avg_price: 1.0,
            realized_pnl: 0.0,
        }
    }

    #[test]
    fn wait_is_no_signal() {
        let (v, q) = manager().vet(Signal::Wait, &long(0.0), None);
        assert_eq!(v, RiskVerdict::NoSignal);
        assert_eq!(q, 0.0);
    }

    #[test]
    fn approves_within_limits() {
        let (v, q) = manager().vet(Signal::Bid, &long(0.0), None);
        assert_eq!(v, RiskVerdict::Approved);
        assert_eq!(q, 1.0);
    }

    #[test]
    fn vetoes_growth_past_position_limit() {
        let (v, q) = manager().vet(Signal::Bid, &long(3.0), None);
        assert_eq!(v, RiskVerdict::PositionLimit);
        assert_eq!(q, 0.0);
        // Shorts hit the cap symmetrically.
        let (v, _) = manager().vet(Signal::Ask, &long(-3.0), None);
        assert_eq!(v, RiskVerdict::PositionLimit);
    }

    #[test]
    fn always_allows_reducing_exposure() {
        // Long 3 at the cap: selling reduces exposure and must pass.
        let (v, q) = manager().vet(Signal::Ask, &long(3.0), None);
        assert_eq!(v, RiskVerdict::Approved);
        assert_eq!(q, 1.0);
    }

    #[test]
    fn drawdown_halts_and_latches() {
        let mut m = manager();
        m.on_equity(1.0);
        m.on_equity(0.6);
        assert!(!m.is_halted(), "0.4 drawdown is within the 0.5 limit");
        m.on_equity(0.4);
        assert!(m.is_halted());
        let (v, _) = m.vet(Signal::Bid, &long(0.0), None);
        assert_eq!(v, RiskVerdict::DrawdownHalt);
        // Recovery alone does not un-halt…
        m.on_equity(2.0);
        assert!(m.is_halted());
        // …manual reset does.
        m.reset_halt();
        assert!(!m.is_halted());
        let (v, _) = m.vet(Signal::Bid, &long(0.0), None);
        assert_eq!(v, RiskVerdict::Approved);
    }

    #[test]
    fn volatility_scales_size_down_only() {
        let m = manager();
        // Calm market (vol below target): full size.
        let (_, q) = m.vet(Signal::Bid, &long(0.0), Some(0.005));
        assert_eq!(q, 1.0);
        // Double the target volatility: half size.
        let (_, q) = m.vet(Signal::Bid, &long(0.0), Some(0.02));
        assert!((q - 0.5).abs() < 1e-12);
        // No estimate: full size.
        let (_, q) = m.vet(Signal::Bid, &long(0.0), None);
        assert_eq!(q, 1.0);
    }

    #[test]
    fn high_water_only_rises() {
        let mut m = manager();
        m.on_equity(1.0);
        m.on_equity(0.8);
        m.on_equity(0.9);
        assert!(!m.is_halted(), "drawdown measured from the high-water mark");
        m.on_equity(0.49);
        assert!(m.is_halted());
    }

    #[test]
    #[should_panic(expected = "max_position must be positive")]
    fn rejects_bad_limits() {
        let _ = RiskManager::new(RiskLimits {
            max_position: 0.0,
            ..RiskLimits::default()
        });
    }

    #[test]
    fn verdict_display() {
        assert_eq!(RiskVerdict::Approved.to_string(), "approved");
        assert_eq!(RiskVerdict::DrawdownHalt.to_string(), "drawdown-halt");
        assert_eq!(RiskVerdict::KillSwitch.to_string(), "kill-switch");
    }

    #[test]
    fn kill_switch_vetoes_until_reset() {
        let switch = Arc::new(KillSwitch::new());
        let m = manager().with_kill_switch(Arc::clone(&switch));
        assert!(!m.is_killed());
        let (v, q) = m.vet(Signal::Bid, &long(0.0), None);
        assert_eq!(v, RiskVerdict::Approved);
        assert_eq!(q, 1.0);
        // The watchdog (any holder of the shared switch) trips it.
        switch.trip();
        assert!(m.is_killed());
        let (v, q) = m.vet(Signal::Bid, &long(0.0), None);
        assert_eq!(v, RiskVerdict::KillSwitch);
        assert_eq!(q, 0.0);
        // Even exposure-reducing orders are vetoed: the feed is dead, so
        // prices are stale and any fill would be blind.
        let (v, _) = m.vet(Signal::Ask, &long(3.0), None);
        assert_eq!(v, RiskVerdict::KillSwitch);
        // Manual reset restores trading.
        switch.reset();
        let (v, _) = m.vet(Signal::Bid, &long(0.0), None);
        assert_eq!(v, RiskVerdict::Approved);
    }
}
