//! Streaming technical-analysis indicators.
//!
//! All indicators are *incremental*: push one price (or tick) at a time,
//! read the current value in O(1). This matches the optional-part usage
//! pattern — an analysis refines its output until the optional deadline
//! terminates it (paper §II-A's Bollinger Bands example).

use std::collections::VecDeque;

/// Simple moving average over a fixed window.
#[derive(Debug, Clone)]
pub struct Sma {
    window: usize,
    values: VecDeque<f64>,
    sum: f64,
}

impl Sma {
    /// Creates an SMA with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Sma {
        assert!(window > 0, "window must be positive");
        Sma {
            window,
            values: VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }

    /// Pushes a price.
    pub fn push(&mut self, price: f64) {
        self.values.push_back(price);
        self.sum += price;
        if self.values.len() > self.window {
            self.sum -= self.values.pop_front().expect("non-empty");
        }
    }

    /// Current average, or `None` until the window has filled.
    pub fn value(&self) -> Option<f64> {
        (self.values.len() == self.window).then(|| self.sum / self.window as f64)
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` before any sample was pushed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Exponential moving average with the conventional `2/(n+1)` smoothing.
#[derive(Debug, Clone)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// Creates an EMA equivalent to an `n`-period average.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Ema {
        assert!(n > 0, "period must be positive");
        Ema {
            alpha: 2.0 / (n as f64 + 1.0),
            value: None,
        }
    }

    /// Pushes a price.
    pub fn push(&mut self, price: f64) {
        self.value = Some(match self.value {
            None => price,
            Some(prev) => prev + self.alpha * (price - prev),
        });
    }

    /// Current EMA (first pushed price seeds it).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Bollinger Bands: SMA ± `k` standard deviations (paper §II-A's technical
/// analysis example).
#[derive(Debug, Clone)]
pub struct BollingerBands {
    window: usize,
    k: f64,
    values: VecDeque<f64>,
    sum: f64,
    sum_sq: f64,
}

/// A Bollinger Bands reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bands {
    /// Lower band (mean − k·σ).
    pub lower: f64,
    /// The moving average.
    pub middle: f64,
    /// Upper band (mean + k·σ).
    pub upper: f64,
}

impl BollingerBands {
    /// Creates bands over `window` periods at `k` standard deviations
    /// (the classic setting is 20 periods, k = 2).
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` or `k` is not finite and positive.
    pub fn new(window: usize, k: f64) -> BollingerBands {
        assert!(window >= 2, "window must be at least 2");
        assert!(k.is_finite() && k > 0.0, "k must be positive");
        BollingerBands {
            window,
            k,
            values: VecDeque::with_capacity(window),
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Pushes a price.
    pub fn push(&mut self, price: f64) {
        self.values.push_back(price);
        self.sum += price;
        self.sum_sq += price * price;
        if self.values.len() > self.window {
            let old = self.values.pop_front().expect("non-empty");
            self.sum -= old;
            self.sum_sq -= old * old;
        }
    }

    /// Current bands, or `None` until the window has filled.
    pub fn value(&self) -> Option<Bands> {
        if self.values.len() < self.window {
            return None;
        }
        let n = self.window as f64;
        let mean = self.sum / n;
        let var = (self.sum_sq / n - mean * mean).max(0.0);
        let sd = var.sqrt();
        Some(Bands {
            lower: mean - self.k * sd,
            middle: mean,
            upper: mean + self.k * sd,
        })
    }
}

/// Relative Strength Index (Wilder's smoothing).
#[derive(Debug, Clone)]
pub struct Rsi {
    period: usize,
    prev: Option<f64>,
    avg_gain: f64,
    avg_loss: f64,
    seen: usize,
}

impl Rsi {
    /// Creates an RSI over `period` price changes (classically 14).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: usize) -> Rsi {
        assert!(period > 0, "period must be positive");
        Rsi {
            period,
            prev: None,
            avg_gain: 0.0,
            avg_loss: 0.0,
            seen: 0,
        }
    }

    /// Pushes a price.
    pub fn push(&mut self, price: f64) {
        let Some(prev) = self.prev.replace(price) else {
            return;
        };
        let change = price - prev;
        let (gain, loss) = if change >= 0.0 {
            (change, 0.0)
        } else {
            (0.0, -change)
        };
        self.seen += 1;
        if self.seen <= self.period {
            // Accumulate the initial simple averages.
            self.avg_gain += gain / self.period as f64;
            self.avg_loss += loss / self.period as f64;
        } else {
            let p = self.period as f64;
            self.avg_gain = (self.avg_gain * (p - 1.0) + gain) / p;
            self.avg_loss = (self.avg_loss * (p - 1.0) + loss) / p;
        }
    }

    /// Current RSI in 0–100, or `None` until `period` changes were seen.
    pub fn value(&self) -> Option<f64> {
        if self.seen < self.period {
            return None;
        }
        if self.avg_loss == 0.0 {
            return Some(100.0);
        }
        let rs = self.avg_gain / self.avg_loss;
        Some(100.0 - 100.0 / (1.0 + rs))
    }
}

/// MACD: fast EMA − slow EMA, with a signal-line EMA of the difference.
#[derive(Debug, Clone)]
pub struct Macd {
    fast: Ema,
    slow: Ema,
    signal: Ema,
    pushes: usize,
    slow_n: usize,
}

/// A MACD reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacdValue {
    /// Fast EMA − slow EMA.
    pub macd: f64,
    /// EMA of the MACD line.
    pub signal: f64,
    /// `macd − signal`.
    pub histogram: f64,
}

impl Macd {
    /// Creates a MACD with the given periods (classically 12/26/9).
    ///
    /// # Panics
    ///
    /// Panics if any period is zero or `fast >= slow`.
    pub fn new(fast: usize, slow: usize, signal: usize) -> Macd {
        assert!(fast > 0 && slow > 0 && signal > 0, "periods must be positive");
        assert!(fast < slow, "fast period must be shorter than slow");
        Macd {
            fast: Ema::new(fast),
            slow: Ema::new(slow),
            signal: Ema::new(signal),
            pushes: 0,
            slow_n: slow,
        }
    }

    /// The classic 12/26/9 configuration.
    pub fn standard() -> Macd {
        Macd::new(12, 26, 9)
    }

    /// Pushes a price.
    pub fn push(&mut self, price: f64) {
        self.fast.push(price);
        self.slow.push(price);
        self.pushes += 1;
        if let (Some(f), Some(s)) = (self.fast.value(), self.slow.value()) {
            self.signal.push(f - s);
        }
    }

    /// Current MACD reading, or `None` until the slow period has filled.
    pub fn value(&self) -> Option<MacdValue> {
        if self.pushes < self.slow_n {
            return None;
        }
        let macd = self.fast.value()? - self.slow.value()?;
        let signal = self.signal.value()?;
        Some(MacdValue {
            macd,
            signal,
            histogram: macd - signal,
        })
    }
}

/// Stochastic oscillator %K with an SMA-smoothed %D.
#[derive(Debug, Clone)]
pub struct Stochastic {
    window: usize,
    values: VecDeque<f64>,
    d: Sma,
    last_k: Option<f64>,
}

impl Stochastic {
    /// Creates a %K over `window` periods with `d_period` smoothing
    /// (classically 14 and 3).
    ///
    /// # Panics
    ///
    /// Panics if either period is zero.
    pub fn new(window: usize, d_period: usize) -> Stochastic {
        assert!(window > 0 && d_period > 0, "periods must be positive");
        Stochastic {
            window,
            values: VecDeque::with_capacity(window),
            d: Sma::new(d_period),
            last_k: None,
        }
    }

    /// Pushes a price.
    pub fn push(&mut self, price: f64) {
        self.values.push_back(price);
        if self.values.len() > self.window {
            self.values.pop_front();
        }
        if self.values.len() == self.window {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in &self.values {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let k = if hi > lo {
                (price - lo) / (hi - lo) * 100.0
            } else {
                50.0
            };
            self.last_k = Some(k);
            self.d.push(k);
        }
    }

    /// Current `(%K, %D)`, `%D` present once its smoothing window filled.
    pub fn value(&self) -> Option<(f64, Option<f64>)> {
        self.last_k.map(|k| (k, self.d.value()))
    }
}

/// Average True Range over mid-price moves (volatility gauge).
#[derive(Debug, Clone)]
pub struct Atr {
    period: usize,
    prev: Option<f64>,
    value: Option<f64>,
    seen: usize,
    acc: f64,
}

impl Atr {
    /// Creates an ATR over `period` moves.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: usize) -> Atr {
        assert!(period > 0, "period must be positive");
        Atr {
            period,
            prev: None,
            value: None,
            seen: 0,
            acc: 0.0,
        }
    }

    /// Pushes a price.
    pub fn push(&mut self, price: f64) {
        let Some(prev) = self.prev.replace(price) else {
            return;
        };
        let tr = (price - prev).abs();
        self.seen += 1;
        if self.seen <= self.period {
            self.acc += tr;
            if self.seen == self.period {
                self.value = Some(self.acc / self.period as f64);
            }
        } else {
            let p = self.period as f64;
            let v = self.value.expect("set when seen == period");
            self.value = Some((v * (p - 1.0) + tr) / p);
        }
    }

    /// Current ATR, or `None` until `period` moves were seen.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_all(ind: &mut impl FnMut(f64), prices: &[f64]) {
        for &p in prices {
            ind(p);
        }
    }

    #[test]
    fn sma_fills_then_slides() {
        let mut sma = Sma::new(3);
        assert!(sma.is_empty());
        sma.push(1.0);
        sma.push(2.0);
        assert_eq!(sma.value(), None);
        sma.push(3.0);
        assert_eq!(sma.value(), Some(2.0));
        sma.push(7.0); // window = [2, 3, 7]
        assert_eq!(sma.value(), Some(4.0));
        assert_eq!(sma.len(), 3);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn sma_rejects_zero_window() {
        let _ = Sma::new(0);
    }

    #[test]
    fn ema_seeds_and_smooths() {
        let mut ema = Ema::new(3); // alpha = 0.5
        assert_eq!(ema.value(), None);
        ema.push(10.0);
        assert_eq!(ema.value(), Some(10.0));
        ema.push(20.0);
        assert_eq!(ema.value(), Some(15.0));
        ema.push(15.0);
        assert_eq!(ema.value(), Some(15.0));
    }

    #[test]
    fn ema_converges_to_constant_input() {
        let mut ema = Ema::new(10);
        push_all(&mut |p| ema.push(p), &[5.0; 200]);
        assert!((ema.value().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bollinger_band_ordering_and_symmetry() {
        let mut bb = BollingerBands::new(5, 2.0);
        push_all(&mut |p| bb.push(p), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let bands = bb.value().unwrap();
        assert!(bands.lower < bands.middle && bands.middle < bands.upper);
        assert!((bands.middle - 3.0).abs() < 1e-12);
        let up = bands.upper - bands.middle;
        let down = bands.middle - bands.lower;
        assert!((up - down).abs() < 1e-12);
        // σ of [1..5] (population) = √2.
        assert!((up - 2.0 * 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bollinger_constant_prices_collapse() {
        let mut bb = BollingerBands::new(4, 2.0);
        push_all(&mut |p| bb.push(p), &[7.0; 4]);
        let bands = bb.value().unwrap();
        assert!((bands.upper - bands.lower).abs() < 1e-9);
    }

    #[test]
    fn rsi_extremes() {
        // Monotone rises → RSI 100.
        let mut rsi = Rsi::new(5);
        push_all(&mut |p| rsi.push(p), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(rsi.value(), Some(100.0));
        // Monotone falls → RSI 0.
        let mut rsi = Rsi::new(5);
        push_all(&mut |p| rsi.push(p), &[6.0, 5.0, 4.0, 3.0, 2.0, 1.0]);
        assert!((rsi.value().unwrap() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn rsi_balanced_is_midscale() {
        // Alternating equal gains/losses oscillate around 50: Wilder
        // smoothing puts the value a few points below 50 right after a
        // loss and symmetrically above right after a gain.
        let mut rsi = Rsi::new(4);
        push_all(&mut |p| rsi.push(p), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0]);
        let after_loss = rsi.value().unwrap();
        assert!((40.0..50.0).contains(&after_loss), "{after_loss}");
        rsi.push(2.0);
        let after_gain = rsi.value().unwrap();
        assert!((50.0..62.0).contains(&after_gain), "{after_gain}");
        // Symmetric around the midline.
        assert!((after_loss + after_gain - 100.0).abs() < 10.0);
    }

    #[test]
    fn rsi_bounded() {
        let mut rsi = Rsi::new(14);
        let mut price = 100.0;
        for i in 0..500 {
            price += if i % 3 == 0 { -0.7 } else { 0.4 };
            rsi.push(price);
            if let Some(v) = rsi.value() {
                assert!((0.0..=100.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn macd_crossover_sign() {
        let mut macd = Macd::standard();
        // A long decline then a sharp rally: MACD turns positive and
        // crosses above its signal.
        for i in 0..60 {
            macd.push(100.0 - i as f64 * 0.5);
        }
        let falling = macd.value().unwrap();
        assert!(falling.macd < 0.0);
        for i in 0..60 {
            macd.push(70.0 + i as f64 * 1.5);
        }
        let rising = macd.value().unwrap();
        assert!(rising.macd > 0.0);
        assert!(rising.histogram > 0.0, "MACD should lead its signal");
    }

    #[test]
    #[should_panic(expected = "fast period must be shorter")]
    fn macd_rejects_inverted_periods() {
        let _ = Macd::new(26, 12, 9);
    }

    #[test]
    fn stochastic_bounds_and_extremes() {
        let mut st = Stochastic::new(5, 3);
        push_all(&mut |p| st.push(p), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let (k, _) = st.value().unwrap();
        assert!((k - 100.0).abs() < 1e-12, "close at the high → %K = 100");
        push_all(&mut |p| st.push(p), &[0.5]);
        let (k, _) = st.value().unwrap();
        assert!((k - 0.0).abs() < 1e-12, "close at the low → %K = 0");
    }

    #[test]
    fn stochastic_flat_window_is_midscale() {
        let mut st = Stochastic::new(3, 2);
        push_all(&mut |p| st.push(p), &[2.0, 2.0, 2.0]);
        let (k, _) = st.value().unwrap();
        assert_eq!(k, 50.0);
    }

    #[test]
    fn stochastic_d_smooths_k() {
        let mut st = Stochastic::new(3, 2);
        push_all(&mut |p| st.push(p), &[1.0, 2.0, 3.0, 1.0]);
        let (_, d) = st.value().unwrap();
        // %K values were 100 (at 3.0) then 0 (at 1.0): %D = 50.
        assert_eq!(d, Some(50.0));
    }

    #[test]
    fn atr_tracks_mean_absolute_move() {
        let mut atr = Atr::new(4);
        push_all(&mut |p| atr.push(p), &[1.0, 2.0, 1.0, 2.0, 1.0]);
        assert_eq!(atr.value(), Some(1.0));
        // A big move lifts it, Wilder-smoothed.
        atr.push(5.0);
        assert!((atr.value().unwrap() - (1.0 * 3.0 + 4.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn atr_needs_period_moves() {
        let mut atr = Atr::new(3);
        atr.push(1.0);
        atr.push(2.0);
        atr.push(3.0);
        assert_eq!(atr.value(), None, "two moves < period");
        atr.push(4.0);
        assert_eq!(atr.value(), Some(1.0));
    }
}
