//! # rtseed-trading
//!
//! The real-time trading substrate the paper motivates RT-Seed with (§I,
//! §II-A): everything needed to build an automated trading system on top
//! of the parallel-extended imprecise computation model.
//!
//! * [`market`] — synthetic market data (the paper's OANDA feed provides
//!   one EUR/USD rate per second; we generate statistically similar ticks
//!   with seeded GBM / Ornstein–Uhlenbeck processes, plus a replay source
//!   and a compact wire codec);
//! * [`indicators`] — streaming **technical analysis**: SMA, EMA,
//!   Bollinger Bands (the paper's §II-A example), RSI, MACD, stochastic
//!   oscillator, ATR;
//! * [`fundamentals`] — synthetic **fundamental analysis**: periodic macro
//!   releases (GDP growth, rate differential) and a bias score;
//! * [`strategy`] — trading signals and strategies, plus a QoS-aware
//!   aggregator that combines whatever analyses *completed or partially
//!   completed* before the optional deadline (§II-A: "the wind-up part
//!   collects the results from parallel optional parts to make a trading
//!   decision");
//! * [`execution`] — a paper-trading venue with spread/slippage and P&L
//!   accounting;
//! * [`risk`] — O(1) risk checks (position limits, drawdown guard,
//!   volatility sizing) that fit in the wind-up part's WCET budget;
//! * [`fault`] — deterministic feed-fault injection (stalls, gaps,
//!   out-of-order and NaN ticks) plus the defence: a validating stall
//!   watchdog with bounded retry/backoff that escalates sustained failure
//!   to a risk kill-switch;
//! * [`imprecise`] — the adapter that maps a full trading pipeline onto an
//!   RT-Seed task: mandatory = ingest tick, parallel optional = analyses,
//!   wind-up = aggregate and trade.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod execution;
pub mod fault;
pub mod fundamentals;
pub mod imprecise;
pub mod indicators;
pub mod market;
pub mod risk;
pub mod strategy;

pub use execution::{ExecutionConfig, Fill, Order, PaperVenue, Position, Side};
pub use fault::{
    FaultyFeed, FeedError, FeedFaultPlan, FeedFaultReport, FeedWatchdog,
    KillSwitch, WatchdogConfig,
};
pub use market::{PriceProcess, SyntheticFeed, Tick, TickError, TickSource};
pub use strategy::{Signal, SignalAggregator, Strategy};
