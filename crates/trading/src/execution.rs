//! Paper-trading execution venue: orders, fills with spread and slippage,
//! position and P&L accounting — the "stock company" endpoint the paper's
//! wind-up part sends trade requests to (§II-A).

use core::fmt;

use rtseed_model::Time;
use serde::{Deserialize, Serialize};

use crate::market::Tick;
use crate::strategy::Signal;

/// Order side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Buy the base currency.
    Buy,
    /// Sell the base currency.
    Sell,
}

impl Side {
    /// Converts a non-wait signal into a side.
    pub fn from_signal(signal: Signal) -> Option<Side> {
        match signal {
            Signal::Bid => Some(Side::Buy),
            Signal::Ask => Some(Side::Sell),
            Signal::Wait => None,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Buy => "buy",
            Side::Sell => "sell",
        })
    }
}

/// A market order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Order {
    /// Submission time.
    pub at: Time,
    /// Buy or sell.
    pub side: Side,
    /// Quantity in base-currency units.
    pub quantity: f64,
}

/// A fill returned by the venue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fill {
    /// The order that filled.
    pub order: Order,
    /// Executed price (includes spread and slippage).
    pub price: f64,
}

/// Venue behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Extra adverse price movement per unit quantity (linear impact).
    pub slippage_per_unit: f64,
    /// Flat per-order commission, charged in quote currency.
    pub commission: f64,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            slippage_per_unit: 0.0,
            commission: 0.0,
        }
    }
}

/// Net position and realized P&L.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// Signed base-currency quantity (positive = long).
    pub quantity: f64,
    /// Volume-weighted average entry price of the open quantity.
    pub avg_price: f64,
    /// Realized profit in quote currency.
    pub realized_pnl: f64,
}

impl Position {
    /// Marks the open quantity against `mid`, returning unrealized P&L.
    pub fn unrealized_pnl(&self, mid: f64) -> f64 {
        self.quantity * (mid - self.avg_price)
    }
}

/// A paper-trading venue that fills market orders against the latest tick.
#[derive(Debug, Clone)]
pub struct PaperVenue {
    config: ExecutionConfig,
    last_tick: Option<Tick>,
    position: Position,
    fills: Vec<Fill>,
}

/// Error from order submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecutionError {
    /// No market data has been seen yet.
    NoMarket,
    /// The order quantity was zero, negative, or not finite.
    BadQuantity,
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionError::NoMarket => write!(f, "no market data yet"),
            ExecutionError::BadQuantity => write!(f, "order quantity must be positive and finite"),
        }
    }
}

impl std::error::Error for ExecutionError {}

impl PaperVenue {
    /// Creates a venue with the given behaviour.
    pub fn new(config: ExecutionConfig) -> PaperVenue {
        PaperVenue {
            config,
            last_tick: None,
            position: Position::default(),
            fills: Vec::new(),
        }
    }

    /// Publishes a tick to the venue (order fills use the latest one).
    pub fn on_tick(&mut self, tick: Tick) {
        self.last_tick = Some(tick);
    }

    /// Submits a market order.
    ///
    /// # Errors
    ///
    /// * [`ExecutionError::NoMarket`] before the first tick;
    /// * [`ExecutionError::BadQuantity`] for non-positive or non-finite
    ///   quantities.
    pub fn submit(&mut self, order: Order) -> Result<Fill, ExecutionError> {
        let tick = self.last_tick.ok_or(ExecutionError::NoMarket)?;
        if !order.quantity.is_finite() || order.quantity <= 0.0 {
            return Err(ExecutionError::BadQuantity);
        }
        let impact = self.config.slippage_per_unit * order.quantity;
        let price = match order.side {
            Side::Buy => tick.ask + impact,
            Side::Sell => tick.bid - impact,
        };
        let fill = Fill { order, price };
        self.apply_fill(&fill);
        self.position.realized_pnl -= self.config.commission;
        self.fills.push(fill);
        Ok(fill)
    }

    fn apply_fill(&mut self, fill: &Fill) {
        let signed = match fill.order.side {
            Side::Buy => fill.order.quantity,
            Side::Sell => -fill.order.quantity,
        };
        let pos = &mut self.position;
        if pos.quantity == 0.0 || pos.quantity.signum() == signed.signum() {
            // Opening or adding: update the volume-weighted entry.
            let total = pos.quantity + signed;
            pos.avg_price = (pos.avg_price * pos.quantity.abs()
                + fill.price * signed.abs())
                / total.abs();
            pos.quantity = total;
        } else {
            // Reducing, closing, or flipping.
            let closing = signed.abs().min(pos.quantity.abs());
            let direction = pos.quantity.signum();
            pos.realized_pnl += closing * direction * (fill.price - pos.avg_price);
            let remainder = pos.quantity + signed;
            if remainder == 0.0 {
                pos.quantity = 0.0;
                pos.avg_price = 0.0;
            } else if remainder.signum() == direction {
                pos.quantity = remainder; // partially closed, entry keeps
            } else {
                pos.quantity = remainder; // flipped: new entry at fill
                pos.avg_price = fill.price;
            }
        }
    }

    /// Current position.
    pub fn position(&self) -> &Position {
        &self.position
    }

    /// All fills in submission order.
    pub fn fills(&self) -> &[Fill] {
        &self.fills
    }

    /// Total equity against the latest mid: realized + unrealized P&L.
    pub fn equity(&self) -> f64 {
        let unreal = self
            .last_tick
            .map_or(0.0, |t| self.position.unrealized_pnl(t.mid()));
        self.position.realized_pnl + unreal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::Span;

    fn tick(i: u64, bid: f64, ask: f64) -> Tick {
        Tick {
            at: Time::ZERO + Span::from_secs(i),
            bid,
            ask,
        }
    }

    fn venue() -> PaperVenue {
        PaperVenue::new(ExecutionConfig::default())
    }

    fn order(side: Side, qty: f64) -> Order {
        Order {
            at: Time::ZERO,
            side,
            quantity: qty,
        }
    }

    #[test]
    fn rejects_orders_without_market() {
        let mut v = venue();
        assert_eq!(
            v.submit(order(Side::Buy, 1.0)).unwrap_err(),
            ExecutionError::NoMarket
        );
    }

    #[test]
    fn rejects_bad_quantity() {
        let mut v = venue();
        v.on_tick(tick(0, 1.0, 1.0002));
        for q in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_eq!(
                v.submit(order(Side::Buy, q)).unwrap_err(),
                ExecutionError::BadQuantity,
                "{q}"
            );
        }
    }

    #[test]
    fn buys_at_ask_sells_at_bid() {
        let mut v = venue();
        v.on_tick(tick(0, 1.0998, 1.1002));
        let buy = v.submit(order(Side::Buy, 1.0)).unwrap();
        assert_eq!(buy.price, 1.1002);
        let sell = v.submit(order(Side::Sell, 1.0)).unwrap();
        assert_eq!(sell.price, 1.0998);
        // Round trip costs the spread.
        assert!((v.position().realized_pnl - (1.0998 - 1.1002)).abs() < 1e-12);
        assert_eq!(v.position().quantity, 0.0);
    }

    #[test]
    fn profitable_round_trip() {
        let mut v = venue();
        v.on_tick(tick(0, 1.1000, 1.1000));
        v.submit(order(Side::Buy, 2.0)).unwrap();
        v.on_tick(tick(1, 1.1100, 1.1100));
        v.submit(order(Side::Sell, 2.0)).unwrap();
        assert!((v.position().realized_pnl - 0.02).abs() < 1e-12);
        assert_eq!(v.fills().len(), 2);
    }

    #[test]
    fn averaging_in_updates_entry() {
        let mut v = venue();
        v.on_tick(tick(0, 1.0, 1.0));
        v.submit(order(Side::Buy, 1.0)).unwrap();
        v.on_tick(tick(1, 1.2, 1.2));
        v.submit(order(Side::Buy, 1.0)).unwrap();
        assert!((v.position().avg_price - 1.1).abs() < 1e-12);
        assert_eq!(v.position().quantity, 2.0);
        assert!((v.position().unrealized_pnl(1.2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn partial_close_realizes_proportionally() {
        let mut v = venue();
        v.on_tick(tick(0, 1.0, 1.0));
        v.submit(order(Side::Buy, 4.0)).unwrap();
        v.on_tick(tick(1, 1.5, 1.5));
        v.submit(order(Side::Sell, 1.0)).unwrap();
        assert!((v.position().realized_pnl - 0.5).abs() < 1e-12);
        assert_eq!(v.position().quantity, 3.0);
        assert!((v.position().avg_price - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flip_opens_opposite_position_at_fill() {
        let mut v = venue();
        v.on_tick(tick(0, 1.0, 1.0));
        v.submit(order(Side::Buy, 1.0)).unwrap();
        v.on_tick(tick(1, 1.2, 1.2));
        v.submit(order(Side::Sell, 3.0)).unwrap();
        assert!((v.position().realized_pnl - 0.2).abs() < 1e-12);
        assert_eq!(v.position().quantity, -2.0);
        assert!((v.position().avg_price - 1.2).abs() < 1e-12);
    }

    #[test]
    fn short_positions_profit_from_falls() {
        let mut v = venue();
        v.on_tick(tick(0, 2.0, 2.0));
        v.submit(order(Side::Sell, 1.0)).unwrap();
        v.on_tick(tick(1, 1.5, 1.5));
        v.submit(order(Side::Buy, 1.0)).unwrap();
        assert!((v.position().realized_pnl - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slippage_and_commission_apply() {
        let mut v = PaperVenue::new(ExecutionConfig {
            slippage_per_unit: 0.01,
            commission: 0.5,
        });
        v.on_tick(tick(0, 1.0, 1.0));
        let fill = v.submit(order(Side::Buy, 2.0)).unwrap();
        assert!((fill.price - 1.02).abs() < 1e-12);
        assert!((v.position().realized_pnl - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn equity_marks_to_market() {
        let mut v = venue();
        v.on_tick(tick(0, 1.0, 1.0));
        v.submit(order(Side::Buy, 1.0)).unwrap();
        v.on_tick(tick(1, 1.3, 1.3));
        assert!((v.equity() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn side_from_signal() {
        assert_eq!(Side::from_signal(Signal::Bid), Some(Side::Buy));
        assert_eq!(Side::from_signal(Signal::Ask), Some(Side::Sell));
        assert_eq!(Side::from_signal(Signal::Wait), None);
        assert_eq!(Side::Buy.to_string(), "buy");
    }
}
