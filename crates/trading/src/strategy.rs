//! Trading signals, strategies, and the QoS-aware aggregator.
//!
//! The paper's wind-up part "collects the results from parallel optional
//! parts to make a trading decision and sends a trade request (bid or ask)
//! … or takes a wait-and-see attitude" (§II-A). Each optional part runs
//! one [`Strategy`]; at the optional deadline whatever opinions exist are
//! combined by [`SignalAggregator`] — analyses that were *discarded*
//! simply abstain, which is exactly how imprecision degrades QoS without
//! breaking correctness.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::fundamentals::FundamentalModel;
use crate::indicators::{BollingerBands, Macd, Rsi};
use crate::market::Tick;

/// A trading decision for the next period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Buy the base currency (lift the ask).
    Bid,
    /// Sell the base currency (hit the bid).
    Ask,
    /// Wait and see — no trade (the paper's third outcome).
    Wait,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Signal::Bid => "bid",
            Signal::Ask => "ask",
            Signal::Wait => "wait",
        };
        f.write_str(s)
    }
}

/// An analysis that consumes ticks and produces an opinion.
pub trait Strategy: Send {
    /// Ingests one tick.
    fn on_tick(&mut self, tick: &Tick);
    /// The current opinion, or `None` while warming up.
    fn signal(&self) -> Option<Signal>;
    /// Short name for reports.
    fn name(&self) -> &str;
}

/// Mean-reversion on Bollinger Bands: price above the upper band → sell,
/// below the lower band → buy (the paper's §II-A technical example).
#[derive(Debug)]
pub struct BollingerReversion {
    bands: BollingerBands,
    last: Option<f64>,
}

impl BollingerReversion {
    /// The classic 20-period, 2σ configuration.
    pub fn standard() -> BollingerReversion {
        BollingerReversion::new(20, 2.0)
    }

    /// Custom window and width.
    pub fn new(window: usize, k: f64) -> BollingerReversion {
        BollingerReversion {
            bands: BollingerBands::new(window, k),
            last: None,
        }
    }
}

impl Strategy for BollingerReversion {
    fn on_tick(&mut self, tick: &Tick) {
        let mid = tick.mid();
        self.bands.push(mid);
        self.last = Some(mid);
    }

    fn signal(&self) -> Option<Signal> {
        let bands = self.bands.value()?;
        let last = self.last?;
        Some(if last > bands.upper {
            Signal::Ask
        } else if last < bands.lower {
            Signal::Bid
        } else {
            Signal::Wait
        })
    }

    fn name(&self) -> &str {
        "bollinger-reversion"
    }
}

/// Momentum on the MACD histogram sign.
#[derive(Debug)]
pub struct MacdMomentum {
    macd: Macd,
    threshold: f64,
}

impl MacdMomentum {
    /// Standard 12/26/9 MACD; `threshold` suppresses noise trades.
    pub fn new(threshold: f64) -> MacdMomentum {
        MacdMomentum {
            macd: Macd::standard(),
            threshold,
        }
    }
}

impl Strategy for MacdMomentum {
    fn on_tick(&mut self, tick: &Tick) {
        self.macd.push(tick.mid());
    }

    fn signal(&self) -> Option<Signal> {
        let v = self.macd.value()?;
        Some(if v.histogram > self.threshold {
            Signal::Bid
        } else if v.histogram < -self.threshold {
            Signal::Ask
        } else {
            Signal::Wait
        })
    }

    fn name(&self) -> &str {
        "macd-momentum"
    }
}

/// Contrarian RSI: overbought (≥ 70) → sell, oversold (≤ 30) → buy.
#[derive(Debug)]
pub struct RsiContrarian {
    rsi: Rsi,
}

impl RsiContrarian {
    /// The classic 14-period RSI.
    pub fn standard() -> RsiContrarian {
        RsiContrarian { rsi: Rsi::new(14) }
    }
}

impl Strategy for RsiContrarian {
    fn on_tick(&mut self, tick: &Tick) {
        self.rsi.push(tick.mid());
    }

    fn signal(&self) -> Option<Signal> {
        let v = self.rsi.value()?;
        Some(if v >= 70.0 {
            Signal::Ask
        } else if v <= 30.0 {
            Signal::Bid
        } else {
            Signal::Wait
        })
    }

    fn name(&self) -> &str {
        "rsi-contrarian"
    }
}

/// Fundamental bias as a strategy (ticks are ignored; the bias comes from
/// a [`FundamentalModel`] updated by macro releases).
#[derive(Debug, Default)]
pub struct FundamentalBias {
    model: FundamentalModel,
    threshold: f64,
}

impl FundamentalBias {
    /// Creates a bias strategy; |bias| below `threshold` means wait.
    pub fn new(threshold: f64) -> FundamentalBias {
        FundamentalBias {
            model: FundamentalModel::new(),
            threshold,
        }
    }

    /// Mutable access to the underlying model (feed macro releases here).
    pub fn model_mut(&mut self) -> &mut FundamentalModel {
        &mut self.model
    }
}

impl Strategy for FundamentalBias {
    fn on_tick(&mut self, _tick: &Tick) {}

    fn signal(&self) -> Option<Signal> {
        if self.model.releases() == 0 {
            return None;
        }
        let b = self.model.bias();
        Some(if b > self.threshold {
            Signal::Bid
        } else if b < -self.threshold {
            Signal::Ask
        } else {
            Signal::Wait
        })
    }

    fn name(&self) -> &str {
        "fundamental-bias"
    }
}

/// Combines the opinions that survived the optional deadline.
///
/// Majority voting over non-`Wait` opinions with a configurable quorum:
/// fewer than `quorum` expressed opinions (or a tie) → [`Signal::Wait`].
/// Discarded/warming-up analyses contribute nothing — QoS degradation
/// manifests as more frequent `Wait`s, never as a wrong-by-construction
/// trade.
#[derive(Debug, Clone)]
pub struct SignalAggregator {
    quorum: usize,
}

impl SignalAggregator {
    /// Creates an aggregator requiring at least `quorum` non-wait votes.
    ///
    /// # Panics
    ///
    /// Panics if `quorum` is zero.
    pub fn new(quorum: usize) -> SignalAggregator {
        assert!(quorum > 0, "quorum must be positive");
        SignalAggregator { quorum }
    }

    /// Aggregates the available opinions (absent = discarded/warming up).
    pub fn decide(&self, opinions: &[Option<Signal>]) -> Signal {
        let mut bids = 0usize;
        let mut asks = 0usize;
        for s in opinions.iter().flatten() {
            match s {
                Signal::Bid => bids += 1,
                Signal::Ask => asks += 1,
                Signal::Wait => {}
            }
        }
        if bids + asks < self.quorum || bids == asks {
            Signal::Wait
        } else if bids > asks {
            Signal::Bid
        } else {
            Signal::Ask
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::{Span, Time};

    fn tick(i: u64, mid: f64) -> Tick {
        Tick {
            at: Time::ZERO + Span::from_secs(i),
            bid: mid - 0.00005,
            ask: mid + 0.00005,
        }
    }

    fn feed(strategy: &mut impl Strategy, prices: &[f64]) {
        for (i, &p) in prices.iter().enumerate() {
            strategy.on_tick(&tick(i as u64, p));
        }
    }

    #[test]
    fn bollinger_sells_above_upper_band() {
        let mut s = BollingerReversion::new(10, 2.0);
        let mut prices = vec![1.10; 10];
        feed(&mut s, &prices);
        assert_eq!(s.signal(), Some(Signal::Wait));
        // A violent spike above the (tight) bands.
        prices.push(1.20);
        feed(&mut s, &prices[10..]);
        assert_eq!(s.signal(), Some(Signal::Ask));
    }

    #[test]
    fn bollinger_buys_below_lower_band() {
        let mut s = BollingerReversion::new(10, 2.0);
        feed(&mut s, &[1.10; 10]);
        s.on_tick(&tick(10, 1.00));
        assert_eq!(s.signal(), Some(Signal::Bid));
    }

    #[test]
    fn bollinger_warms_up_silently() {
        let mut s = BollingerReversion::standard();
        feed(&mut s, &[1.1; 5]);
        assert_eq!(s.signal(), None);
        assert_eq!(s.name(), "bollinger-reversion");
    }

    #[test]
    fn macd_momentum_follows_trend() {
        let mut s = MacdMomentum::new(0.0001);
        let rising: Vec<f64> = (0..60).map(|i| 1.0 + i as f64 * 0.01).collect();
        feed(&mut s, &rising);
        assert_eq!(s.signal(), Some(Signal::Bid));
        let falling: Vec<f64> = (0..60).map(|i| 1.6 - i as f64 * 0.01).collect();
        feed(&mut s, &falling);
        assert_eq!(s.signal(), Some(Signal::Ask));
    }

    #[test]
    fn rsi_contrarian_fades_extremes() {
        let mut s = RsiContrarian::standard();
        let rising: Vec<f64> = (0..20).map(|i| 1.0 + i as f64 * 0.01).collect();
        feed(&mut s, &rising);
        assert_eq!(s.signal(), Some(Signal::Ask), "overbought → sell");
        let mut s = RsiContrarian::standard();
        let falling: Vec<f64> = (0..20).map(|i| 2.0 - i as f64 * 0.01).collect();
        feed(&mut s, &falling);
        assert_eq!(s.signal(), Some(Signal::Bid), "oversold → buy");
    }

    #[test]
    fn fundamental_bias_signals_from_releases() {
        use crate::fundamentals::{Economy, MacroIndicator, MacroRelease};
        let mut s = FundamentalBias::new(0.1);
        assert_eq!(s.signal(), None, "no releases yet");
        s.model_mut().ingest(&MacroRelease {
            at: Time::ZERO,
            economy: Economy::Base,
            indicator: MacroIndicator::InterestRate,
            value: 3.0,
            expected: 2.0,
        });
        assert_eq!(s.signal(), Some(Signal::Bid));
    }

    #[test]
    fn aggregator_majority() {
        let agg = SignalAggregator::new(1);
        assert_eq!(
            agg.decide(&[Some(Signal::Bid), Some(Signal::Bid), Some(Signal::Ask)]),
            Signal::Bid
        );
        assert_eq!(
            agg.decide(&[Some(Signal::Ask), Some(Signal::Ask), Some(Signal::Wait)]),
            Signal::Ask
        );
    }

    #[test]
    fn aggregator_tie_waits() {
        let agg = SignalAggregator::new(1);
        assert_eq!(
            agg.decide(&[Some(Signal::Bid), Some(Signal::Ask)]),
            Signal::Wait
        );
    }

    #[test]
    fn aggregator_quorum_enforced() {
        let agg = SignalAggregator::new(3);
        assert_eq!(
            agg.decide(&[Some(Signal::Bid), Some(Signal::Bid), None, None]),
            Signal::Wait,
            "two opinions below quorum of three"
        );
        assert_eq!(
            agg.decide(&[
                Some(Signal::Bid),
                Some(Signal::Bid),
                Some(Signal::Bid),
                Some(Signal::Ask)
            ]),
            Signal::Bid
        );
    }

    #[test]
    fn aggregator_all_discarded_waits() {
        let agg = SignalAggregator::new(1);
        assert_eq!(agg.decide(&[None, None, None]), Signal::Wait);
        assert_eq!(agg.decide(&[]), Signal::Wait);
    }

    #[test]
    #[should_panic(expected = "quorum must be positive")]
    fn aggregator_rejects_zero_quorum() {
        let _ = SignalAggregator::new(0);
    }

    #[test]
    fn signal_display() {
        assert_eq!(Signal::Bid.to_string(), "bid");
        assert_eq!(Signal::Ask.to_string(), "ask");
        assert_eq!(Signal::Wait.to_string(), "wait");
    }
}
