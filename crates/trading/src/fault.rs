//! Feed-fault injection and overload resilience for the trading layer:
//! the market-data counterpart of `rtseed-sim`'s `FaultPlan`.
//!
//! A real feed handler has to survive exactly four things going wrong
//! upstream: the feed goes quiet (stall), drops data (gap), delivers
//! stale data late (out-of-order), or delivers garbage (NaN / crossed
//! ticks). This module provides:
//!
//! * [`FeedFaultPlan`] — a deterministic, seeded schedule of those faults,
//!   pure in `(seed, poll slot)` so any run replays bit-identically;
//! * [`FaultyFeed`] — a [`TickSource`] wrapper that injects the plan into
//!   any underlying feed;
//! * [`FeedWatchdog`] — the defence: validates every tick with
//!   [`Tick::validate`], retries stalls with bounded exponential backoff,
//!   and, after too many consecutive dropouts, trips a latched
//!   [`KillSwitch`] that the [`RiskManager`](crate::risk::RiskManager)
//!   observes to veto all further orders.
//!
//! The escalation ladder mirrors the scheduler core's overload
//! supervisor: *retry* (absorb transients) → *dropout* (abstain this
//! cycle, like a shed optional part) → *kill switch* (degraded mode:
//! stop trading, keep accounting).

use core::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rtseed_model::{Span, Time};
use serde::{Deserialize, Serialize};

use crate::market::{Tick, TickError, TickSource};

/// One fault the plan can inject at a poll slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedFault {
    /// The feed yields nothing for `polls` consecutive polls (this one
    /// included), then resumes where it left off.
    Stall {
        /// Number of empty polls, at least 1.
        polls: u32,
    },
    /// `ticks` underlying ticks are silently dropped before the next
    /// delivery — a timestamp gap, but otherwise valid data.
    Gap {
        /// Number of ticks dropped.
        ticks: u32,
    },
    /// Two adjacent ticks are delivered swapped: the newer first, then the
    /// stale one (which a validating consumer must reject).
    OutOfOrder,
    /// The tick's bid is corrupted to NaN.
    NanTick,
}

/// Per-poll probabilities for randomly injected faults (evaluated in the
/// order stall, gap, out-of-order, NaN; first hit wins).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedFaultRates {
    /// Probability of a stall at each slot.
    pub stall: f64,
    /// Stall length in polls when one fires.
    pub stall_polls: u32,
    /// Probability of a gap at each slot.
    pub gap: f64,
    /// Gap length in ticks when one fires.
    pub gap_ticks: u32,
    /// Probability of an out-of-order swap at each slot.
    pub out_of_order: f64,
    /// Probability of a NaN tick at each slot.
    pub nan: f64,
}

impl Default for FeedFaultRates {
    fn default() -> Self {
        FeedFaultRates {
            stall: 0.0,
            stall_polls: 3,
            gap: 0.0,
            gap_ticks: 2,
            out_of_order: 0.0,
            nan: 0.0,
        }
    }
}

/// A deterministic, seeded schedule of feed faults.
///
/// Like `rtseed-sim`'s `FaultPlan`, the plan is a *pure function* of
/// `(seed, poll slot)`: explicit faults are looked up by slot, random
/// faults are decided by a seed-keyed hash of the slot, so the same plan
/// over the same feed replays identically every time.
///
/// # Examples
///
/// ```
/// use rtseed_trading::fault::{FaultyFeed, FeedFault, FeedFaultPlan};
/// use rtseed_trading::market::{SyntheticFeed, TickSource};
///
/// let plan = FeedFaultPlan::new(7).with_fault(2, FeedFault::NanTick);
/// let mut feed = FaultyFeed::new(SyntheticFeed::eur_usd(1), plan);
/// let ticks: Vec<_> = (0..3).filter_map(|_| feed.next_tick()).collect();
/// assert!(ticks[2].bid.is_nan());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedFaultPlan {
    seed: u64,
    scheduled: Vec<(u64, FeedFault)>,
    rates: Option<FeedFaultRates>,
}

impl FeedFaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FeedFaultPlan {
        FeedFaultPlan {
            seed,
            scheduled: Vec::new(),
            rates: None,
        }
    }

    /// A plan that injects nothing.
    pub fn none() -> FeedFaultPlan {
        FeedFaultPlan::new(0)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty() && self.rates.is_none()
    }

    /// Schedules `fault` at poll slot `slot` (0-based count of delivery
    /// attempts).
    ///
    /// # Panics
    ///
    /// Panics on a zero-length stall or gap.
    pub fn with_fault(mut self, slot: u64, fault: FeedFault) -> FeedFaultPlan {
        match fault {
            FeedFault::Stall { polls } => {
                assert!(polls > 0, "stall must last at least one poll")
            }
            FeedFault::Gap { ticks } => {
                assert!(ticks > 0, "gap must drop at least one tick")
            }
            FeedFault::OutOfOrder | FeedFault::NanTick => {}
        }
        self.scheduled.push((slot, fault));
        self
    }

    /// Enables seed-keyed random faults at the given rates.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or a magnitude is 0.
    pub fn with_random_faults(mut self, rates: FeedFaultRates) -> FeedFaultPlan {
        for p in [rates.stall, rates.gap, rates.out_of_order, rates.nan] {
            assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        }
        assert!(rates.stall_polls > 0, "stall must last at least one poll");
        assert!(rates.gap_ticks > 0, "gap must drop at least one tick");
        self.rates = Some(rates);
        self
    }

    /// The fault (if any) to inject at poll slot `slot`. Explicit faults
    /// win over random ones; pure in `(self, slot)`.
    pub fn fault_at(&self, slot: u64) -> Option<FeedFault> {
        if let Some((_, fault)) =
            self.scheduled.iter().find(|(s, _)| *s == slot)
        {
            return Some(*fault);
        }
        let rates = self.rates?;
        if unit(hash(self.seed, slot, 1)) < rates.stall {
            return Some(FeedFault::Stall { polls: rates.stall_polls });
        }
        if unit(hash(self.seed, slot, 2)) < rates.gap {
            return Some(FeedFault::Gap { ticks: rates.gap_ticks });
        }
        if unit(hash(self.seed, slot, 3)) < rates.out_of_order {
            return Some(FeedFault::OutOfOrder);
        }
        if unit(hash(self.seed, slot, 4)) < rates.nan {
            return Some(FeedFault::NanTick);
        }
        None
    }
}

/// splitmix64-style avalanche of `(seed, slot, salt)`.
fn hash(seed: u64, slot: u64, salt: u64) -> u64 {
    let mut x = seed
        ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Maps a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Counters of what a [`FaultyFeed`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFaults {
    /// Stall windows entered.
    pub stalls: u64,
    /// Gaps injected.
    pub gaps: u64,
    /// Adjacent-tick swaps injected.
    pub out_of_order: u64,
    /// NaN ticks injected.
    pub nan_ticks: u64,
}

impl InjectedFaults {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.stalls + self.gaps + self.out_of_order + self.nan_ticks
    }
}

/// A [`TickSource`] wrapper that injects a [`FeedFaultPlan`] into any
/// underlying feed. Stalls surface as `None` from
/// [`next_tick`](TickSource::next_tick) (indistinguishable from
/// exhaustion, as in a real handler — that ambiguity is exactly what
/// [`FeedWatchdog`] exists to manage).
#[derive(Debug)]
pub struct FaultyFeed<S> {
    inner: S,
    plan: FeedFaultPlan,
    slot: u64,
    stall_left: u32,
    stale: Option<Tick>,
    injected: InjectedFaults,
}

impl<S: TickSource> FaultyFeed<S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: S, plan: FeedFaultPlan) -> FaultyFeed<S> {
        FaultyFeed {
            inner,
            plan,
            slot: 0,
            stall_left: 0,
            stale: None,
            injected: InjectedFaults::default(),
        }
    }

    /// What has been injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.injected
    }

    /// The plan driving the injection.
    pub fn plan(&self) -> &FeedFaultPlan {
        &self.plan
    }
}

impl<S: TickSource> TickSource for FaultyFeed<S> {
    fn next_tick(&mut self) -> Option<Tick> {
        if self.stall_left > 0 {
            self.stall_left -= 1;
            return None;
        }
        if let Some(stale) = self.stale.take() {
            return Some(stale); // the held tick, now out of order
        }
        let slot = self.slot;
        self.slot += 1;
        match self.plan.fault_at(slot) {
            Some(FeedFault::Stall { polls }) => {
                self.injected.stalls += 1;
                self.stall_left = polls - 1;
                None
            }
            Some(FeedFault::Gap { ticks }) => {
                for _ in 0..ticks {
                    self.inner.next_tick()?;
                }
                self.injected.gaps += 1;
                self.inner.next_tick()
            }
            Some(FeedFault::OutOfOrder) => {
                let first = self.inner.next_tick()?;
                match self.inner.next_tick() {
                    Some(second) => {
                        self.injected.out_of_order += 1;
                        self.stale = Some(first);
                        Some(second)
                    }
                    // Nothing left to swap with: deliver in order.
                    None => Some(first),
                }
            }
            Some(FeedFault::NanTick) => {
                let mut tick = self.inner.next_tick()?;
                self.injected.nan_ticks += 1;
                tick.bid = f64::NAN;
                Some(tick)
            }
            None => self.inner.next_tick(),
        }
    }
}

/// A latched, shareable trading halt: the last rung of the feed-fault
/// escalation ladder.
///
/// The [`FeedWatchdog`] trips it after too many consecutive dropouts; a
/// [`RiskManager`](crate::risk::RiskManager) holding a clone of the same
/// `Arc<KillSwitch>` then vetoes every order until a manual
/// [`reset`](KillSwitch::reset).
#[derive(Debug, Default)]
pub struct KillSwitch(AtomicBool);

impl KillSwitch {
    /// A fresh, untripped switch.
    pub fn new() -> KillSwitch {
        KillSwitch::default()
    }

    /// Trips the switch (latched).
    pub fn trip(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// `true` once tripped.
    pub fn is_tripped(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    /// Clears the switch (manual intervention, like
    /// [`RiskManager::reset_halt`](crate::risk::RiskManager::reset_halt)).
    pub fn reset(&self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

/// Watchdog tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Extra polls attempted after an empty or invalid one before the
    /// cycle is declared a dropout.
    pub max_retries: u32,
    /// Backoff charged before the first retry; doubles per retry.
    pub backoff_start: Span,
    /// Backoff ceiling.
    pub backoff_cap: Span,
    /// Consecutive dropouts that trip the [`KillSwitch`].
    pub trip_after: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            max_retries: 3,
            backoff_start: Span::from_millis(10),
            backoff_cap: Span::from_secs(1),
            trip_after: 3,
        }
    }
}

/// Why a [`FeedWatchdog::poll`] produced no tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedError {
    /// The retry budget was exhausted this cycle (stalled or persistently
    /// invalid feed); the consumer should abstain this cycle.
    Dropout {
        /// Retries spent before giving up.
        retries: u32,
    },
    /// The kill switch is tripped: the feed is considered dead and no
    /// polling is attempted.
    KillSwitch,
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::Dropout { retries } => {
                write!(f, "feed dropout after {retries} retries")
            }
            FeedError::KillSwitch => f.write_str("kill switch tripped"),
        }
    }
}

impl std::error::Error for FeedError {}

/// What the watchdog saw and did over a run — the trading-layer
/// counterpart of the scheduler core's `FaultReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedFaultReport {
    /// Validated ticks delivered downstream.
    pub ticks_delivered: u64,
    /// Empty polls observed (stalls or exhaustion).
    pub stall_polls: u64,
    /// Retries spent across all cycles.
    pub retries: u64,
    /// Total backoff charged across all retries.
    pub backoff_total: Span,
    /// Ticks rejected for NaN / non-positive / crossed prices.
    pub rejected_invalid: u64,
    /// Ticks rejected for non-monotonic timestamps.
    pub rejected_out_of_order: u64,
    /// Cycles that exhausted the retry budget.
    pub dropouts: u64,
    /// `true` once the kill switch was tripped.
    pub tripped: bool,
}

impl FeedFaultReport {
    /// Total ticks rejected by validation.
    pub fn rejected(&self) -> u64 {
        self.rejected_invalid + self.rejected_out_of_order
    }
}

impl fmt::Display for FeedFaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ticks, {} stall polls, {} retries (backoff {}), \
             {} rejected ({} stale), {} dropouts{}",
            self.ticks_delivered,
            self.stall_polls,
            self.retries,
            self.backoff_total,
            self.rejected(),
            self.rejected_out_of_order,
            self.dropouts,
            if self.tripped { ", KILL SWITCH" } else { "" },
        )
    }
}

/// The feed defence: validates, retries with bounded exponential backoff,
/// and escalates persistent failure to a [`KillSwitch`].
///
/// `FeedWatchdog` is itself a [`TickSource`] (dropouts surface as `None`),
/// so it slots directly under an
/// [`ImpreciseTrader`](crate::imprecise::ImpreciseTrader): a faulted cycle
/// simply has no fresh tick, exactly like a terminated optional part has
/// no opinion.
///
/// Note the watchdog cannot distinguish a stalled feed from an exhausted
/// one — by design. A real handler can't either; a feed that stays quiet
/// past the retry and trip budgets *is* dead as far as trading is
/// concerned, and the kill switch records that determination.
#[derive(Debug)]
pub struct FeedWatchdog<S> {
    inner: S,
    cfg: WatchdogConfig,
    kill: Arc<KillSwitch>,
    last_at: Option<Time>,
    consecutive_dropouts: u32,
    report: FeedFaultReport,
}

impl<S: TickSource> FeedWatchdog<S> {
    /// Wraps `inner` with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if `trip_after` is 0 or the backoff range is inverted.
    pub fn new(inner: S, cfg: WatchdogConfig) -> FeedWatchdog<S> {
        assert!(cfg.trip_after > 0, "trip_after must be at least 1");
        assert!(
            cfg.backoff_start <= cfg.backoff_cap,
            "backoff_start must not exceed backoff_cap"
        );
        FeedWatchdog {
            inner,
            cfg,
            kill: Arc::new(KillSwitch::new()),
            last_at: None,
            consecutive_dropouts: 0,
            report: FeedFaultReport::default(),
        }
    }

    /// A handle to the kill switch, to share with a
    /// [`RiskManager`](crate::risk::RiskManager).
    pub fn kill_switch(&self) -> Arc<KillSwitch> {
        Arc::clone(&self.kill)
    }

    /// What the watchdog has seen and done so far.
    pub fn report(&self) -> &FeedFaultReport {
        &self.report
    }

    /// Polls for the next *validated* tick, retrying empty or invalid
    /// polls up to the configured budget with exponential backoff.
    pub fn poll(&mut self) -> Result<Tick, FeedError> {
        if self.kill.is_tripped() {
            return Err(FeedError::KillSwitch);
        }
        let mut backoff = self.cfg.backoff_start;
        let mut retries = 0u32;
        loop {
            match self.inner.next_tick() {
                Some(tick) => match tick.validate(self.last_at) {
                    Ok(()) => {
                        self.last_at = Some(tick.at);
                        self.consecutive_dropouts = 0;
                        self.report.ticks_delivered += 1;
                        return Ok(tick);
                    }
                    Err(TickError::OutOfOrder { .. }) => {
                        self.report.rejected_out_of_order += 1;
                    }
                    Err(_) => self.report.rejected_invalid += 1,
                },
                None => self.report.stall_polls += 1,
            }
            if retries >= self.cfg.max_retries {
                self.report.dropouts += 1;
                self.consecutive_dropouts += 1;
                if self.consecutive_dropouts >= self.cfg.trip_after {
                    self.kill.trip();
                    self.report.tripped = true;
                }
                return Err(FeedError::Dropout { retries });
            }
            retries += 1;
            self.report.retries += 1;
            self.report.backoff_total += backoff;
            backoff = (backoff * 2).min(self.cfg.backoff_cap);
        }
    }
}

impl<S: TickSource> TickSource for FeedWatchdog<S> {
    /// A dropout or tripped kill switch surfaces as `None`: the consumer
    /// abstains this cycle (or, once tripped, permanently).
    fn next_tick(&mut self) -> Option<Tick> {
        self.poll().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{collect_ticks, SyntheticFeed};

    fn feed(seed: u64) -> SyntheticFeed {
        SyntheticFeed::eur_usd(seed)
    }

    /// Drains up to `n` validated ticks through a watchdog, counting polls.
    fn drain<S: TickSource>(
        dog: &mut FeedWatchdog<S>,
        polls: usize,
    ) -> Vec<Tick> {
        (0..polls).filter_map(|_| dog.next_tick()).collect()
    }

    #[test]
    fn empty_plan_is_transparent() {
        let plan = FeedFaultPlan::none();
        assert!(plan.is_empty());
        let mut faulty = FaultyFeed::new(feed(3), plan);
        let direct = collect_ticks(&mut feed(3), 50);
        let via = collect_ticks(&mut faulty, 50);
        assert_eq!(direct, via);
        assert_eq!(faulty.injected().total(), 0);
    }

    #[test]
    fn plan_is_pure_in_seed_and_slot() {
        let rates = FeedFaultRates {
            stall: 0.1,
            gap: 0.1,
            out_of_order: 0.1,
            nan: 0.1,
            ..FeedFaultRates::default()
        };
        let a = FeedFaultPlan::new(11).with_random_faults(rates);
        let b = FeedFaultPlan::new(11).with_random_faults(rates);
        let c = FeedFaultPlan::new(12).with_random_faults(rates);
        let seq = |p: &FeedFaultPlan| {
            (0..500).map(|s| p.fault_at(s)).collect::<Vec<_>>()
        };
        assert_eq!(seq(&a), seq(&b));
        assert_ne!(seq(&a), seq(&c));
        assert!(seq(&a).iter().any(|f| f.is_some()));
    }

    #[test]
    fn explicit_fault_wins_over_random() {
        let plan = FeedFaultPlan::new(1)
            .with_random_faults(FeedFaultRates {
                nan: 1.0,
                ..FeedFaultRates::default()
            })
            .with_fault(5, FeedFault::OutOfOrder);
        assert_eq!(plan.fault_at(5), Some(FeedFault::OutOfOrder));
        assert_eq!(plan.fault_at(6), Some(FeedFault::NanTick));
    }

    #[test]
    fn faulty_feed_replays_identically() {
        let rates = FeedFaultRates {
            stall: 0.05,
            gap: 0.05,
            out_of_order: 0.05,
            nan: 0.05,
            ..FeedFaultRates::default()
        };
        // Compare by bit pattern: injected NaNs are bitwise identical
        // across replays but compare unequal under f64's `==`.
        let run = || {
            let plan = FeedFaultPlan::new(99).with_random_faults(rates);
            let mut faulty = FaultyFeed::new(feed(7), plan);
            let raw: Vec<Option<(Time, u64, u64)>> = (0..300)
                .map(|_| {
                    faulty.next_tick().map(|t| {
                        (t.at, t.bid.to_bits(), t.ask.to_bits())
                    })
                })
                .collect();
            (raw, faulty.injected())
        };
        let (a, ia) = run();
        let (b, ib) = run();
        assert_eq!(a, b);
        assert_eq!(ia, ib);
        assert!(ia.total() > 0, "rates should have fired: {ia:?}");
    }

    #[test]
    fn nan_ticks_are_injected_and_rejected() {
        let plan = FeedFaultPlan::new(1).with_fault(3, FeedFault::NanTick);
        let mut dog = FeedWatchdog::new(
            FaultyFeed::new(feed(5), plan),
            WatchdogConfig::default(),
        );
        let ticks = drain(&mut dog, 20);
        // The corrupt tick cost one retry; the stream stays clean.
        assert_eq!(ticks.len(), 20);
        assert!(ticks.iter().all(|t| t.bid.is_finite()));
        assert_eq!(dog.report().rejected_invalid, 1);
        assert_eq!(dog.report().retries, 1);
        assert_eq!(dog.report().dropouts, 0);
    }

    #[test]
    fn out_of_order_ticks_are_rejected_and_stream_stays_monotonic() {
        let plan = FeedFaultPlan::new(1).with_fault(4, FeedFault::OutOfOrder);
        let mut dog = FeedWatchdog::new(
            FaultyFeed::new(feed(5), plan),
            WatchdogConfig::default(),
        );
        let ticks = drain(&mut dog, 20);
        assert!(ticks.windows(2).all(|w| w[0].at < w[1].at));
        assert_eq!(dog.report().rejected_out_of_order, 1);
    }

    #[test]
    fn gaps_pass_validation_with_jumped_timestamps() {
        let plan = FeedFaultPlan::new(1)
            .with_fault(2, FeedFault::Gap { ticks: 3 });
        let mut dog = FeedWatchdog::new(
            FaultyFeed::new(feed(5), plan),
            WatchdogConfig::default(),
        );
        let ticks = drain(&mut dog, 10);
        assert_eq!(ticks.len(), 10);
        assert_eq!(dog.report().rejected(), 0);
        // Slot 2 delivers tick index 5 (2, 3, 4 dropped): a 4 s jump.
        let jump = ticks[2].at - ticks[1].at;
        assert_eq!(jump, Span::from_secs(4));
    }

    #[test]
    fn short_stall_is_absorbed_by_retries() {
        let plan = FeedFaultPlan::new(1)
            .with_fault(5, FeedFault::Stall { polls: 3 });
        let mut dog = FeedWatchdog::new(
            FaultyFeed::new(feed(5), plan),
            WatchdogConfig::default(), // 3 retries: just enough
        );
        let ticks = drain(&mut dog, 20);
        assert_eq!(ticks.len(), 20, "stall absorbed, no cycle lost");
        let r = dog.report();
        assert_eq!(r.stall_polls, 3);
        assert_eq!(r.retries, 3);
        assert_eq!(r.dropouts, 0);
        // Backoff doubled: 10 + 20 + 40 ms.
        assert_eq!(r.backoff_total, Span::from_millis(70));
        assert!(!r.tripped);
    }

    #[test]
    fn long_stall_is_a_dropout_but_recovers() {
        let plan = FeedFaultPlan::new(1)
            .with_fault(5, FeedFault::Stall { polls: 6 });
        let mut dog = FeedWatchdog::new(
            FaultyFeed::new(feed(5), plan),
            WatchdogConfig::default(),
        );
        // Poll-by-poll: 5 good, then one dropout (4 empty polls), then the
        // remaining 2 stalled polls are absorbed by the next cycle's
        // retries and ticks resume.
        let results: Vec<Option<Tick>> =
            (0..10).map(|_| dog.next_tick()).collect();
        assert!(results[..5].iter().all(Option::is_some));
        assert!(results[5].is_none(), "retry budget exhausted");
        assert!(results[6..].iter().all(Option::is_some));
        let r = dog.report();
        assert_eq!(r.dropouts, 1);
        assert!(!r.tripped, "one dropout is below the trip threshold");
    }

    #[test]
    fn backoff_is_capped() {
        let plan = FeedFaultPlan::new(1)
            .with_fault(0, FeedFault::Stall { polls: 20 });
        let mut dog = FeedWatchdog::new(
            FaultyFeed::new(feed(5), plan),
            WatchdogConfig {
                max_retries: 6,
                backoff_start: Span::from_millis(100),
                backoff_cap: Span::from_millis(400),
                trip_after: 10,
            },
        );
        assert!(dog.next_tick().is_none());
        // 100 + 200 + 400 + 400 + 400 + 400.
        assert_eq!(dog.report().backoff_total, Span::from_millis(1900));
    }

    #[test]
    fn sustained_stall_trips_the_kill_switch() {
        let plan = FeedFaultPlan::new(1)
            .with_fault(2, FeedFault::Stall { polls: 100 });
        let mut dog = FeedWatchdog::new(
            FaultyFeed::new(feed(5), plan),
            WatchdogConfig::default(), // 3 retries, trip after 3 dropouts
        );
        let kill = dog.kill_switch();
        assert_eq!(drain(&mut dog, 2).len(), 2);
        assert!(!kill.is_tripped());
        // Three consecutive dropout cycles (4 polls each) trip the switch.
        for _ in 0..3 {
            assert_eq!(dog.poll(), Err(FeedError::Dropout { retries: 3 }));
        }
        assert!(kill.is_tripped());
        assert!(dog.report().tripped);
        // Tripped: no more polling, even though the stall would end.
        assert_eq!(dog.poll(), Err(FeedError::KillSwitch));
        assert_eq!(dog.report().stall_polls, 12, "no polls after the trip");
        // Manual reset re-arms the watchdog: polling resumes (the stall
        // is still in progress, so the next cycle is a dropout, not a
        // kill-switch refusal).
        kill.reset();
        dog.consecutive_dropouts = 0;
        assert!(matches!(dog.poll(), Err(FeedError::Dropout { .. })));
    }

    #[test]
    fn good_tick_resets_the_dropout_streak() {
        // Two dropout cycles, a good tick, then two more dropout cycles:
        // never 3 consecutive, so the switch must not trip.
        let plan = FeedFaultPlan::new(1)
            .with_fault(1, FeedFault::Stall { polls: 8 })
            .with_fault(3, FeedFault::Stall { polls: 8 });
        let mut dog = FeedWatchdog::new(
            FaultyFeed::new(feed(5), plan),
            WatchdogConfig::default(),
        );
        let mut good = 0;
        let mut drops = 0;
        for _ in 0..12 {
            match dog.poll() {
                Ok(_) => good += 1,
                Err(FeedError::Dropout { .. }) => drops += 1,
                Err(FeedError::KillSwitch) => panic!("must not trip"),
            }
        }
        assert!(good > 0 && drops >= 4, "good={good} drops={drops}");
        assert!(!dog.report().tripped);
    }

    #[test]
    fn exhausted_feed_eventually_trips() {
        // A truly dead feed is indistinguishable from an endless stall:
        // after trip_after dropout cycles the watchdog declares it dead.
        let bounded = SyntheticFeed::new(
            1,
            crate::market::PriceProcess::GeometricBrownian {
                mu: 0.0,
                sigma: 0.0,
            },
            1.0,
            0.0001,
            Span::from_secs(1),
            Some(2),
        );
        let mut dog = FeedWatchdog::new(bounded, WatchdogConfig::default());
        assert_eq!(drain(&mut dog, 2).len(), 2);
        for _ in 0..3 {
            assert!(matches!(dog.poll(), Err(FeedError::Dropout { .. })));
        }
        assert_eq!(dog.poll(), Err(FeedError::KillSwitch));
    }

    #[test]
    fn report_displays_key_counters() {
        let r = FeedFaultReport {
            ticks_delivered: 10,
            dropouts: 2,
            tripped: true,
            ..FeedFaultReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("10 ticks"), "{s}");
        assert!(s.contains("KILL SWITCH"), "{s}");
    }
}
