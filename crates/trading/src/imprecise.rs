//! The adapter from a trading pipeline to a parallel-extended imprecise
//! task (paper §II-A's worked example):
//!
//! * **mandatory part** — obtain the latest exchange rate from the feed;
//! * **parallel optional parts** — run one analysis (technical or
//!   fundamental) each, in parallel, refining QoS;
//! * **wind-up part** — collect whatever opinions exist, decide
//!   bid / ask / wait, and send the trade request to the venue.
//!
//! [`ImpreciseTrader`] is the shared state those three parts operate on;
//! [`ImpreciseTrader::task_body`] packages them as a [`rtseed::runtime::TaskBody`]
//! for the native executor. Attach a [`PipelineTracer`] to emit
//! [`TraceEvent::PipelineStage`] events on the unified observability
//! stream (`rtseed::obs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rtseed::obs::{PipelineStage, Trace, TraceConfig, TraceEvent, TraceRecorder};
use rtseed::runtime::{OptionalControl, TaskBody};
use rtseed_model::{JobId, PartId, Span, TaskSetError, TaskSpec, Time};

use crate::execution::{Order, PaperVenue, Side};
use crate::market::{Tick, TickSource};
use crate::strategy::{Signal, SignalAggregator, Strategy};

/// Records the trading pipeline's stage transitions as
/// [`TraceEvent::PipelineStage`] events, shared by the mandatory, optional
/// and wind-up threads of a native run (hence the internal lock — the
/// pipeline stages themselves serialize on the trader's own state anyway).
///
/// Cycles are numbered from 0: each [`ImpreciseTrader::ingest`] that
/// obtains a tick starts a new cycle; analyses and the decision record
/// against the current one.
#[derive(Debug)]
pub struct PipelineTracer {
    epoch: Instant,
    cycle: AtomicU64,
    rec: Mutex<TraceRecorder>,
}

impl PipelineTracer {
    /// Creates a tracer; timestamps are nanoseconds since this call.
    ///
    /// When the pipeline trace will be merged with other traces (the
    /// native executor's scheduling trace, or other tracers of the same
    /// run), use [`PipelineTracer::with_epoch`] instead so all timestamps
    /// share one time base.
    pub fn new(config: TraceConfig) -> PipelineTracer {
        PipelineTracer::with_epoch(config, Instant::now())
    }

    /// Creates a tracer whose timestamps are nanoseconds since `epoch`.
    ///
    /// This mirrors the native executor's per-thread recorder idiom: one
    /// `Instant` captured before the run is shared by every recorder, so
    /// merged traces line up on a single time axis instead of each tracer
    /// starting its own clock at construction.
    pub fn with_epoch(config: TraceConfig, epoch: Instant) -> PipelineTracer {
        PipelineTracer {
            epoch,
            cycle: AtomicU64::new(0),
            rec: Mutex::new(TraceRecorder::new(config)),
        }
    }

    fn now(&self) -> Time {
        Time::from_nanos(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn begin_cycle(&self) -> u64 {
        self.cycle.fetch_add(1, Ordering::Relaxed)
    }

    fn current_cycle(&self) -> u64 {
        self.cycle.load(Ordering::Relaxed).saturating_sub(1)
    }

    fn record(&self, cycle: u64, stage: PipelineStage, part: Option<PartId>) {
        let mut rec = self.rec.lock().expect("tracer lock");
        if rec.enabled() {
            let at = self.now();
            rec.record(at, TraceEvent::PipelineStage { cycle, stage, part });
        }
    }

    /// The trace recorded so far (recording continues). Event order follows
    /// the pipeline's own serialization; export with [`rtseed::obs::export`].
    pub fn snapshot(&self) -> Trace {
        self.rec.lock().expect("tracer lock").clone().finish()
    }
}

/// Builds the task set a trading-desk tenant submits to the serving layer
/// ([`rtseed::serve`]): one imprecise pipeline task per symbol, named
/// `"<desk>/<symbol>"`, each with `analyses` parallel optional parts.
///
/// The per-task budget derives from the pipeline cadence `period`:
/// mandatory (ingest) and wind-up (decide) each get 4 % of the period —
/// generous against the real stages, which are microseconds — and every
/// analysis part requests 20 %, so a desk with several analyses *relies*
/// on the imprecise model: under contention the admission test grants a
/// shorter optional deadline and late analyses are terminated, they do not
/// delay the decision.
///
/// # Errors
///
/// Propagates [`TaskSetError`] from the spec builder (zero period and the
/// like).
pub fn desk_task_set(
    desk: &str,
    symbols: &[&str],
    analyses: usize,
    period: Span,
) -> Result<Vec<TaskSpec>, TaskSetError> {
    symbols
        .iter()
        .map(|sym| {
            TaskSpec::builder(format!("{desk}/{sym}"))
                .period(period)
                .mandatory(period.mul_f64(0.04))
                .windup(period.mul_f64(0.04))
                .optional_parts(analyses, period.mul_f64(0.2))
                .build()
        })
        .collect()
}

/// Shared state of one imprecise trading task.
pub struct ImpreciseTrader {
    feed: Mutex<Box<dyn TickSource + Send>>,
    strategies: Vec<Mutex<Box<dyn Strategy>>>,
    aggregator: SignalAggregator,
    venue: Mutex<PaperVenue>,
    current_tick: Mutex<Option<Tick>>,
    opinions: Mutex<Vec<Option<Signal>>>,
    decisions: Mutex<Vec<Signal>>,
    order_quantity: f64,
    tracer: Mutex<Option<Arc<PipelineTracer>>>,
}

impl std::fmt::Debug for ImpreciseTrader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImpreciseTrader")
            .field("strategies", &self.strategies.len())
            .finish_non_exhaustive()
    }
}

impl ImpreciseTrader {
    /// Creates a trader over `feed` running one strategy per parallel
    /// optional part.
    ///
    /// # Panics
    ///
    /// Panics if `strategies` is empty or `order_quantity` is not positive.
    pub fn new(
        feed: Box<dyn TickSource + Send>,
        strategies: Vec<Box<dyn Strategy>>,
        aggregator: SignalAggregator,
        venue: PaperVenue,
        order_quantity: f64,
    ) -> ImpreciseTrader {
        assert!(!strategies.is_empty(), "at least one analysis is required");
        assert!(
            order_quantity > 0.0 && order_quantity.is_finite(),
            "order quantity must be positive"
        );
        let n = strategies.len();
        ImpreciseTrader {
            feed: Mutex::new(feed),
            strategies: strategies.into_iter().map(Mutex::new).collect(),
            aggregator,
            venue: Mutex::new(venue),
            current_tick: Mutex::new(None),
            opinions: Mutex::new(vec![None; n]),
            decisions: Mutex::new(Vec::new()),
            order_quantity,
            tracer: Mutex::new(None),
        }
    }

    /// Attaches a [`PipelineTracer`]: from now on every ingest / analysis /
    /// decision records a [`TraceEvent::PipelineStage`] event.
    pub fn attach_tracer(&self, tracer: Arc<PipelineTracer>) {
        *self.tracer.lock().expect("tracer lock") = Some(tracer);
    }

    fn trace_stage(&self, stage: PipelineStage, part: Option<PartId>) {
        if let Some(tr) = self.tracer.lock().expect("tracer lock").as_ref() {
            let cycle = if matches!(stage, PipelineStage::Ingest) {
                tr.begin_cycle()
            } else {
                tr.current_cycle()
            };
            tr.record(cycle, stage, part);
        }
    }

    /// Number of parallel analyses (the task's `npᵢ`).
    pub fn analyses(&self) -> usize {
        self.strategies.len()
    }

    /// **Mandatory part**: pulls the next tick, resets this cycle's
    /// opinions and publishes the tick to the venue. Returns `false` when
    /// the feed is exhausted.
    pub fn ingest(&self) -> bool {
        let Some(tick) = self.feed.lock().expect("feed lock").next_tick() else {
            return false;
        };
        self.trace_stage(PipelineStage::Ingest, None);
        *self.current_tick.lock().expect("tick lock") = Some(tick);
        self.opinions
            .lock()
            .expect("opinions lock")
            .iter_mut()
            .for_each(|o| *o = None);
        self.venue.lock().expect("venue lock").on_tick(tick);
        true
    }

    /// **Parallel optional part** `part`: feeds the current tick to that
    /// part's strategy and records its opinion. `should_stop` is polled
    /// between work units for cooperative termination; an analysis cut
    /// before recording simply abstains this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn analyze(&self, part: usize, should_stop: &dyn Fn() -> bool) {
        let tick = *self.current_tick.lock().expect("tick lock");
        let Some(tick) = tick else {
            return;
        };
        self.trace_stage(PipelineStage::Analysis, Some(PartId(part as u32)));
        if should_stop() {
            return; // terminated before doing anything: abstain
        }
        let mut strategy = self.strategies[part].lock().expect("strategy lock");
        strategy.on_tick(&tick);
        if should_stop() {
            return; // terminated mid-analysis: abstain (partial work kept)
        }
        let opinion = strategy.signal();
        self.opinions.lock().expect("opinions lock")[part] = opinion;
    }

    /// **Wind-up part**: aggregates the surviving opinions, records the
    /// decision, and sends a trade request when it is not `Wait`.
    pub fn decide(&self) -> Signal {
        self.trace_stage(PipelineStage::Decide, None);
        let opinions = self.opinions.lock().expect("opinions lock").clone();
        let signal = self.aggregator.decide(&opinions);
        self.decisions.lock().expect("decisions lock").push(signal);
        if let Some(side) = Side::from_signal(signal) {
            let mut venue = self.venue.lock().expect("venue lock");
            let at = self
                .current_tick
                .lock()
                .expect("tick lock")
                .map(|t| t.at)
                .unwrap_or_default();
            // A failed submission (no market yet) is impossible after
            // ingest(); quantity is validated at construction.
            let _ = venue.submit(Order {
                at,
                side,
                quantity: self.order_quantity,
            });
        }
        signal
    }

    /// Runs one full synchronous cycle (ingest → all analyses → decide) —
    /// the precise-computation baseline, used by tests and examples.
    pub fn run_cycle_synchronous(&self) -> Option<Signal> {
        if !self.ingest() {
            return None;
        }
        for part in 0..self.analyses() {
            self.analyze(part, &|| false);
        }
        Some(self.decide())
    }

    /// All decisions made so far, in cycle order.
    pub fn decisions(&self) -> Vec<Signal> {
        self.decisions.lock().expect("decisions lock").clone()
    }

    /// Venue snapshot (position, fills, P&L).
    pub fn venue_snapshot(&self) -> PaperVenue {
        self.venue.lock().expect("venue lock").clone()
    }

    /// Packages this trader as a [`TaskBody`] for
    /// [`rtseed::runtime::NativeExecutor`]: mandatory = [`ImpreciseTrader::ingest`],
    /// optional part k = [`ImpreciseTrader::analyze`]`(k)`, wind-up =
    /// [`ImpreciseTrader::decide`].
    pub fn task_body(self: &Arc<Self>) -> TaskBody {
        let m = Arc::clone(self);
        let o = Arc::clone(self);
        let w = Arc::clone(self);
        TaskBody::new(
            move |_job: JobId| {
                m.ingest();
            },
            move |_job, part, ctl: &OptionalControl| {
                o.analyze(part.index(), &|| ctl.should_stop());
            },
            move |_job| {
                w.decide();
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::ExecutionConfig;
    use crate::market::SyntheticFeed;
    use crate::strategy::{BollingerReversion, MacdMomentum, RsiContrarian};

    fn trader(quorum: usize) -> ImpreciseTrader {
        ImpreciseTrader::new(
            Box::new(SyntheticFeed::eur_usd(42)),
            vec![
                Box::new(BollingerReversion::standard()),
                Box::new(MacdMomentum::new(0.00005)),
                Box::new(RsiContrarian::standard()),
            ],
            SignalAggregator::new(quorum),
            PaperVenue::new(ExecutionConfig::default()),
            1.0,
        )
    }

    #[test]
    fn synchronous_cycles_produce_decisions() {
        let t = trader(1);
        for _ in 0..100 {
            assert!(t.run_cycle_synchronous().is_some());
        }
        assert_eq!(t.decisions().len(), 100);
    }

    #[test]
    fn warmup_cycles_wait() {
        let t = trader(1);
        // Before any indicator window fills, every analysis abstains.
        assert_eq!(t.run_cycle_synchronous(), Some(Signal::Wait));
    }

    #[test]
    fn discarded_analyses_abstain() {
        let t = trader(1);
        // Warm up the strategies fully.
        for _ in 0..60 {
            t.run_cycle_synchronous();
        }
        // Next cycle: ingest but terminate every analysis immediately —
        // all abstain, the decision must be Wait regardless of market.
        assert!(t.ingest());
        for part in 0..t.analyses() {
            t.analyze(part, &|| true);
        }
        assert_eq!(t.decide(), Signal::Wait);
    }

    #[test]
    fn trades_are_sent_to_the_venue() {
        let t = trader(1);
        for _ in 0..500 {
            t.run_cycle_synchronous();
        }
        let traded: usize = t
            .decisions()
            .iter()
            .filter(|s| !matches!(s, Signal::Wait))
            .count();
        let venue = t.venue_snapshot();
        assert_eq!(venue.fills().len(), traded);
    }

    #[test]
    fn higher_quorum_trades_less() {
        let loose = trader(1);
        let strict = trader(3);
        for _ in 0..500 {
            loose.run_cycle_synchronous();
            strict.run_cycle_synchronous();
        }
        let trades = |t: &ImpreciseTrader| {
            t.decisions()
                .iter()
                .filter(|s| !matches!(s, Signal::Wait))
                .count()
        };
        assert!(trades(&strict) <= trades(&loose));
    }

    #[test]
    fn exhausted_feed_stops() {
        let t = ImpreciseTrader::new(
            Box::new(SyntheticFeed::new(
                1,
                crate::market::PriceProcess::GeometricBrownian { mu: 0.0, sigma: 0.001 },
                1.0,
                0.0001,
                rtseed_model::Span::from_secs(1),
                Some(3),
            )),
            vec![Box::new(BollingerReversion::new(2, 2.0))],
            SignalAggregator::new(1),
            PaperVenue::new(ExecutionConfig::default()),
            1.0,
        );
        assert!(t.run_cycle_synchronous().is_some());
        assert!(t.run_cycle_synchronous().is_some());
        assert!(t.run_cycle_synchronous().is_some());
        assert!(t.run_cycle_synchronous().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one analysis")]
    fn rejects_empty_strategies() {
        let _ = ImpreciseTrader::new(
            Box::new(SyntheticFeed::eur_usd(0)),
            vec![],
            SignalAggregator::new(1),
            PaperVenue::new(ExecutionConfig::default()),
            1.0,
        );
    }

    #[test]
    fn trader_over_guarded_faulty_feed_keeps_trading() {
        use crate::fault::{
            FaultyFeed, FeedFault, FeedFaultPlan, FeedWatchdog,
            WatchdogConfig,
        };

        // A feed with every fault class injected, guarded by the
        // watchdog, under the full trading pipeline.
        let plan = FeedFaultPlan::new(21)
            .with_fault(10, FeedFault::NanTick)
            .with_fault(20, FeedFault::OutOfOrder)
            .with_fault(30, FeedFault::Gap { ticks: 2 })
            .with_fault(40, FeedFault::Stall { polls: 2 });
        let dog = FeedWatchdog::new(
            FaultyFeed::new(SyntheticFeed::eur_usd(42), plan),
            WatchdogConfig::default(),
        );
        let t = ImpreciseTrader::new(
            Box::new(dog),
            vec![
                Box::new(BollingerReversion::standard()),
                Box::new(MacdMomentum::new(0.00005)),
                Box::new(RsiContrarian::standard()),
            ],
            SignalAggregator::new(1),
            PaperVenue::new(ExecutionConfig::default()),
            1.0,
        );
        // Every cycle still gets a validated tick: the faults are
        // absorbed below the strategies.
        for _ in 0..100 {
            assert!(t.run_cycle_synchronous().is_some());
        }
        assert_eq!(t.decisions().len(), 100);
    }

    #[test]
    fn watchdog_is_a_send_tick_source() {
        use crate::fault::{FeedFaultPlan, FaultyFeed, FeedWatchdog, WatchdogConfig};
        use crate::market::TickSource;

        // Boxed feeds compose under the watchdog too (blanket impl).
        let boxed: Box<dyn TickSource + Send> =
            Box::new(SyntheticFeed::eur_usd(1));
        let mut dog = FeedWatchdog::new(
            FaultyFeed::new(boxed, FeedFaultPlan::none()),
            WatchdogConfig::default(),
        );
        assert!(dog.next_tick().is_some());
        fn assert_send<T: Send>(_: &T) {}
        assert_send(&dog);
    }

    #[test]
    fn native_task_body_runs_the_pipeline() {
        use rtseed::config::SystemConfig;
        use rtseed::executor::RunConfig;
        use rtseed::policy::AssignmentPolicy;
        use rtseed::runtime::NativeExecutor;
        use rtseed::termination::TerminationMode;
        use rtseed_model::{Span, TaskSet, TaskSpec, Topology};

        let trader = Arc::new(trader(1));
        let tracer = Arc::new(PipelineTracer::new(TraceConfig::enabled()));
        trader.attach_tracer(Arc::clone(&tracer));
        let spec = TaskSpec::builder("trader")
            .period(Span::from_millis(40))
            .mandatory(Span::from_millis(2))
            .windup(Span::from_millis(2))
            .optional_parts(trader.analyses(), Span::from_millis(20))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![spec]).unwrap(),
            Topology::uniprocessor(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        let exec = NativeExecutor::new(
            cfg,
            RunConfig {
                jobs: 5,
                termination: TerminationMode::PeriodicCheck {
                    interval: Span::from_millis(1),
                },
                attempt_rt: false,
                ..RunConfig::default()
            },
        );
        let out = exec.run(vec![trader.task_body()]).expect("native run");
        assert_eq!(out.qos.jobs(), 5);
        assert_eq!(trader.decisions().len(), 5);
        // Analyses are fast: they complete, full QoS.
        let (completed, _, _) = out.qos.outcome_totals();
        assert_eq!(completed, 15);
        // Every cycle traced ingest, three analyses, one decision.
        let trace = tracer.snapshot();
        let stage_count = |s: PipelineStage| {
            trace.count(
                |e| matches!(e, TraceEvent::PipelineStage { stage, .. } if *stage == s),
            )
        };
        assert_eq!(stage_count(PipelineStage::Ingest), 5);
        assert_eq!(stage_count(PipelineStage::Analysis), 15);
        assert_eq!(stage_count(PipelineStage::Decide), 5);
    }

    #[test]
    fn desk_task_set_names_and_sizes_tasks_per_symbol() {
        let set = desk_task_set(
            "alpha",
            &["EURUSD", "GBPUSD", "USDJPY"],
            3,
            Span::from_millis(50),
        )
        .unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set[0].name(), "alpha/EURUSD");
        assert_eq!(set[2].name(), "alpha/USDJPY");
        for spec in &set {
            assert_eq!(spec.optional_count(), 3);
            assert_eq!(spec.mandatory(), Span::from_millis(2));
            assert_eq!(spec.windup(), Span::from_millis(2));
            // Mandatory + wind-up utilization stays well under one CPU.
            assert!(spec.utilization() < 0.1, "{}", spec.utilization());
        }
    }

    #[test]
    fn desk_task_set_is_admissible_by_the_serving_layer() {
        use rtseed::serve::{SessionManager, Submission};
        use rtseed::{AssignmentPolicy, RunConfig};
        use rtseed_analysis::PartitionHeuristic;
        use rtseed_model::Topology;

        let mut mgr = SessionManager::new(
            Topology::quad_core_smt2(),
            PartitionHeuristic::WorstFitDecreasing,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 2,
                ..Default::default()
            },
        );
        let desk = desk_task_set("desk", &["EURUSD", "GBPUSD"], 2, Span::from_millis(50))
            .unwrap();
        mgr.submit(Submission::new("desk", desk))
            .expect("a light desk is admissible");
        let out = mgr.run();
        assert_eq!(out.tenant("desk").unwrap().qos.jobs(), 4);
    }

    #[test]
    fn shared_epoch_puts_tracers_on_one_time_axis() {
        let epoch = Instant::now();
        let a = Arc::new(PipelineTracer::with_epoch(TraceConfig::enabled(), epoch));
        let b = Arc::new(PipelineTracer::with_epoch(TraceConfig::enabled(), epoch));
        let ta = trader(1);
        let tb = trader(1);
        ta.attach_tracer(Arc::clone(&a));
        tb.attach_tracer(Arc::clone(&b));
        ta.run_cycle_synchronous();
        tb.run_cycle_synchronous();
        // b's cycle ran strictly after a's; with a shared epoch its
        // timestamps are comparable and never earlier.
        let last_a = a.snapshot().events().last().map(|(t, _)| *t).unwrap();
        let first_b = b.snapshot().events().first().map(|(t, _)| *t).unwrap();
        assert!(first_b >= last_a, "{first_b:?} < {last_a:?}");
    }

    #[test]
    fn pipeline_tracer_numbers_cycles() {
        let t = trader(1);
        let tracer = Arc::new(PipelineTracer::new(TraceConfig::enabled()));
        t.attach_tracer(Arc::clone(&tracer));
        for _ in 0..3 {
            t.run_cycle_synchronous();
        }
        let trace = tracer.snapshot();
        // ingest + 3 analyses + decide, per cycle.
        assert_eq!(trace.len(), 3 * 5);
        let max_cycle = trace
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::PipelineStage { cycle, .. } => Some(*cycle),
                _ => None,
            })
            .max();
        assert_eq!(max_cycle, Some(2));
        // Detached by default: a fresh trader records nothing.
        let silent = trader(1);
        silent.run_cycle_synchronous();
        assert_eq!(PipelineTracer::new(TraceConfig::enabled()).snapshot().len(), 0);
    }
}
