//! Market data: ticks, synthetic price processes, replay, and a compact
//! wire codec.
//!
//! The paper's feed (OANDA Japan) delivers one exchange rate per second;
//! [`SyntheticFeed`] reproduces that cadence with a seeded stochastic
//! process so experiments are reproducible offline.

use core::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtseed_model::{Span, Time};
use serde::{Deserialize, Serialize};

/// One market tick: best bid/ask at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tick {
    /// Feed timestamp.
    pub at: Time,
    /// Best bid (what a seller receives).
    pub bid: f64,
    /// Best ask (what a buyer pays).
    pub ask: f64,
}

impl Tick {
    /// Mid price.
    #[inline]
    pub fn mid(&self) -> f64 {
        (self.bid + self.ask) / 2.0
    }

    /// Quoted spread.
    #[inline]
    pub fn spread(&self) -> f64 {
        self.ask - self.bid
    }

    /// Encodes the tick to the 24-byte wire format
    /// (`u64` nanos, `f64` bid, `f64` ask, all big-endian).
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.at.as_nanos());
        buf.put_f64(self.bid);
        buf.put_f64(self.ask);
    }

    /// Decodes one tick from the wire format.
    ///
    /// Returns `None` if fewer than 24 bytes are available (no bytes are
    /// consumed in that case).
    pub fn decode(buf: &mut Bytes) -> Option<Tick> {
        if buf.len() < 24 {
            return None;
        }
        Some(Tick {
            at: Time::from_nanos(buf.get_u64()),
            bid: buf.get_f64(),
            ask: buf.get_f64(),
        })
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:.5}/{:.5}", self.at, self.bid, self.ask)
    }
}

/// Why a tick failed [`Tick::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TickError {
    /// Bid or ask is NaN or infinite.
    NonFinite,
    /// Bid or ask is not strictly positive.
    NonPositive,
    /// Ask is below bid (crossed book).
    CrossedBook,
    /// Timestamp is not after the previously accepted tick.
    OutOfOrder {
        /// Timestamp of the last accepted tick.
        last: Time,
        /// Timestamp of the offending tick.
        at: Time,
    },
}

impl fmt::Display for TickError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TickError::NonFinite => f.write_str("non-finite price"),
            TickError::NonPositive => f.write_str("non-positive price"),
            TickError::CrossedBook => f.write_str("crossed book (ask < bid)"),
            TickError::OutOfOrder { last, at } => {
                write!(f, "out-of-order tick ({at} after {last})")
            }
        }
    }
}

impl std::error::Error for TickError {}

impl Tick {
    /// Validates the tick against basic feed invariants: finite, strictly
    /// positive prices, an uncrossed book, and (when `previous` is the
    /// timestamp of the last accepted tick) strictly increasing time.
    ///
    /// This is the sanity gate a real feed handler runs before letting a
    /// tick anywhere near the strategies; `FeedWatchdog` in
    /// [`fault`](crate::fault) applies it to every polled tick.
    pub fn validate(&self, previous: Option<Time>) -> Result<(), TickError> {
        if !self.bid.is_finite() || !self.ask.is_finite() {
            return Err(TickError::NonFinite);
        }
        if self.bid <= 0.0 || self.ask <= 0.0 {
            return Err(TickError::NonPositive);
        }
        if self.ask < self.bid {
            return Err(TickError::CrossedBook);
        }
        if let Some(last) = previous {
            if self.at <= last {
                return Err(TickError::OutOfOrder { last, at: self.at });
            }
        }
        Ok(())
    }
}

/// A source of market ticks.
pub trait TickSource {
    /// The next tick, or `None` when the feed is exhausted.
    fn next_tick(&mut self) -> Option<Tick>;
}

impl<T: TickSource + ?Sized> TickSource for Box<T> {
    fn next_tick(&mut self) -> Option<Tick> {
        (**self).next_tick()
    }
}

/// The stochastic process driving a [`SyntheticFeed`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PriceProcess {
    /// Geometric Brownian motion with per-step drift `mu` and volatility
    /// `sigma` (fractions of price per step).
    GeometricBrownian {
        /// Drift per step.
        mu: f64,
        /// Volatility per step.
        sigma: f64,
    },
    /// Ornstein–Uhlenbeck mean reversion towards `mean` with reversion
    /// speed `theta` and noise `sigma` (absolute price units).
    OrnsteinUhlenbeck {
        /// Long-run mean.
        mean: f64,
        /// Reversion speed per step (0–1).
        theta: f64,
        /// Noise standard deviation per step.
        sigma: f64,
    },
}

/// Deterministic synthetic tick feed (one tick per `interval`, like the
/// paper's 1 Hz OANDA feed).
///
/// # Examples
///
/// ```
/// use rtseed_trading::market::{PriceProcess, SyntheticFeed, TickSource};
///
/// let mut feed = SyntheticFeed::eur_usd(42);
/// let first = feed.next_tick().unwrap();
/// assert!(first.bid < first.ask);
/// ```
#[derive(Debug)]
pub struct SyntheticFeed {
    rng: StdRng,
    process: PriceProcess,
    price: f64,
    half_spread: f64,
    interval: Span,
    now: Time,
    remaining: Option<u64>,
}

impl SyntheticFeed {
    /// Creates a feed starting at `initial` with the given process,
    /// half-spread, tick interval and optional tick budget.
    pub fn new(
        seed: u64,
        process: PriceProcess,
        initial: f64,
        half_spread: f64,
        interval: Span,
        remaining: Option<u64>,
    ) -> SyntheticFeed {
        assert!(initial > 0.0, "initial price must be positive");
        assert!(half_spread >= 0.0, "half-spread must be non-negative");
        assert!(!interval.is_zero(), "tick interval must be positive");
        SyntheticFeed {
            rng: StdRng::seed_from_u64(seed),
            process,
            price: initial,
            half_spread,
            interval,
            now: Time::ZERO,
            remaining,
        }
    }

    /// An EUR/USD-like feed: 1 tick/s, mild mean reversion around 1.10,
    /// ~1 pip spread — the paper's motivating data source.
    pub fn eur_usd(seed: u64) -> SyntheticFeed {
        SyntheticFeed::new(
            seed,
            PriceProcess::OrnsteinUhlenbeck {
                mean: 1.10,
                theta: 0.05,
                sigma: 0.0008,
            },
            1.10,
            0.00005,
            Span::from_secs(1),
            None,
        )
    }

    /// Normal-ish sample via a 12-uniform sum (Irwin–Hall, variance 1).
    fn gauss(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.rng.random::<f64>();
        }
        acc - 6.0
    }

    fn step(&mut self) {
        let z = self.gauss();
        match self.process {
            PriceProcess::GeometricBrownian { mu, sigma } => {
                self.price *= 1.0 + mu + sigma * z;
            }
            PriceProcess::OrnsteinUhlenbeck { mean, theta, sigma } => {
                self.price += theta * (mean - self.price) + sigma * z;
            }
        }
        self.price = self.price.max(1e-9);
    }
}

impl TickSource for SyntheticFeed {
    fn next_tick(&mut self) -> Option<Tick> {
        if let Some(rem) = &mut self.remaining {
            if *rem == 0 {
                return None;
            }
            *rem -= 1;
        }
        self.step();
        let tick = Tick {
            at: self.now,
            bid: self.price - self.half_spread,
            ask: self.price + self.half_spread,
        };
        self.now += self.interval;
        Some(tick)
    }
}

/// Replays a recorded sequence of ticks.
#[derive(Debug, Clone)]
pub struct ReplayFeed {
    ticks: std::vec::IntoIter<Tick>,
}

impl ReplayFeed {
    /// Creates a replay source from recorded ticks.
    pub fn new(ticks: Vec<Tick>) -> ReplayFeed {
        ReplayFeed {
            ticks: ticks.into_iter(),
        }
    }
}

impl TickSource for ReplayFeed {
    fn next_tick(&mut self) -> Option<Tick> {
        self.ticks.next()
    }
}

/// Collects `n` ticks from a source (convenience for tests/benches).
pub fn collect_ticks(source: &mut impl TickSource, n: usize) -> Vec<Tick> {
    (0..n).map_while(|_| source.next_tick()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_accessors() {
        let t = Tick {
            at: Time::ZERO,
            bid: 1.0999,
            ask: 1.1001,
        };
        assert!((t.mid() - 1.1).abs() < 1e-12);
        assert!((t.spread() - 0.0002).abs() < 1e-12);
    }

    #[test]
    fn wire_roundtrip() {
        let t = Tick {
            at: Time::from_nanos(123_456_789),
            bid: 1.09995,
            ask: 1.10005,
        };
        let mut buf = BytesMut::new();
        t.encode(&mut buf);
        assert_eq!(buf.len(), 24);
        let mut bytes = buf.freeze();
        let back = Tick::decode(&mut bytes).unwrap();
        assert_eq!(back, t);
        assert!(bytes.is_empty());
    }

    #[test]
    fn decode_short_buffer_is_none() {
        let mut short = Bytes::from_static(&[0u8; 23]);
        assert!(Tick::decode(&mut short).is_none());
        assert_eq!(short.len(), 23, "no bytes consumed");
    }

    #[test]
    fn decode_stream_of_ticks() {
        let mut buf = BytesMut::new();
        let ticks: Vec<Tick> = (0..5)
            .map(|i| Tick {
                at: Time::from_nanos(i),
                bid: 1.0 + i as f64,
                ask: 1.1 + i as f64,
            })
            .collect();
        for t in &ticks {
            t.encode(&mut buf);
        }
        let mut bytes = buf.freeze();
        let mut decoded = Vec::new();
        while let Some(t) = Tick::decode(&mut bytes) {
            decoded.push(t);
        }
        assert_eq!(decoded, ticks);
    }

    #[test]
    fn synthetic_feed_is_deterministic() {
        let a = collect_ticks(&mut SyntheticFeed::eur_usd(7), 100);
        let b = collect_ticks(&mut SyntheticFeed::eur_usd(7), 100);
        assert_eq!(a, b);
        let c = collect_ticks(&mut SyntheticFeed::eur_usd(8), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn feed_cadence_matches_interval() {
        let ticks = collect_ticks(&mut SyntheticFeed::eur_usd(1), 10);
        for (i, t) in ticks.iter().enumerate() {
            assert_eq!(t.at, Time::ZERO + Span::from_secs(1) * i as u64);
        }
    }

    #[test]
    fn spread_is_always_positive() {
        let ticks = collect_ticks(&mut SyntheticFeed::eur_usd(3), 1000);
        assert!(ticks.iter().all(|t| t.spread() > 0.0));
        assert!(ticks.iter().all(|t| t.bid > 0.0));
    }

    #[test]
    fn ou_process_reverts_to_mean() {
        // Start far from the mean; after many steps the average of the
        // tail should be near the mean.
        let mut feed = SyntheticFeed::new(
            5,
            PriceProcess::OrnsteinUhlenbeck {
                mean: 1.10,
                theta: 0.1,
                sigma: 0.0005,
            },
            2.0,
            0.0,
            Span::from_secs(1),
            None,
        );
        let ticks = collect_ticks(&mut feed, 2000);
        let tail_mean: f64 =
            ticks[1000..].iter().map(Tick::mid).sum::<f64>() / 1000.0;
        assert!((tail_mean - 1.10).abs() < 0.02, "{tail_mean}");
    }

    #[test]
    fn gbm_drift_moves_price() {
        let mut feed = SyntheticFeed::new(
            9,
            PriceProcess::GeometricBrownian {
                mu: 0.001,
                sigma: 0.0001,
            },
            1.0,
            0.0,
            Span::from_secs(1),
            None,
        );
        let ticks = collect_ticks(&mut feed, 1000);
        assert!(
            ticks.last().unwrap().mid() > 2.0,
            "1.001^1000 ≈ 2.7, got {}",
            ticks.last().unwrap().mid()
        );
    }

    #[test]
    fn bounded_feed_exhausts() {
        let mut feed = SyntheticFeed::new(
            1,
            PriceProcess::GeometricBrownian { mu: 0.0, sigma: 0.0 },
            1.0,
            0.0,
            Span::from_secs(1),
            Some(3),
        );
        assert_eq!(collect_ticks(&mut feed, 10).len(), 3);
        assert!(feed.next_tick().is_none());
    }

    #[test]
    fn replay_feed_replays() {
        let ticks = collect_ticks(&mut SyntheticFeed::eur_usd(2), 5);
        let mut replay = ReplayFeed::new(ticks.clone());
        assert_eq!(collect_ticks(&mut replay, 10), ticks);
    }

    #[test]
    #[should_panic(expected = "initial price must be positive")]
    fn rejects_non_positive_initial() {
        let _ = SyntheticFeed::new(
            0,
            PriceProcess::GeometricBrownian { mu: 0.0, sigma: 0.0 },
            0.0,
            0.0,
            Span::from_secs(1),
            None,
        );
    }

    #[test]
    fn validate_accepts_sane_ticks() {
        let t = Tick {
            at: Time::from_nanos(10),
            bid: 1.0999,
            ask: 1.1001,
        };
        assert_eq!(t.validate(None), Ok(()));
        assert_eq!(t.validate(Some(Time::from_nanos(9))), Ok(()));
    }

    #[test]
    fn validate_rejects_corrupt_ticks() {
        let base = Tick {
            at: Time::from_nanos(10),
            bid: 1.0999,
            ask: 1.1001,
        };
        let nan = Tick { bid: f64::NAN, ..base };
        assert_eq!(nan.validate(None), Err(TickError::NonFinite));
        let inf = Tick { ask: f64::INFINITY, ..base };
        assert_eq!(inf.validate(None), Err(TickError::NonFinite));
        let neg = Tick { bid: -1.0, ask: 1.0, ..base };
        assert_eq!(neg.validate(None), Err(TickError::NonPositive));
        let crossed = Tick { bid: 1.2, ask: 1.1, ..base };
        assert_eq!(crossed.validate(None), Err(TickError::CrossedBook));
        assert_eq!(
            base.validate(Some(Time::from_nanos(10))),
            Err(TickError::OutOfOrder {
                last: Time::from_nanos(10),
                at: Time::from_nanos(10),
            }),
        );
        assert!(TickError::CrossedBook.to_string().contains("crossed"));
    }

    #[test]
    fn display() {
        let t = Tick {
            at: Time::ZERO,
            bid: 1.1,
            ask: 1.2,
        };
        assert!(t.to_string().contains("1.10000/1.20000"));
    }
}
