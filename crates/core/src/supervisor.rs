//! The overload supervisor: runtime defence of the real-time guarantee
//! when execution demand exceeds what admission analysis assumed.
//!
//! Offline response-time analysis (`rtseed-analysis`) proves mandatory and
//! wind-up parts schedulable *for their declared WCETs*. A WCET fault — a
//! stuck market feed, a pathological input, an injected overrun from a
//! [`FaultPlan`](rtseed_sim::FaultPlan) — voids that proof. The supervisor
//! restores it with three escalating mechanisms:
//!
//! 1. **Budget cut**: every real-time part gets an execution budget
//!    (declared WCET × [`budget_factor`](SupervisorConfig::budget_factor)).
//!    A part that reaches its budget is cut — treated as complete — so its
//!    *scheduling* demand never exceeds what the analysis admitted, and
//!    lower-priority mandatory/wind-up parts keep their response-time
//!    bounds. In the imprecise model this is safe-by-construction: the
//!    wind-up part exists precisely to produce an output from whatever has
//!    been computed so far.
//! 2. **Task quarantine**: a task that overruns
//!    [`quarantine_after`](SupervisorConfig::quarantine_after) consecutive
//!    jobs has its *optional* parts shed until it runs
//!    [`recover_after`](SupervisorConfig::recover_after) clean jobs —
//!    localized load shedding for a single misbehaving task.
//! 3. **Degraded mode**: when overruns are system-wide
//!    ([`degrade_after`](SupervisorConfig::degrade_after) consecutive
//!    overrun events with no clean job in between), the whole system drops
//!    to mandatory + wind-up only. Recovery requires
//!    [`recover_after`](SupervisorConfig::recover_after) consecutive clean
//!    jobs — hysteresis, so a marginal system does not flap between modes.
//!
//! The supervisor is deterministic state over deterministic inputs, so a
//! supervised run under a fault plan replays exactly. Everything it
//! observes and does is tallied in a [`FaultReport`].

use rtseed_model::{Span, Time};
use serde::{Deserialize, Serialize};

use crate::report::FaultReport;

/// Overload supervisor tuning. `Default` is **disabled** (executors behave
/// exactly as without a supervisor); flip [`enabled`](Self::enabled) on to
/// arm it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Whether the supervisor is armed at all.
    pub enabled: bool,
    /// Real-time part budget as a multiple of the declared WCET. 1.0 cuts
    /// exactly at the analysed demand; values > 1.0 tolerate small jitter
    /// at the cost of (bounded) extra interference on lower priorities.
    pub budget_factor: f64,
    /// Consecutive overruns of one task before its optional parts are
    /// quarantined.
    pub quarantine_after: u32,
    /// Consecutive overrun events (across all tasks, no clean job in
    /// between) before the system enters degraded mode.
    pub degrade_after: u32,
    /// Consecutive clean jobs required to leave quarantine / degraded
    /// mode (the recovery hysteresis).
    pub recover_after: u32,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            enabled: false,
            budget_factor: 1.0,
            quarantine_after: 3,
            degrade_after: 2,
            recover_after: 4,
        }
    }
}

impl SupervisorConfig {
    /// An armed supervisor with the default thresholds.
    pub fn armed() -> SupervisorConfig {
        SupervisorConfig {
            enabled: true,
            ..SupervisorConfig::default()
        }
    }
}

/// The supervisor's global operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverloadMode {
    /// Full service: optional parts are scheduled normally.
    Normal,
    /// Load shedding: every task runs mandatory + wind-up only.
    Degraded,
}

/// What an overrun notification changed, so the executor can trace it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverrunResponse {
    /// The overrunning task just entered quarantine.
    pub quarantined_task: bool,
    /// The system just entered degraded mode.
    pub entered_degraded: bool,
}

/// What a clean-job notification changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanResponse {
    /// The system just recovered from degraded mode to normal.
    pub recovered: bool,
}

/// Per-run overload supervisor state. Create one per executor run with
/// [`OverloadSupervisor::new`]; drive it with the `on_*`/`note_*` hooks;
/// harvest the [`FaultReport`] at the end.
#[derive(Debug, Clone)]
pub struct OverloadSupervisor {
    cfg: SupervisorConfig,
    mode: OverloadMode,
    overrun_streak: Vec<u32>,
    clean_streak: Vec<u32>,
    quarantined: Vec<bool>,
    global_overrun_streak: u32,
    global_clean_streak: u32,
    episode_start: Option<Time>,
    degraded_since: Option<Time>,
    report: FaultReport,
}

impl OverloadSupervisor {
    /// A supervisor for `tasks` tasks under `cfg`.
    pub fn new(cfg: SupervisorConfig, tasks: usize) -> OverloadSupervisor {
        OverloadSupervisor {
            cfg,
            mode: OverloadMode::Normal,
            overrun_streak: vec![0; tasks],
            clean_streak: vec![0; tasks],
            quarantined: vec![false; tasks],
            global_overrun_streak: 0,
            global_clean_streak: 0,
            episode_start: None,
            degraded_since: None,
            report: FaultReport::new(),
        }
    }

    /// Whether the supervisor is armed.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Current operating mode.
    pub fn mode(&self) -> OverloadMode {
        self.mode
    }

    /// Whether `task` is currently quarantined.
    pub fn quarantined(&self, task: usize) -> bool {
        self.quarantined[task]
    }

    /// Grows the per-task state by one freshly-admitted task (clean
    /// streaks, not quarantined). Supports the serving layer's dynamic
    /// task arrival; global overload state is unaffected.
    pub fn add_task(&mut self) {
        self.overrun_streak.push(0);
        self.clean_streak.push(0);
        self.quarantined.push(false);
    }

    /// The execution budget for a real-time part with the given declared
    /// WCET.
    pub fn budget(&self, declared: Span) -> Span {
        declared.mul_f64(self.cfg.budget_factor)
    }

    /// Whether `task`'s next job must shed its optional parts (degraded
    /// mode or task quarantine). Always `false` when disarmed.
    pub fn shed_optional(&self, task: usize) -> bool {
        self.cfg.enabled && (self.mode == OverloadMode::Degraded || self.quarantined[task])
    }

    /// A real-time part of `task` hit its budget with demand remaining.
    /// Returns which escalations fired so the caller can trace them.
    pub fn on_overrun(&mut self, task: usize, now: Time) -> OverrunResponse {
        let mut resp = OverrunResponse::default();
        self.report.overruns_detected += 1;
        self.clean_streak[task] = 0;
        self.overrun_streak[task] += 1;
        if !self.quarantined[task] && self.overrun_streak[task] >= self.cfg.quarantine_after {
            self.quarantined[task] = true;
            self.report.quarantines += 1;
            resp.quarantined_task = true;
        }
        self.global_clean_streak = 0;
        self.global_overrun_streak += 1;
        if self.episode_start.is_none() {
            self.episode_start = Some(now);
        }
        if self.mode == OverloadMode::Normal
            && self.global_overrun_streak >= self.cfg.degrade_after
        {
            self.mode = OverloadMode::Degraded;
            self.degraded_since = Some(now);
            self.report.degraded_entries += 1;
            resp.entered_degraded = true;
        }
        resp
    }

    /// A job of `task` finished within budget and met its deadline.
    pub fn on_clean_job(&mut self, task: usize, now: Time) -> CleanResponse {
        let mut resp = CleanResponse::default();
        self.overrun_streak[task] = 0;
        self.clean_streak[task] += 1;
        if self.quarantined[task] && self.clean_streak[task] >= self.cfg.recover_after {
            self.quarantined[task] = false;
        }
        self.global_overrun_streak = 0;
        self.global_clean_streak += 1;
        match self.mode {
            OverloadMode::Degraded => {
                if self.global_clean_streak >= self.cfg.recover_after {
                    self.mode = OverloadMode::Normal;
                    if let Some(since) = self.degraded_since.take() {
                        self.report.degraded_dwell += now - since;
                    }
                    if let Some(start) = self.episode_start.take() {
                        self.report.recovery_latency += now - start;
                    }
                    resp.recovered = true;
                }
            }
            OverloadMode::Normal => {
                // An overrun blip that never degraded: episode over.
                self.episode_start = None;
            }
        }
        resp
    }

    /// The executor cut a part at its budget (always paired with
    /// [`on_overrun`](Self::on_overrun)).
    pub fn note_budget_cut(&mut self) {
        self.report.budget_cuts += 1;
    }

    /// A job ran with its optional parts shed.
    pub fn note_degraded_job(&mut self) {
        self.report.jobs_degraded += 1;
    }

    /// The fault plan injected a WCET overrun.
    pub fn note_wcet_fault(&mut self) {
        self.report.wcet_faults += 1;
    }

    /// The fault plan injected a timer fault.
    pub fn note_timer_fault(&mut self) {
        self.report.timer_faults += 1;
    }

    /// The fault plan opened a CPU stall window.
    pub fn note_cpu_stall(&mut self) {
        self.report.cpu_stalls += 1;
    }

    /// Closes the books at end of run (accrues dwell for a still-degraded
    /// system) and returns the report.
    pub fn finish(&mut self, now: Time) -> FaultReport {
        if let Some(since) = self.degraded_since.take() {
            self.report.degraded_dwell += now - since;
        }
        self.report
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &FaultReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_nanos(ms * 1_000_000)
    }

    fn sup(tasks: usize) -> OverloadSupervisor {
        OverloadSupervisor::new(SupervisorConfig::armed(), tasks)
    }

    #[test]
    fn disabled_supervisor_never_sheds() {
        let mut s = OverloadSupervisor::new(SupervisorConfig::default(), 1);
        for i in 0..10 {
            s.on_overrun(0, t(i));
        }
        assert!(!s.shed_optional(0));
        assert!(!s.enabled());
        // It still *observes* (counters run even when response is off).
        assert_eq!(s.report().overruns_detected, 10);
    }

    #[test]
    fn budget_scales_declared_wcet() {
        let mut cfg = SupervisorConfig::armed();
        cfg.budget_factor = 1.5;
        let s = OverloadSupervisor::new(cfg, 1);
        assert_eq!(s.budget(Span::from_millis(100)), Span::from_millis(150));
    }

    #[test]
    fn quarantine_after_consecutive_overruns_and_release() {
        let mut s = sup(2);
        // Two overruns, then a clean job: streak resets, no quarantine.
        s.on_overrun(0, t(0));
        s.on_overrun(0, t(1));
        s.on_clean_job(0, t(2));
        assert!(!s.quarantined(0));
        // Three consecutive: quarantined.
        let r2 = s.on_overrun(0, t(3));
        let r3 = s.on_overrun(0, t(4));
        let r4 = s.on_overrun(0, t(5));
        assert!(!r2.quarantined_task && !r3.quarantined_task);
        assert!(r4.quarantined_task);
        assert!(s.quarantined(0) && !s.quarantined(1));
        assert!(s.shed_optional(0));
        assert_eq!(s.report().quarantines, 1);
        // Recovery needs `recover_after` clean jobs.
        for i in 0..4 {
            s.on_clean_job(0, t(10 + i));
        }
        assert!(!s.quarantined(0));
    }

    #[test]
    fn degraded_mode_with_hysteresis_and_accounting() {
        let mut s = sup(2);
        assert_eq!(s.mode(), OverloadMode::Normal);
        s.on_overrun(0, t(100));
        let r = s.on_overrun(1, t(150));
        assert!(r.entered_degraded);
        assert_eq!(s.mode(), OverloadMode::Degraded);
        assert!(s.shed_optional(0) && s.shed_optional(1));
        // Three clean jobs: still degraded (hysteresis).
        for i in 0..3 {
            assert!(!s.on_clean_job(0, t(200 + i)).recovered);
        }
        assert_eq!(s.mode(), OverloadMode::Degraded);
        // Fourth: recovered; dwell 150→500, episode 100→500.
        let r = s.on_clean_job(1, t(500));
        assert!(r.recovered);
        assert_eq!(s.mode(), OverloadMode::Normal);
        let rep = s.report();
        assert_eq!(rep.degraded_entries, 1);
        assert_eq!(rep.degraded_dwell, t(500) - t(150));
        assert_eq!(rep.recovery_latency, t(500) - t(100));
    }

    #[test]
    fn overrun_blip_resets_episode_without_degrading() {
        let mut s = sup(1);
        s.on_overrun(0, t(0));
        s.on_clean_job(0, t(10));
        s.on_overrun(0, t(20));
        assert_eq!(s.mode(), OverloadMode::Normal);
        assert_eq!(s.report().degraded_entries, 0);
    }

    #[test]
    fn finish_accrues_dwell_when_still_degraded() {
        let mut s = sup(1);
        s.on_overrun(0, t(0));
        s.on_overrun(0, t(10));
        assert_eq!(s.mode(), OverloadMode::Degraded);
        let rep = s.finish(t(100));
        assert_eq!(rep.degraded_dwell, t(100) - t(10));
        // Never recovered, so no recovery latency was booked.
        assert_eq!(rep.recovery_latency, Span::ZERO);
    }
}
