//! # RT-Seed: real-time middleware for semi-fixed-priority scheduling
//!
//! A user-space middleware implementing **P-RMWP** (Partitioned Rate
//! Monotonic with Wind-up Part) under the **parallel-extended imprecise
//! computation model** — a faithful reproduction of
//! *"RT-Seed: Real-Time Middleware for Semi-Fixed-Priority Scheduling"*
//! (Chishiro, MIDDLEWARE 2014).
//!
//! Each periodic task has a real-time **mandatory part**, a set of
//! non-real-time **parallel optional parts** that improve QoS and may be
//! *completed*, *terminated* or *discarded* independently, and a real-time
//! **wind-up part** released at the offline-computed **optional deadline**.
//! Semi-fixed-priority scheduling keeps each part's priority fixed and
//! changes a task's priority only at the two part boundaries (paper §III).
//!
//! ## Architecture
//!
//! * [`config::SystemConfig`] — ties a task set to a topology: partitioned
//!   placement of mandatory threads, SCHED_FIFO priority bands
//!   (HPQ 99 / RTQ 50–98 / NRTQ 1–49), optional deadlines, and the
//!   optional-part **assignment policy** (One by One / Two by Two /
//!   All by All, paper Fig. 8).
//! * [`queues`] — the middleware's four logical queues (RTQ, NRTQ, SQ, HPQ)
//!   over the kernel's per-CPU FIFO priority queues.
//! * [`engine::Engine`] — the backend-independent P-RMWP part state
//!   machine (release → mandatory → parallel optional → OD termination →
//!   wind-up), shared by every executor; backends are thin drivers.
//! * [`exec_sim::SimExecutor`] — runs the full Fig. 6 protocol on the
//!   `rtseed-sim` discrete-event many-core substrate, measuring the four
//!   overheads (Δm, Δb, Δs, Δe) exactly as §V-B does.
//! * [`runtime::NativeExecutor`] — runs the same protocol on real Linux
//!   threads with `SCHED_FIFO`/affinity via `libc` (degrading gracefully
//!   without privileges; see `RuntimeReport`).
//! * [`termination`] — the three optional-part termination mechanisms of
//!   Table I.
//! * [`executor`] — the unified [`executor::Executor`] trait,
//!   [`executor::RunConfig`] and [`executor::Outcome`] shared by all
//!   backends.
//! * [`obs`] — structured tracing ([`obs::TraceEvent`]) and histogram
//!   metrics ([`obs::MetricsRegistry`]), with JSONL and Chrome-trace
//!   exporters.
//! * [`serve`] — the multi-tenant serving layer: a
//!   [`serve::SessionManager`] admits tenant task sets at runtime via the
//!   online RMWP admission test and drives the admitted population through
//!   the shared engine, with per-tenant QoS accounting and deterministic
//!   churn replay.
//!
//! ## Quickstart
//!
//! ```
//! use rtseed::prelude::*;
//!
//! // The paper's evaluation task: T = 1 s, m = w = 250 ms, 57 optional
//! // parts that always overrun.
//! let task = TaskSpec::builder("trader")
//!     .period(Span::from_secs(1))
//!     .mandatory(Span::from_millis(250))
//!     .windup(Span::from_millis(250))
//!     .optional_parts(57, Span::from_secs(1))
//!     .build()?;
//! let set = TaskSet::new(vec![task])?;
//! let config = SystemConfig::build(
//!     set,
//!     Topology::xeon_phi_3120a(),
//!     AssignmentPolicy::OneByOne,
//! )?;
//! let run = RunConfig::builder().jobs(5).build()?;
//! let outcome = SimExecutor::new(config, run).run();
//! assert_eq!(outcome.qos.deadline_misses(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs, missing_debug_implementations)]
// `unsafe` is confined to `runtime::posix` (libc calls); everything else is
// checked at the module level.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod config;
pub mod engine;
pub mod exec_global;
pub mod exec_sim;
pub mod executor;
pub mod obs;
pub mod policy;
pub mod prelude;
pub mod priority;
pub mod profile;
pub mod queues;
pub mod report;
pub mod runtime;
pub mod serve;
pub mod supervisor;
pub mod termination;

pub use config::{ConfigError, SystemConfig};
pub use executor::{Backend, ExecError, Executor, Outcome, RunConfig, RunConfigError};
pub use exec_global::GlobalExecutor;
pub use exec_sim::SimExecutor;
pub use policy::AssignmentPolicy;
pub use priority::PriorityMap;
pub use report::{FaultReport, OverheadReport};
pub use serve::{
    AdmissionConfig, GracefulConfig, HealthPolicy, QueueConfig, Rejected, ServeCounters,
    ServeError, ServeOutcome, SessionManager, Submission, TenantOutcome,
};
pub use supervisor::{OverloadMode, OverloadSupervisor, SupervisorConfig};
pub use termination::TerminationMode;
