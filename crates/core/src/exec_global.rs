//! Global semi-fixed-priority executor (**G-RMWP**) on the simulation
//! substrate — the road the paper deliberately does *not* take (§IV-B):
//!
//! > "(i) global scheduling, such as in G-RMWP, allows tasks to migrate
//! > among processors, resulting in high overheads, and (ii)
//! > middleware-level global scheduling is unsuitable …"
//!
//! This executor exists to *quantify* claim (i): mandatory and wind-up
//! parts are dispatched from one global ready queue onto any hardware
//! thread (highest priorities run, lowest running part is preempted), and
//! every time a part resumes on a different hardware thread than the one
//! it last used, a **migration penalty** (cold L1/L2 refill) is added to
//! its remaining execution and counted. The `ablation_grmwp` harness
//! compares migrations, added overhead and QoS against P-RMWP on the same
//! workload.
//!
//! Parallel optional parts keep their policy placement and never migrate,
//! exactly as in the parallel-extended model (§II-A) — only the real-time
//! parts are scheduled globally.

use rtseed_model::{
    HwThreadId, JobId, OptionalOutcome, PartId, Priority, QosSummary, Span, TaskId,
    Time,
};
use rtseed_sim::{EventQueue, FaultTarget, FifoReadyQueue, TimerFault};

use crate::config::SystemConfig;
use crate::executor::{Backend, ExecError, Executor, Outcome, RunConfig};
use crate::obs::{MetricsRegistry, QueueBand, QueueOp, TraceEvent, TraceRecorder};
use crate::supervisor::OverloadSupervisor;

/// Former name of the unified [`RunConfig`]; note the unified default runs
/// 100 jobs where this executor's old default ran 10 — set
/// [`RunConfig::jobs`] explicitly.
#[deprecated(note = "use `rtseed::executor::RunConfig` (or the prelude)")]
pub type GlobalRunConfig = RunConfig;

/// Former name of the unified [`Outcome`]; every field carries over.
#[deprecated(note = "use `rtseed::executor::Outcome` (or the prelude)")]
pub type GlobalOutcome = Outcome;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cursor {
    Mandatory,
    Optional(u32),
    Windup,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Work {
    task: usize,
    cursor: Cursor,
}

#[derive(Debug)]
enum Event {
    Release { task: usize },
    OdExpire { task: usize, seq: u64 },
    Complete { cpu: usize, gen: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Running {
    work: Work,
    prio: Priority,
    since: Time,
    gen: u64,
}

#[derive(Debug, Clone)]
struct PartState {
    executed: Span,
    running_since: Option<Time>,
    started: bool,
    outcome: Option<OptionalOutcome>,
}

#[derive(Debug)]
struct TaskRun {
    period: Span,
    deadline: Span,
    mandatory: Span,
    windup: Span,
    optional: Vec<Span>,
    od: Span,
    placements: Vec<usize>,
    mand_prio: Priority,
    opt_prio: Priority,
    // Per job.
    seq: u64,
    release: Time,
    rt_remaining: Span,
    rt_budget: Span,
    parts: Vec<PartState>,
    done: bool,
    mand_started: bool,
    windup_issued: bool,
    overran: bool,
    shed: bool,
    last_cpu: Option<usize>,
    jobs_done: u64,
}

/// The global (G-RMWP) executor. Unlike [`crate::exec_sim::SimExecutor`],
/// real-time parts are **not** pinned: they run wherever a processor is
/// free (or preemptible), paying [`RunConfig::migration_cost`] when they
/// move.
#[derive(Debug)]
pub struct GlobalExecutor {
    config: SystemConfig,
    run: RunConfig,
}

impl GlobalExecutor {
    /// Creates a global executor from a [`SystemConfig`] (the partition
    /// placement is ignored — that is the point — but its per-task
    /// optional deadlines and priorities are reused so both executors run
    /// the identical offline configuration).
    pub fn from_config(config: &SystemConfig, run: RunConfig) -> GlobalExecutor {
        GlobalExecutor {
            config: config.clone(),
            run,
        }
    }

    /// The system configuration this executor runs.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the global simulation to completion.
    pub fn run(&self) -> Outcome {
        assert!(
            self.run.rt_exec_fraction > 0.0 && self.run.rt_exec_fraction <= 1.0,
            "rt_exec_fraction must be within (0, 1]"
        );
        let mut state = GlobalState::new(self);
        state.run(self.run.jobs);
        let faults = state.sup.finish(state.now);
        Outcome {
            qos: state.qos,
            migrations: state.migrations,
            migration_overhead: state.migration_overhead,
            dispatches: state.dispatches,
            trace: state.rec.finish(),
            metrics: state.metrics,
            faults,
            events_processed: state.events_processed,
            ..Default::default()
        }
    }
}

impl Executor for GlobalExecutor {
    fn backend(&self) -> Backend {
        Backend::Global
    }

    fn system(&self) -> &SystemConfig {
        &self.config
    }

    fn execute(&mut self) -> Result<Outcome, ExecError> {
        self.run.validate()?;
        Ok(self.run())
    }
}

struct GlobalState<'a> {
    exec: &'a GlobalExecutor,
    now: Time,
    events: EventQueue<Event>,
    // One global queue for RT parts; per-cpu queues for optional parts
    // (they are pinned by the assignment policy).
    rt_queue: FifoReadyQueue<Work>,
    opt_queues: Vec<FifoReadyQueue<Work>>,
    cpus: Vec<Option<Running>>,
    tasks: Vec<TaskRun>,
    gen: u64,
    qos: QosSummary,
    migrations: u64,
    migration_overhead: Span,
    dispatches: u64,
    rec: TraceRecorder,
    metrics: MetricsRegistry,
    live: usize,
    sup: OverloadSupervisor,
    events_processed: u64,
}

impl<'a> GlobalState<'a> {
    fn new(exec: &'a GlobalExecutor) -> GlobalState<'a> {
        let topology = *exec.config.topology();
        let m = topology.hw_threads() as usize;
        let policy = exec.config.policy();
        let priorities = exec.config.priorities();
        let tasks: Vec<TaskRun> = exec
            .config
            .set()
            .iter()
            .map(|(id, spec)| TaskRun {
                period: spec.period(),
                deadline: spec.deadline(),
                mandatory: spec.mandatory().mul_f64(exec.run.rt_exec_fraction),
                windup: spec.windup().mul_f64(exec.run.rt_exec_fraction),
                optional: spec.optional_parts().to_vec(),
                od: exec.config.optional_deadline(id),
                placements: policy
                    .placements(&topology, spec.optional_count())
                    .iter()
                    .map(|h| h.index())
                    .collect(),
                mand_prio: priorities.mandatory(id),
                opt_prio: priorities.optional(id),
                seq: 0,
                release: Time::ZERO,
                rt_remaining: Span::ZERO,
                rt_budget: Span::ZERO,
                parts: Vec::new(),
                done: true,
                mand_started: false,
                windup_issued: false,
                overran: false,
                shed: false,
                last_cpu: None,
                jobs_done: 0,
            })
            .collect();
        let live = tasks.len();
        let sup = OverloadSupervisor::new(exec.run.supervisor, live);
        GlobalState {
            exec,
            now: Time::ZERO,
            events: EventQueue::new(),
            rt_queue: FifoReadyQueue::new(),
            opt_queues: (0..m).map(|_| FifoReadyQueue::new()).collect(),
            cpus: vec![None; m],
            tasks,
            gen: 0,
            qos: QosSummary::new(),
            migrations: 0,
            migration_overhead: Span::ZERO,
            dispatches: 0,
            rec: TraceRecorder::new(exec.run.trace_config()),
            metrics: MetricsRegistry::new(),
            live,
            sup,
            events_processed: 0,
        }
    }

    fn job(&self, task: usize) -> JobId {
        JobId {
            task: TaskId(task as u32),
            seq: self.tasks[task].seq,
        }
    }

    fn trace(&mut self, ev: TraceEvent) {
        self.rec.record(self.now, ev);
    }

    fn run(&mut self, jobs: u64) {
        if jobs == 0 {
            return;
        }
        if self.rec.enabled() {
            let topology = *self.exec.config.topology();
            let policy = self.exec.config.policy();
            for (idx, t) in self.tasks.iter().enumerate() {
                let np = t.optional.len();
                if np == 0 {
                    continue;
                }
                let ev = TraceEvent::PolicyDecision {
                    task: TaskId(idx as u32),
                    policy: policy.label(),
                    parts: np as u32,
                    distinct_cores: policy.distinct_cores(&topology, np),
                };
                self.rec.record(Time::ZERO, ev);
            }
        }
        for t in 0..self.tasks.len() {
            self.events.push(Time::ZERO, Event::Release { task: t });
        }
        while self.live > 0 {
            let Some((at, ev)) = self.events.pop() else {
                break;
            };
            self.now = at;
            self.events_processed += 1;
            match ev {
                Event::Release { task } => self.on_release(task, jobs),
                Event::OdExpire { task, seq } => self.on_od(task, seq),
                Event::Complete { cpu, gen } => self.on_complete(cpu, gen),
            }
        }
    }

    fn on_release(&mut self, task: usize, jobs: u64) {
        if !self.tasks[task].done {
            self.abort_job(task);
        }
        if self.tasks[task].jobs_done >= jobs {
            return;
        }
        let next_seq = self.tasks[task].jobs_done;
        let mand_factor =
            self.exec
                .run
                .fault_plan
                .wcet_factor(task as u32, next_seq, FaultTarget::Mandatory);
        let timer_fault = self.exec.run.fault_plan.timer_fault(task as u32, next_seq);
        let t = &mut self.tasks[task];
        t.seq = t.jobs_done;
        t.release = self.now;
        t.done = false;
        t.mand_started = false;
        t.windup_issued = false;
        t.overran = false;
        t.shed = false;
        t.rt_remaining = t.mandatory.mul_f64(mand_factor);
        // Reset part states in place: after the first job this reuses the
        // Vec's capacity, so releases allocate nothing in steady state.
        t.parts.clear();
        t.parts.resize(
            t.optional.len(),
            PartState {
                executed: Span::ZERO,
                running_since: None,
                started: false,
                outcome: None,
            },
        );
        let seq = t.seq;
        let period = t.period;
        let od_at = t.release + t.od;
        let has_parts = !t.optional.is_empty();
        let prio = t.mand_prio;
        let jobs_done = t.jobs_done;
        self.tasks[task].rt_budget = self.sup.budget(self.tasks[task].mandatory);

        let job = self.job(task);
        self.trace(TraceEvent::JobReleased { job });
        if mand_factor != 1.0 {
            self.sup.note_wcet_fault();
            self.trace(TraceEvent::WcetFaultInjected {
                job,
                target: FaultTarget::Mandatory,
                factor: mand_factor,
            });
        }

        self.trace(TraceEvent::Queue {
            band: QueueBand::of(prio),
            op: QueueOp::Enqueue,
            job,
            // Global RT queue: not bound to any hardware thread.
            hw: None,
        });
        self.rt_queue.enqueue(
            prio,
            Work {
                task,
                cursor: Cursor::Mandatory,
            },
        );
        if has_parts {
            match timer_fault {
                None => {
                    self.trace(TraceEvent::TimerArmed { job, at: od_at });
                    self.events.push(od_at, Event::OdExpire { task, seq });
                }
                Some(TimerFault::Delay(d)) => {
                    self.sup.note_timer_fault();
                    self.trace(TraceEvent::TimerFaultInjected {
                        job,
                        fault: TimerFault::Delay(d),
                    });
                    self.trace(TraceEvent::TimerArmed { job, at: od_at + d });
                    self.events.push(od_at + d, Event::OdExpire { task, seq });
                }
                Some(TimerFault::Lost) => {
                    self.sup.note_timer_fault();
                    self.trace(TraceEvent::TimerFaultInjected {
                        job,
                        fault: TimerFault::Lost,
                    });
                }
            }
        }
        if jobs_done + 1 < jobs {
            self.events.push(self.now + period, Event::Release { task });
        }
        self.dispatch_all();
    }

    /// Global dispatch: while the RT queue's best beats some processor's
    /// current work (or an idle processor exists), place it there. Then
    /// fill remaining idle processors with their pinned optional parts.
    fn dispatch_all(&mut self) {
        // Real-time parts go anywhere (preferring the task's last cpu when
        // idle, else any idle cpu, else the weakest-running cpu).
        while let Some(best) = self.rt_queue.peek_highest_priority() {
            let candidate = self.pick_cpu(best);
            let Some(cpu) = candidate else {
                break;
            };
            let (prio, work) = self.rt_queue.dequeue_highest().expect("peeked");
            self.preempt(cpu);
            self.start(cpu, work, prio);
        }
        // Optional parts only ever run on their own (pinned) processor.
        for cpu in 0..self.cpus.len() {
            if self.cpus[cpu].is_none() {
                if let Some((prio, work)) = self.opt_queues[cpu].dequeue_highest() {
                    self.start(cpu, work, prio);
                }
            }
        }
    }

    /// The processor the best RT work should take: last-used if idle, any
    /// idle, else the lowest-priority running processor if it is strictly
    /// weaker. `None` if nothing beats it.
    fn pick_cpu(&self, best: Priority) -> Option<usize> {
        let (_, work) = {
            // Peek the head work of the best level to honour affinity.
            let mut probe = None;
            for level in (best.level()..=best.level()).rev() {
                let p = Priority::new(level).expect("valid");
                if let Some(w) = self.rt_queue.iter_at(p).next() {
                    probe = Some((p, *w));
                    break;
                }
            }
            probe?
        };
        let last = self.tasks[work.task].last_cpu;
        if let Some(cpu) = last {
            if self.cpus[cpu].is_none() {
                return Some(cpu);
            }
        }
        if let Some(idle) = (0..self.cpus.len()).find(|&c| self.cpus[c].is_none()) {
            return Some(idle);
        }
        let weakest = (0..self.cpus.len())
            .min_by_key(|&c| self.cpus[c].map(|r| r.prio).expect("all busy"))?;
        let weakest_prio = self.cpus[weakest].map(|r| r.prio).expect("busy");
        (best > weakest_prio).then_some(weakest)
    }

    fn preempt(&mut self, cpu: usize) {
        let Some(run) = self.cpus[cpu].take() else {
            return;
        };
        let ran = self.now.saturating_elapsed_since(run.since);
        self.bank(run.work, ran);
        match run.work.cursor {
            Cursor::Mandatory | Cursor::Windup => {
                self.rt_queue.enqueue_front(run.prio, run.work);
            }
            Cursor::Optional(_) => {
                self.opt_queues[cpu].enqueue_front(run.prio, run.work);
            }
        }
    }

    fn bank(&mut self, work: Work, ran: Span) {
        let t = &mut self.tasks[work.task];
        match work.cursor {
            Cursor::Mandatory | Cursor::Windup => {
                t.rt_remaining = t.rt_remaining.saturating_sub(ran);
                t.rt_budget = t.rt_budget.saturating_sub(ran);
            }
            Cursor::Optional(k) => {
                let p = &mut t.parts[k as usize];
                p.executed += ran;
                p.running_since = None;
            }
        }
    }

    fn start(&mut self, cpu: usize, work: Work, prio: Priority) {
        let job = self.job(work.task);
        // Hot path: build the queue event only when someone is recording.
        if self.rec.enabled() {
            self.trace(TraceEvent::Queue {
                band: QueueBand::of(prio),
                op: QueueOp::Dispatch,
                job,
                hw: Some(HwThreadId(cpu as u32)),
            });
        }
        let remaining = match work.cursor {
            Cursor::Mandatory | Cursor::Windup => {
                self.dispatches += 1;
                let migrated_from = {
                    let t = &mut self.tasks[work.task];
                    let mut rem = t.rt_remaining;
                    let from = t.last_cpu.filter(|&c| c != cpu);
                    if from.is_some() {
                        // Migration: cold caches on the new processor. A
                        // legitimate system overhead, so the supervisor
                        // budget absorbs it too (migrations alone must not
                        // trip cuts).
                        rem += self.exec.run.migration_cost;
                        t.rt_remaining = rem;
                        t.rt_budget += self.exec.run.migration_cost;
                        self.migrations += 1;
                        self.migration_overhead += self.exec.run.migration_cost;
                    }
                    t.last_cpu = Some(cpu);
                    from
                };
                if let Some(from) = migrated_from {
                    self.trace(TraceEvent::Migrated {
                        job,
                        from: HwThreadId(from as u32),
                        to: HwThreadId(cpu as u32),
                    });
                }
                if matches!(work.cursor, Cursor::Mandatory)
                    && !self.tasks[work.task].mand_started
                {
                    self.tasks[work.task].mand_started = true;
                    let jitter = self
                        .now
                        .saturating_elapsed_since(self.tasks[work.task].release);
                    self.metrics.record_release_jitter(jitter);
                    self.trace(TraceEvent::MandatoryStarted {
                        job,
                        hw: HwThreadId(cpu as u32),
                    });
                }
                let t = &self.tasks[work.task];
                if self.sup.enabled() {
                    t.rt_remaining.min(t.rt_budget)
                } else {
                    t.rt_remaining
                }
            }
            Cursor::Optional(k) => {
                let first = {
                    let t = &mut self.tasks[work.task];
                    let p = &mut t.parts[k as usize];
                    p.running_since = Some(self.now);
                    !std::mem::replace(&mut p.started, true)
                };
                if first {
                    self.trace(TraceEvent::OptionalStarted {
                        job,
                        part: PartId(k),
                        hw: HwThreadId(cpu as u32),
                    });
                }
                let t = &self.tasks[work.task];
                t.optional[k as usize].saturating_sub(t.parts[k as usize].executed)
            }
        };
        self.gen += 1;
        let gen = self.gen;
        self.cpus[cpu] = Some(Running {
            work,
            prio,
            since: self.now,
            gen,
        });
        self.events
            .push(self.now + remaining, Event::Complete { cpu, gen });
    }

    fn on_complete(&mut self, cpu: usize, gen: u64) {
        let Some(run) = self.cpus[cpu] else { return };
        if run.gen != gen {
            return;
        }
        self.cpus[cpu] = None;
        let work = run.work;
        if matches!(work.cursor, Cursor::Mandatory | Cursor::Windup) {
            // Bank the slice; leftover demand under an armed supervisor
            // means the part hit its budget — cut it there.
            let ran = self.now.saturating_elapsed_since(run.since);
            self.bank(work, ran);
            let t = &mut self.tasks[work.task];
            if self.sup.enabled() && !t.rt_remaining.is_zero() {
                t.rt_remaining = Span::ZERO;
                t.overran = true;
                self.sup.note_budget_cut();
                let resp = self.sup.on_overrun(work.task, self.now);
                let job = self.job(work.task);
                let target = match work.cursor {
                    Cursor::Windup => FaultTarget::Windup,
                    _ => FaultTarget::Mandatory,
                };
                self.trace(TraceEvent::BudgetCut { job, target });
                if resp.quarantined_task {
                    self.trace(TraceEvent::TaskQuarantined { job });
                }
                if resp.entered_degraded {
                    self.trace(TraceEvent::DegradedModeEntered);
                }
            }
        }
        match work.cursor {
            Cursor::Mandatory => self.mandatory_done(work.task),
            Cursor::Windup => self.windup_done(work.task),
            Cursor::Optional(k) => self.optional_done(work.task, k),
        }
        self.dispatch_all();
    }

    fn mandatory_done(&mut self, task: usize) {
        let job = self.job(task);
        self.trace(TraceEvent::MandatoryCompleted { job });
        let od_at = self.tasks[task].release + self.tasks[task].od;
        let np = self.tasks[task].optional.len();
        let shed = np > 0 && self.sup.shed_optional(task);
        if np == 0 || self.now >= od_at || shed {
            if shed {
                self.sup.note_degraded_job();
                self.tasks[task].shed = true;
            }
            for k in 0..np {
                self.tasks[task].parts[k].outcome = Some(OptionalOutcome::Discarded);
                if self.rec.enabled() {
                    self.trace(TraceEvent::OptionalEnded {
                        job,
                        part: PartId(k as u32),
                        outcome: OptionalOutcome::Discarded,
                        achieved: Span::ZERO,
                    });
                }
            }
            self.issue_windup(task);
            return;
        }
        // Signal all optional parts (costless here: this executor isolates
        // the migration effect; the overhead model lives in exec_sim).
        for k in 0..np {
            let hw = self.tasks[task].placements[k];
            let prio = self.tasks[task].opt_prio;
            if self.rec.enabled() {
                self.trace(TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Enqueue,
                    job,
                    hw: Some(HwThreadId(hw as u32)),
                });
            }
            self.opt_queues[hw].enqueue(
                prio,
                Work {
                    task,
                    cursor: Cursor::Optional(k as u32),
                },
            );
        }
    }

    fn optional_done(&mut self, task: usize, k: u32) {
        let o_k = self.tasks[task].optional[k as usize];
        let p = &mut self.tasks[task].parts[k as usize];
        p.executed = o_k;
        p.running_since = None;
        p.outcome = Some(OptionalOutcome::Completed);
        let job = self.job(task);
        self.trace(TraceEvent::OptionalEnded {
            job,
            part: PartId(k),
            outcome: OptionalOutcome::Completed,
            achieved: o_k,
        });
        // Wind-up waits for the optional deadline even when parts finish
        // early; the OdExpire event handles issuing it.
        if self.tasks[task].parts.iter().all(|p| p.outcome.is_some()) {
            let od_at = self.tasks[task].release + self.tasks[task].od;
            if self.now >= od_at {
                self.issue_windup(task);
            }
        }
    }

    fn on_od(&mut self, task: usize, seq: u64) {
        if self.tasks[task].done || self.tasks[task].seq != seq {
            return;
        }
        let expired_job = self.job(task);
        self.trace(TraceEvent::OptionalDeadlineExpired { job: expired_job });
        if self.tasks[task].rt_remaining > Span::ZERO && !self.tasks[task].windup_issued {
            // Mandatory still running past OD? Then discard handling occurs
            // at mandatory completion; nothing to do now.
            let mandatory_running = self.tasks[task]
                .parts
                .iter()
                .all(|p| p.outcome.is_none() && p.running_since.is_none() && p.executed.is_zero())
                && self.cpu_of_rt(task).is_some_and(|(_, c)| {
                    matches!(c, Cursor::Mandatory)
                });
            if mandatory_running {
                return;
            }
        }
        // Terminate all unfinished parts.
        let np = self.tasks[task].optional.len();
        for k in 0..np {
            if self.tasks[task].parts[k].outcome.is_some() {
                continue;
            }
            let hw = self.tasks[task].placements[k];
            let work = Work {
                task,
                cursor: Cursor::Optional(k as u32),
            };
            // Stop if running.
            if let Some(r) = self.cpus[hw] {
                if r.work == work {
                    self.cpus[hw] = None;
                    let ran = self.now.saturating_elapsed_since(r.since);
                    self.bank(work, ran);
                }
            }
            let prio = self.tasks[task].opt_prio;
            if self.opt_queues[hw].remove(prio, &work) {
                self.trace(TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Remove,
                    job: expired_job,
                    hw: Some(HwThreadId(hw as u32)),
                });
            }
            let o_k = self.tasks[task].optional[k];
            let (achieved, outcome) = {
                let p = &mut self.tasks[task].parts[k];
                p.running_since = None;
                let outcome = if p.executed >= o_k {
                    OptionalOutcome::Completed
                } else {
                    OptionalOutcome::Terminated
                };
                p.outcome = Some(outcome);
                (p.executed, outcome)
            };
            if self.rec.enabled() {
                self.trace(TraceEvent::OptionalEnded {
                    job: expired_job,
                    part: PartId(k as u32),
                    outcome,
                    achieved,
                });
            }
        }
        self.issue_windup(task);
        self.dispatch_all();
    }

    fn cpu_of_rt(&self, task: usize) -> Option<(usize, Cursor)> {
        self.cpus.iter().enumerate().find_map(|(c, r)| {
            r.and_then(|r| {
                (r.work.task == task
                    && matches!(r.work.cursor, Cursor::Mandatory | Cursor::Windup))
                .then_some((c, r.work.cursor))
            })
        })
    }

    fn issue_windup(&mut self, task: usize) {
        if self.tasks[task].windup_issued {
            return;
        }
        self.tasks[task].windup_issued = true;
        if self.tasks[task].windup.is_zero() {
            self.finish(task, true);
            return;
        }
        let seq = self.tasks[task].seq;
        let factor = self
            .exec
            .run
            .fault_plan
            .wcet_factor(task as u32, seq, FaultTarget::Windup);
        let job = self.job(task);
        self.trace(TraceEvent::WindupStarted { job });
        if factor != 1.0 {
            self.sup.note_wcet_fault();
            self.trace(TraceEvent::WcetFaultInjected {
                job,
                target: FaultTarget::Windup,
                factor,
            });
        }
        self.tasks[task].rt_remaining = self.tasks[task].windup.mul_f64(factor);
        self.tasks[task].rt_budget = self.sup.budget(self.tasks[task].windup);
        let prio = self.tasks[task].mand_prio;
        self.trace(TraceEvent::Queue {
            band: QueueBand::of(prio),
            op: QueueOp::Enqueue,
            job,
            hw: None,
        });
        self.rt_queue.enqueue(
            prio,
            Work {
                task,
                cursor: Cursor::Windup,
            },
        );
        self.dispatch_all();
    }

    fn windup_done(&mut self, task: usize) {
        let deadline = self.tasks[task].release + self.tasks[task].deadline;
        let met = self.now <= deadline;
        self.finish(task, met);
    }

    fn finish(&mut self, task: usize, met: bool) {
        let job = {
            let t = &mut self.tasks[task];
            t.done = true;
            JobId {
                task: TaskId(task as u32),
                seq: t.seq,
            }
        };
        self.trace(TraceEvent::WindupCompleted {
            job,
            deadline_met: met,
        });
        let requested: Span = self.tasks[task].optional.iter().copied().sum();
        let response = self
            .now
            .saturating_elapsed_since(self.tasks[task].release);
        self.metrics.record_response_time(response);
        // Stream the per-part results straight into the summary — no
        // per-job QosRecord vector on the hot path.
        let ratio = self.qos.record_job(
            self.tasks[task]
                .parts
                .iter()
                .map(|p| (p.executed, p.outcome.unwrap_or(OptionalOutcome::Discarded))),
            requested,
            met,
            self.tasks[task].shed,
        );
        self.metrics.record_qos_level(ratio);
        if self.sup.enabled() && !self.tasks[task].overran {
            if met {
                let resp = self.sup.on_clean_job(task, self.now);
                if resp.recovered {
                    self.trace(TraceEvent::DegradedModeExited);
                }
            } else {
                let resp = self.sup.on_overrun(task, self.now);
                if resp.quarantined_task {
                    self.trace(TraceEvent::TaskQuarantined { job });
                }
                if resp.entered_degraded {
                    self.trace(TraceEvent::DegradedModeEntered);
                }
            }
        }
        let t = &mut self.tasks[task];
        t.jobs_done += 1;
        if t.jobs_done >= self.exec.run.jobs {
            self.live -= 1;
        }
    }

    fn abort_job(&mut self, task: usize) {
        // Scrub any queued or running work of this task.
        let np = self.tasks[task].optional.len();
        let mand_prio = self.tasks[task].mand_prio;
        for cursor in [Cursor::Mandatory, Cursor::Windup] {
            let work = Work { task, cursor };
            self.rt_queue.remove(mand_prio, &work);
            for c in 0..self.cpus.len() {
                if self.cpus[c].is_some_and(|r| r.work == work) {
                    self.cpus[c] = None;
                }
            }
        }
        for k in 0..np {
            let work = Work {
                task,
                cursor: Cursor::Optional(k as u32),
            };
            let hw = self.tasks[task].placements[k];
            let prio = self.tasks[task].opt_prio;
            self.opt_queues[hw].remove(prio, &work);
            if self.cpus[hw].is_some_and(|r| r.work == work) {
                self.cpus[hw] = None;
            }
            let p = &mut self.tasks[task].parts[k];
            if p.outcome.is_none() {
                p.outcome = Some(if p.running_since.is_some() || !p.executed.is_zero() {
                    OptionalOutcome::Terminated
                } else {
                    OptionalOutcome::Discarded
                });
            }
        }
        self.finish(task, false);
        self.dispatch_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AssignmentPolicy;
    use rtseed_model::{TaskSet, TaskSpec, Topology};
    use rtseed_sim::FaultPlan;

    fn task(name: &str, period_ms: u64, m_ms: u64, w_ms: u64, np: usize) -> TaskSpec {
        let mut b = TaskSpec::builder(name);
        b.period(Span::from_millis(period_ms))
            .mandatory(Span::from_millis(m_ms))
            .windup(Span::from_millis(w_ms));
        if np > 0 {
            b.optional_parts(np, Span::from_millis(period_ms));
        }
        b.build().unwrap()
    }

    fn config(tasks: Vec<TaskSpec>, topo: Topology) -> SystemConfig {
        SystemConfig::build(
            TaskSet::new(tasks).unwrap(),
            topo,
            AssignmentPolicy::OneByOne,
        )
        .unwrap()
    }

    #[test]
    fn single_task_never_migrates() {
        let cfg = config(vec![task("t", 100, 10, 10, 2)], Topology::quad_core_smt2());
        let out = GlobalExecutor::from_config(&cfg, RunConfig { jobs: 10, ..Default::default() }).run();
        assert_eq!(out.qos.jobs(), 10);
        assert_eq!(out.qos.deadline_misses(), 0);
        assert_eq!(out.migrations, 0, "one task sticks to its last cpu");
        assert_eq!(out.migration_overhead, Span::ZERO);
    }

    #[test]
    fn more_tasks_than_cpus_migrate_under_global() {
        // Four RT-heavy tasks on 2 cpus with staggered periods: global
        // dispatch moves wind-up parts across processors.
        let cfg = config(
            vec![
                task("a", 40, 8, 8, 0),
                task("b", 50, 8, 8, 0),
                task("c", 60, 8, 8, 0),
                task("d", 70, 8, 8, 0),
            ],
            Topology::new(2, 1).unwrap(),
        );
        let out = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 20,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.jobs(), 80);
        assert!(out.migrations > 0, "expected migrations under global dispatch");
        assert_eq!(
            out.migration_overhead,
            Span::from_micros(100) * out.migrations
        );
        assert!(out.dispatches >= out.migrations);
    }

    #[test]
    fn qos_accounting_matches_part_counts() {
        let cfg = config(vec![task("t", 100, 20, 20, 3)], Topology::quad_core_smt2());
        let out = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 5,
                ..Default::default()
            },
        )
        .run();
        let (c, t, d) = out.qos.outcome_totals();
        assert_eq!(c + t + d, 15);
        // o = period always overruns: everything is terminated.
        assert_eq!(t, 15);
    }

    #[test]
    fn zero_migration_cost_is_free() {
        let cfg = config(
            vec![task("a", 40, 8, 8, 0), task("b", 50, 8, 8, 0), task("c", 60, 8, 8, 0)],
            Topology::new(2, 1).unwrap(),
        );
        let out = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 10,
                migration_cost: Span::ZERO,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.migration_overhead, Span::ZERO);
        assert_eq!(out.qos.deadline_misses(), 0);
    }

    #[test]
    fn short_optional_parts_complete_globally() {
        let mut b = TaskSpec::builder("t");
        b.period(Span::from_millis(100))
            .mandatory(Span::from_millis(10))
            .windup(Span::from_millis(10))
            .optional_parts(2, Span::from_millis(5));
        let cfg = config(vec![b.build().unwrap()], Topology::quad_core_smt2());
        let out = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 4,
                ..Default::default()
            },
        )
        .run();
        let (c, t, d) = out.qos.outcome_totals();
        assert_eq!(c, 8, "t/d = {t}/{d}");
        assert_eq!(out.qos.deadline_misses(), 0);
    }

    #[test]
    fn supervisor_cuts_global_overruns() {
        use crate::supervisor::SupervisorConfig;
        use rtseed_sim::{JobWindow, WcetFault};

        let cfg = config(vec![task("t", 100, 10, 10, 0)], Topology::new(2, 1).unwrap());
        // 15× the mandatory demand (7.5 ms × 15 = 112.5 ms) overruns the
        // whole period.
        let plan = FaultPlan::new(3).with_wcet_fault(WcetFault {
            task: None,
            jobs: JobWindow::ALL,
            target: FaultTarget::Mandatory,
            factor: 15.0,
        });
        let sick = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 5,
                fault_plan: plan.clone(),
                ..Default::default()
            },
        )
        .run();
        assert!(sick.qos.deadline_misses() > 0);
        assert_eq!(sick.faults.wcet_faults, 5);
        assert_eq!(sick.faults.budget_cuts, 0);

        let cured = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 5,
                fault_plan: plan,
                supervisor: SupervisorConfig::armed(),
                ..Default::default()
            },
        )
        .run();
        assert_eq!(cured.qos.deadline_misses(), 0);
        assert_eq!(cured.faults.budget_cuts, 5);
        assert_eq!(cured.faults.degraded_entries, 1);
    }

    #[test]
    fn deterministic() {
        let cfg = config(
            vec![task("a", 40, 8, 8, 2), task("b", 50, 8, 8, 2)],
            Topology::new(2, 1).unwrap(),
        );
        let run = || {
            GlobalExecutor::from_config(
                &cfg,
                RunConfig {
                    jobs: 10,
                    ..Default::default()
                },
            )
            .run()
        };
        let x = run();
        let y = run();
        assert_eq!(x.qos, y.qos);
        assert_eq!(x.migrations, y.migrations);
    }
}
