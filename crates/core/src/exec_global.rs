//! Global semi-fixed-priority executor (**G-RMWP**) on the simulation
//! substrate — the road the paper deliberately does *not* take (§IV-B):
//!
//! > "(i) global scheduling, such as in G-RMWP, allows tasks to migrate
//! > among processors, resulting in high overheads, and (ii)
//! > middleware-level global scheduling is unsuitable …"
//!
//! This executor exists to *quantify* claim (i): mandatory and wind-up
//! parts are dispatched from one global ready queue onto any hardware
//! thread (highest priorities run, lowest running part is preempted), and
//! every time a part resumes on a different hardware thread than the one
//! it last used, a **migration penalty** (cold L1/L2 refill) is added to
//! its remaining execution and counted. The `ablation_grmwp` harness
//! compares migrations, added overhead and QoS against P-RMWP on the same
//! workload.
//!
//! Parallel optional parts keep their policy placement and never migrate,
//! exactly as in the parallel-extended model (§II-A) — only the real-time
//! parts are scheduled globally.
//!
//! All protocol decisions — part lifecycle, banking, budget cuts, OD
//! termination, QoS — live in the shared [`Engine`](crate::engine); this
//! module is a *driver* that owns only the global-dispatch mechanism (the
//! shared RT queue, migration accounting, and per-CPU optional queues).
//! Fault-plan CPU stalls run through the same engine input as the
//! partitioned simulator, so faulted workloads are comparable across both.

use rtseed_model::{HwThreadId, Priority, Span, Time};
use rtseed_sim::{EventQueue, FifoReadyQueue};

use crate::config::SystemConfig;
use crate::engine::{AfterMandatory, Cursor, Engine, OdAction, WindupCommand};
use crate::executor::{Backend, ExecError, Executor, Outcome, RunConfig};
use crate::obs::{QueueBand, QueueOp, TraceEvent};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Work {
    task: usize,
    cursor: Cursor,
}

#[derive(Debug)]
enum Event {
    Release { task: usize, retried: bool },
    OdExpire { task: usize, seq: u64 },
    Complete { cpu: usize, gen: u64 },
    WindupReady { task: usize, seq: u64 },
    StallStart { cpu: usize, duration: Span },
    StallEnd { cpu: usize },
}

#[derive(Debug, Clone, Copy)]
struct Running {
    work: Work,
    prio: Priority,
    since: Time,
    gen: u64,
}

/// The global (G-RMWP) executor. Unlike [`crate::exec_sim::SimExecutor`],
/// real-time parts are **not** pinned: they run wherever a processor is
/// free (or preemptible), paying [`RunConfig::migration_cost`] when they
/// move.
#[derive(Debug)]
pub struct GlobalExecutor {
    config: SystemConfig,
    run: RunConfig,
}

impl GlobalExecutor {
    /// Creates a global executor from a [`SystemConfig`] (the partition
    /// placement is ignored — that is the point — but its per-task
    /// optional deadlines and priorities are reused so both executors run
    /// the identical offline configuration).
    pub fn from_config(config: &SystemConfig, run: RunConfig) -> GlobalExecutor {
        GlobalExecutor {
            config: config.clone(),
            run,
        }
    }

    /// The system configuration this executor runs.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the global simulation to completion.
    pub fn run(&self) -> Outcome {
        let mut state = GlobalState::new(self);
        state.run(self.run.jobs);
        let GlobalState {
            eng,
            now,
            migrations,
            migration_overhead,
            dispatches,
            events_processed,
            ..
        } = state;
        let out = eng.finish(now);
        Outcome {
            qos: out.qos,
            overheads: out.overheads,
            migrations,
            migration_overhead,
            dispatches,
            trace: out.trace,
            metrics: out.metrics,
            faults: out.faults,
            events_processed,
            ..Default::default()
        }
    }
}

impl Executor for GlobalExecutor {
    fn backend(&self) -> Backend {
        Backend::Global
    }

    fn system(&self) -> &SystemConfig {
        &self.config
    }

    fn execute(&mut self) -> Result<Outcome, ExecError> {
        self.run.validate()?;
        Ok(self.run())
    }
}

struct GlobalState<'a> {
    run: &'a RunConfig,
    now: Time,
    events: EventQueue<Event>,
    // One global queue for RT parts; per-cpu queues for optional parts
    // (they are pinned by the assignment policy).
    rt_queue: FifoReadyQueue<Work>,
    opt_queues: Vec<FifoReadyQueue<Work>>,
    cpus: Vec<Option<Running>>,
    /// Depth of overlapping fault-plan stall windows per processor; > 0
    /// means the processor executes nothing and global dispatch skips it.
    stalled: Vec<u32>,
    /// Last processor each task's real-time side ran on (the migration
    /// reference point — a driver concern, not protocol state).
    last_cpu: Vec<Option<usize>>,
    eng: Engine,
    gen: u64,
    migrations: u64,
    migration_overhead: Span,
    dispatches: u64,
    events_processed: u64,
}

impl<'a> GlobalState<'a> {
    fn new(exec: &'a GlobalExecutor) -> GlobalState<'a> {
        let m = exec.config.topology().hw_threads() as usize;
        let mut eng = Engine::new(&exec.config, &exec.run);
        if exec.run.jobs > 0 {
            eng.trace_policy_decisions(&exec.config);
        }
        let n = eng.task_count();
        GlobalState {
            run: &exec.run,
            now: Time::ZERO,
            events: EventQueue::new(),
            rt_queue: FifoReadyQueue::new(),
            opt_queues: (0..m).map(|_| FifoReadyQueue::new()).collect(),
            cpus: vec![None; m],
            stalled: vec![0; m],
            last_cpu: vec![None; n],
            eng,
            gen: 0,
            migrations: 0,
            migration_overhead: Span::ZERO,
            dispatches: 0,
            events_processed: 0,
        }
    }

    fn run(&mut self, jobs: u64) {
        if jobs == 0 {
            return;
        }
        for t in 0..self.eng.task_count() {
            self.events.push(
                Time::ZERO,
                Event::Release {
                    task: t,
                    retried: false,
                },
            );
        }
        // Planned CPU stall windows enter the same event queue as everything
        // else — the global backend models them exactly like the
        // partitioned simulator does.
        for stall in self.run.fault_plan.stalls() {
            let cpu = stall.hw as usize;
            if cpu >= self.cpus.len() {
                continue;
            }
            self.events.push(
                stall.at,
                Event::StallStart {
                    cpu,
                    duration: stall.duration,
                },
            );
            self.events
                .push(stall.at + stall.duration, Event::StallEnd { cpu });
        }
        while self.eng.has_live_tasks() {
            let Some((at, ev)) = self.events.pop() else {
                break;
            };
            self.now = at;
            self.events_processed += 1;
            match ev {
                Event::Release { task, retried } => self.on_release(task, retried, jobs),
                Event::OdExpire { task, seq } => self.on_od(task, seq),
                Event::Complete { cpu, gen } => self.on_complete(cpu, gen),
                Event::WindupReady { task, seq } => self.on_windup_ready(task, seq),
                Event::StallStart { cpu, duration } => self.on_stall_start(cpu, duration),
                Event::StallEnd { cpu } => self.on_stall_end(cpu),
            }
        }
    }

    fn on_release(&mut self, task: usize, retried: bool, jobs: u64) {
        // A job may complete at the very instant of the next release; the
        // completion event is already queued ahead of us (FIFO), so requeue
        // the release once to let it land before declaring an overrun.
        if self.eng.job_in_flight(task) && !retried {
            self.events.push(
                self.now,
                Event::Release {
                    task,
                    retried: true,
                },
            );
            return;
        }
        if self.eng.jobs_done(task) > 0 || self.eng.job_in_flight(task) {
            if self.eng.job_in_flight(task) {
                self.abort_job(task);
            }
            if self.eng.jobs_done(task) >= jobs {
                return;
            }
        }
        let rel = self.eng.release(task, self.now);

        // The mandatory part enters the global RT queue immediately: this
        // substrate is costless (no Δm — the overhead model lives in
        // exec_sim; this executor isolates the migration effect).
        let prio = self.eng.mand_prio(task);
        self.eng.trace(
            self.now,
            TraceEvent::Queue {
                band: QueueBand::of(prio),
                op: QueueOp::Enqueue,
                job: rel.job,
                // Global RT queue: not bound to any hardware thread.
                hw: None,
            },
        );
        self.rt_queue.enqueue(
            prio,
            Work {
                task,
                cursor: Cursor::Mandatory,
            },
        );
        if rel.has_parts {
            if let Some(at) = self.eng.arm_timer(task, self.now) {
                self.events.push(at, Event::OdExpire { task, seq: rel.seq });
            }
        }
        if let Some(at) = rel.next_release {
            self.events.push(
                at,
                Event::Release {
                    task,
                    retried: false,
                },
            );
        }
        self.dispatch_all();
    }

    /// Global dispatch: while the RT queue's best beats some processor's
    /// current work (or an idle processor exists), place it there. Then
    /// fill remaining idle processors with their pinned optional parts.
    fn dispatch_all(&mut self) {
        // Real-time parts go anywhere (preferring the task's last cpu when
        // idle, else any idle cpu, else the weakest-running cpu).
        while let Some(best) = self.rt_queue.peek_highest_priority() {
            let Some(cpu) = self.pick_cpu(best) else {
                break;
            };
            let Some((prio, work)) = self.rt_queue.dequeue_highest() else {
                break;
            };
            self.preempt(cpu);
            self.start(cpu, work, prio);
        }
        // Optional parts only ever run on their own (pinned) processor.
        for cpu in 0..self.cpus.len() {
            if self.cpus[cpu].is_none() && self.stalled[cpu] == 0 {
                if let Some((prio, work)) = self.opt_queues[cpu].dequeue_highest() {
                    self.start(cpu, work, prio);
                }
            }
        }
    }

    /// The processor the best RT work should take: last-used if idle, any
    /// idle, else the lowest-priority running processor if it is strictly
    /// weaker. Stalled processors are never candidates. `None` if nothing
    /// beats it.
    fn pick_cpu(&self, best: Priority) -> Option<usize> {
        // Peek the head work of the best level to honour affinity.
        let work = *self.rt_queue.iter_at(best).next()?;
        let avail = |c: usize| self.stalled[c] == 0;
        if let Some(cpu) = self.last_cpu[work.task] {
            if avail(cpu) && self.cpus[cpu].is_none() {
                return Some(cpu);
            }
        }
        if let Some(idle) = (0..self.cpus.len()).find(|&c| avail(c) && self.cpus[c].is_none())
        {
            return Some(idle);
        }
        // No idle processor: every available one is busy, so the weakest
        // running priority decides. Stalled or (defensively) empty slots
        // simply drop out of the scan instead of panicking.
        let (weakest_prio, weakest) = (0..self.cpus.len())
            .filter(|&c| avail(c))
            .filter_map(|c| self.cpus[c].map(|r| (r.prio, c)))
            .min_by_key(|&(prio, _)| prio)?;
        (best > weakest_prio).then_some(weakest)
    }

    fn preempt(&mut self, cpu: usize) {
        let Some(run) = self.cpus[cpu].take() else {
            return;
        };
        let ran = self.now.saturating_elapsed_since(run.since);
        self.eng.bank(run.work.task, run.work.cursor, ran);
        match run.work.cursor {
            Cursor::Mandatory | Cursor::Windup => {
                self.rt_queue.enqueue_front(run.prio, run.work);
            }
            Cursor::Optional(_) => {
                self.opt_queues[cpu].enqueue_front(run.prio, run.work);
            }
        }
    }

    fn start(&mut self, cpu: usize, work: Work, prio: Priority) {
        // Hot path: build the queue event only when someone is recording.
        if self.eng.tracing() {
            let job = self.eng.job(work.task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Dispatch,
                    job,
                    hw: Some(HwThreadId(cpu as u32)),
                },
            );
        }
        if matches!(work.cursor, Cursor::Mandatory | Cursor::Windup) {
            self.dispatches += 1;
            let from = self.last_cpu[work.task].filter(|&c| c != cpu);
            if from.is_some() {
                // Migration: cold caches on the new processor. A legitimate
                // system overhead, so the supervisor budget absorbs it too
                // (migrations alone must not trip cuts).
                self.eng.add_migration_debt(work.task, self.run.migration_cost);
                self.migrations += 1;
                self.migration_overhead += self.run.migration_cost;
            }
            self.last_cpu[work.task] = Some(cpu);
            if let Some(from) = from {
                let job = self.eng.job(work.task);
                self.eng.trace(
                    self.now,
                    TraceEvent::Migrated {
                        job,
                        from: HwThreadId(from as u32),
                        to: HwThreadId(cpu as u32),
                    },
                );
            }
        }
        let remaining = self.eng.on_dispatch(work.task, work.cursor, cpu, self.now);
        self.gen += 1;
        let gen = self.gen;
        self.cpus[cpu] = Some(Running {
            work,
            prio,
            since: self.now,
            gen,
        });
        self.events
            .push(self.now + remaining, Event::Complete { cpu, gen });
    }

    fn on_complete(&mut self, cpu: usize, gen: u64) {
        let Some(run) = self.cpus[cpu] else { return };
        if run.gen != gen {
            return;
        }
        self.cpus[cpu] = None;
        let work = run.work;
        if matches!(work.cursor, Cursor::Mandatory | Cursor::Windup) {
            // Bank the slice; the engine cuts the part at its supervisor
            // budget if demand remains.
            let ran = self.now.saturating_elapsed_since(run.since);
            self.eng.bank(work.task, work.cursor, ran);
            self.eng.cut_if_over_budget(work.task, work.cursor, self.now);
        }
        match work.cursor {
            Cursor::Mandatory => {
                let after = self.eng.mandatory_completed(work.task, self.now);
                self.after_mandatory(work.task, after);
            }
            Cursor::Windup => {
                self.eng.windup_completed(work.task, self.now);
            }
            Cursor::Optional(k) => {
                if let Some(cmd) = self.eng.optional_completed(work.task, k, self.now) {
                    self.apply_windup(work.task, cmd);
                }
            }
        }
        self.dispatch_all();
    }

    /// Maps the engine's post-mandatory decision onto the global substrate:
    /// signalled parts enter their pinned per-CPU queues (costlessly — the
    /// Δb/Δs model lives in exec_sim), otherwise the wind-up command runs.
    fn after_mandatory(&mut self, task: usize, after: AfterMandatory) {
        match after {
            AfterMandatory::Windup(cmd) => self.apply_windup(task, cmd),
            AfterMandatory::Signal { np } => {
                for k in 0..np {
                    let hw = self.eng.placement(task, k);
                    let prio = self.eng.opt_prio(task);
                    if self.eng.tracing() {
                        let job = self.eng.job(task);
                        self.eng.trace(
                            self.now,
                            TraceEvent::Queue {
                                band: QueueBand::of(prio),
                                op: QueueOp::Enqueue,
                                job,
                                hw: Some(HwThreadId(hw as u32)),
                            },
                        );
                    }
                    self.opt_queues[hw].enqueue(
                        prio,
                        Work {
                            task,
                            cursor: Cursor::Optional(k as u32),
                        },
                    );
                }
            }
        }
    }

    /// Maps a wind-up command onto the event queue (a `Finished` or
    /// `AlreadyScheduled` command needs no mechanism).
    fn apply_windup(&mut self, task: usize, cmd: WindupCommand) {
        if let WindupCommand::At { at, seq } = cmd {
            self.events.push(at, Event::WindupReady { task, seq });
        }
    }

    fn on_windup_ready(&mut self, task: usize, seq: u64) {
        if self.eng.windup_ready(task, seq, self.now) {
            let prio = self.eng.mand_prio(task);
            let job = self.eng.job(task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Enqueue,
                    job,
                    hw: None,
                },
            );
            self.rt_queue.enqueue(
                prio,
                Work {
                    task,
                    cursor: Cursor::Windup,
                },
            );
            self.dispatch_all();
        }
    }

    fn on_od(&mut self, task: usize, seq: u64) {
        match self.eng.od_expired(task, seq, self.now) {
            OdAction::Stale | OdAction::Handled => {}
            OdAction::Terminate { np } => {
                // Terminate every un-ended part, in part order (no per-part
                // Δe here — costless substrate).
                for k in 0..np {
                    let Some(target) = self.eng.plan_terminate(task, k) else {
                        continue;
                    };
                    self.stop_optional(target.hw, task, k, target.prio);
                    self.eng.commit_terminate(task, k, self.now);
                }
                let cmd = self.eng.finish_termination(task, self.now);
                self.apply_windup(task, cmd);
                self.dispatch_all();
            }
        }
    }

    /// Stops optional part `k` on `cpu`, whether running or queued.
    fn stop_optional(&mut self, cpu: usize, task: usize, k: usize, prio: Priority) {
        let work = Work {
            task,
            cursor: Cursor::Optional(k as u32),
        };
        if let Some(r) = self.cpus[cpu] {
            if r.work == work {
                self.cpus[cpu] = None;
                let ran = self.now.saturating_elapsed_since(r.since);
                self.eng.bank(task, work.cursor, ran);
            }
        }
        if self.opt_queues[cpu].remove(prio, &work) && self.eng.tracing() {
            let job = self.eng.job(task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Remove,
                    job,
                    hw: Some(HwThreadId(cpu as u32)),
                },
            );
        }
    }

    fn on_stall_start(&mut self, cpu: usize, duration: Span) {
        self.eng.stall_started(cpu, duration, self.now);
        self.stalled[cpu] += 1;
        // Whatever was running loses the processor; its banked progress is
        // kept and it resumes at the head of its queue when the stall
        // window closes (the RT side may meanwhile migrate elsewhere).
        if let Some(r) = self.cpus[cpu].take() {
            let ran = self.now.saturating_elapsed_since(r.since);
            self.eng.bank(r.work.task, r.work.cursor, ran);
            match r.work.cursor {
                Cursor::Mandatory | Cursor::Windup => {
                    self.rt_queue.enqueue_front(r.prio, r.work);
                    // A stalled RT part is up for grabs again: re-dispatch
                    // so it can migrate to a healthy processor.
                    self.dispatch_all();
                }
                Cursor::Optional(_) => {
                    self.opt_queues[cpu].enqueue_front(r.prio, r.work);
                }
            }
        }
    }

    fn on_stall_end(&mut self, cpu: usize) {
        self.stalled[cpu] = self.stalled[cpu].saturating_sub(1);
        if self.stalled[cpu] == 0 {
            self.dispatch_all();
        }
    }

    fn abort_job(&mut self, task: usize) {
        // Scrub any queued or running work of this task.
        let mand_prio = self.eng.mand_prio(task);
        for cursor in [Cursor::Mandatory, Cursor::Windup] {
            let work = Work { task, cursor };
            self.rt_queue.remove(mand_prio, &work);
            for c in 0..self.cpus.len() {
                if let Some(r) = self.cpus[c].filter(|r| r.work == work) {
                    self.cpus[c] = None;
                    let ran = self.now.saturating_elapsed_since(r.since);
                    self.eng.bank(task, cursor, ran);
                }
            }
        }
        for k in 0..self.eng.part_count(task) {
            if self.eng.part_ended(task, k) {
                continue;
            }
            let work = Work {
                task,
                cursor: Cursor::Optional(k as u32),
            };
            let hw = self.eng.placement(task, k);
            let prio = self.eng.opt_prio(task);
            self.opt_queues[hw].remove(prio, &work);
            if let Some(r) = self.cpus[hw].filter(|r| r.work == work) {
                self.cpus[hw] = None;
                let ran = self.now.saturating_elapsed_since(r.since);
                self.eng.bank(task, work.cursor, ran);
            }
            self.eng.abort_part(task, k, self.now);
        }
        self.eng.finish_abort(task, self.now);
        self.dispatch_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AssignmentPolicy;
    use rtseed_model::{TaskSet, TaskSpec, Topology};
    use rtseed_sim::{FaultPlan, FaultTarget};

    fn task(name: &str, period_ms: u64, m_ms: u64, w_ms: u64, np: usize) -> TaskSpec {
        let mut b = TaskSpec::builder(name);
        b.period(Span::from_millis(period_ms))
            .mandatory(Span::from_millis(m_ms))
            .windup(Span::from_millis(w_ms));
        if np > 0 {
            b.optional_parts(np, Span::from_millis(period_ms));
        }
        b.build().unwrap()
    }

    fn config(tasks: Vec<TaskSpec>, topo: Topology) -> SystemConfig {
        SystemConfig::build(
            TaskSet::new(tasks).unwrap(),
            topo,
            AssignmentPolicy::OneByOne,
        )
        .unwrap()
    }

    #[test]
    fn single_task_never_migrates() {
        let cfg = config(vec![task("t", 100, 10, 10, 2)], Topology::quad_core_smt2());
        let out = GlobalExecutor::from_config(&cfg, RunConfig { jobs: 10, ..Default::default() }).run();
        assert_eq!(out.qos.jobs(), 10);
        assert_eq!(out.qos.deadline_misses(), 0);
        assert_eq!(out.migrations, 0, "one task sticks to its last cpu");
        assert_eq!(out.migration_overhead, Span::ZERO);
    }

    #[test]
    fn more_tasks_than_cpus_migrate_under_global() {
        // Four RT-heavy tasks on 2 cpus with staggered periods: global
        // dispatch moves wind-up parts across processors.
        let cfg = config(
            vec![
                task("a", 40, 8, 8, 0),
                task("b", 50, 8, 8, 0),
                task("c", 60, 8, 8, 0),
                task("d", 70, 8, 8, 0),
            ],
            Topology::new(2, 1).unwrap(),
        );
        let out = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 20,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.jobs(), 80);
        assert!(out.migrations > 0, "expected migrations under global dispatch");
        assert_eq!(
            out.migration_overhead,
            Span::from_micros(100) * out.migrations
        );
        assert!(out.dispatches >= out.migrations);
    }

    #[test]
    fn qos_accounting_matches_part_counts() {
        let cfg = config(vec![task("t", 100, 20, 20, 3)], Topology::quad_core_smt2());
        let out = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 5,
                ..Default::default()
            },
        )
        .run();
        let (c, t, d) = out.qos.outcome_totals();
        assert_eq!(c + t + d, 15);
        // o = period always overruns: everything is terminated.
        assert_eq!(t, 15);
    }

    #[test]
    fn zero_migration_cost_is_free() {
        let cfg = config(
            vec![task("a", 40, 8, 8, 0), task("b", 50, 8, 8, 0), task("c", 60, 8, 8, 0)],
            Topology::new(2, 1).unwrap(),
        );
        let out = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 10,
                migration_cost: Span::ZERO,
                ..Default::default()
            },
        )
        .run();
        // Migrations still happen; only their *cost* is zero. Deadline
        // misses are NOT asserted away here: wind-ups release at OD (the
        // unified engine semantic), and under global dispatch the
        // partitioned OD analysis does not cover cross-CPU interference —
        // the paper's argument (i) against global scheduling.
        assert!(out.migrations > 0);
        assert_eq!(out.migration_overhead, Span::ZERO);
    }

    #[test]
    fn short_optional_parts_complete_globally() {
        let mut b = TaskSpec::builder("t");
        b.period(Span::from_millis(100))
            .mandatory(Span::from_millis(10))
            .windup(Span::from_millis(10))
            .optional_parts(2, Span::from_millis(5));
        let cfg = config(vec![b.build().unwrap()], Topology::quad_core_smt2());
        let out = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 4,
                ..Default::default()
            },
        )
        .run();
        let (c, t, d) = out.qos.outcome_totals();
        assert_eq!(c, 8, "t/d = {t}/{d}");
        assert_eq!(out.qos.deadline_misses(), 0);
    }

    #[test]
    fn supervisor_cuts_global_overruns() {
        use crate::supervisor::SupervisorConfig;
        use rtseed_sim::{JobWindow, WcetFault};

        let cfg = config(vec![task("t", 100, 10, 10, 0)], Topology::new(2, 1).unwrap());
        // 15× the mandatory demand (7.5 ms × 15 = 112.5 ms) overruns the
        // whole period.
        let plan = FaultPlan::new(3).with_wcet_fault(WcetFault {
            task: None,
            jobs: JobWindow::ALL,
            target: FaultTarget::Mandatory,
            factor: 15.0,
        });
        let sick = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 5,
                fault_plan: plan.clone(),
                ..Default::default()
            },
        )
        .run();
        assert!(sick.qos.deadline_misses() > 0);
        assert_eq!(sick.faults.wcet_faults, 5);
        assert_eq!(sick.faults.budget_cuts, 0);

        let cured = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 5,
                fault_plan: plan,
                supervisor: SupervisorConfig::armed(),
                ..Default::default()
            },
        )
        .run();
        assert_eq!(cured.qos.deadline_misses(), 0);
        assert_eq!(cured.faults.budget_cuts, 5);
        assert_eq!(cured.faults.degraded_entries, 1);
    }

    #[test]
    fn deterministic() {
        let cfg = config(
            vec![task("a", 40, 8, 8, 2), task("b", 50, 8, 8, 2)],
            Topology::new(2, 1).unwrap(),
        );
        let run = || {
            GlobalExecutor::from_config(
                &cfg,
                RunConfig {
                    jobs: 10,
                    ..Default::default()
                },
            )
            .run()
        };
        let x = run();
        let y = run();
        assert_eq!(x.qos, y.qos);
        assert_eq!(x.migrations, y.migrations);
    }

    #[test]
    fn cpu_stalls_are_modelled_globally() {
        // Regression: the global backend used to drop FaultPlan CPU stalls
        // on the floor. A stall on the only processor must now starve the
        // task and register in the fault report.
        let cfg = config(vec![task("t", 100, 10, 10, 0)], Topology::new(1, 1).unwrap());
        let plan = FaultPlan::new(0).with_cpu_stall(rtseed_sim::CpuStall {
            hw: 0,
            at: Time::ZERO,
            duration: Span::from_millis(95),
        });
        let out = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 3,
                fault_plan: plan,
                trace: crate::obs::TraceConfig::enabled(),
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.faults.cpu_stalls, 1);
        assert_eq!(out.qos.deadline_misses(), 1, "job 0 starves through the stall");
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::CpuStallStarted { .. })),
            1
        );
    }
}

