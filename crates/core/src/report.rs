//! Overhead sample collection and statistics — the measurement side of the
//! paper's §V-B (means over 100 jobs per configuration) — plus the fault /
//! overload resilience report produced when a run executes under a
//! [`FaultPlan`](rtseed_sim::FaultPlan) with the overload supervisor.

use core::fmt;

use rtseed_model::Span;
use rtseed_sim::OverheadKind;
use serde::{Deserialize, Serialize};

/// Samples of the four overheads (Δm, Δb, Δs, Δe) across a run's jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadReport {
    begin_mandatory: Vec<Span>,
    begin_optional: Vec<Span>,
    switch_to_optional: Vec<Span>,
    end_optional: Vec<Span>,
}

impl OverheadReport {
    /// An empty report.
    pub fn new() -> OverheadReport {
        OverheadReport::default()
    }

    fn bucket(&self, kind: OverheadKind) -> &Vec<Span> {
        match kind {
            OverheadKind::BeginMandatory => &self.begin_mandatory,
            OverheadKind::BeginOptional => &self.begin_optional,
            OverheadKind::SwitchToOptional => &self.switch_to_optional,
            OverheadKind::EndOptional => &self.end_optional,
        }
    }

    fn bucket_mut(&mut self, kind: OverheadKind) -> &mut Vec<Span> {
        match kind {
            OverheadKind::BeginMandatory => &mut self.begin_mandatory,
            OverheadKind::BeginOptional => &mut self.begin_optional,
            OverheadKind::SwitchToOptional => &mut self.switch_to_optional,
            OverheadKind::EndOptional => &mut self.end_optional,
        }
    }

    /// Records one sample.
    pub fn push(&mut self, kind: OverheadKind, value: Span) {
        self.bucket_mut(kind).push(value);
    }

    /// All samples of `kind` in recording order.
    pub fn samples(&self, kind: OverheadKind) -> &[Span] {
        self.bucket(kind)
    }

    /// Number of samples of `kind`.
    pub fn count(&self, kind: OverheadKind) -> usize {
        self.bucket(kind).len()
    }

    /// Arithmetic mean of `kind`'s samples ([`Span::ZERO`] when empty).
    pub fn mean(&self, kind: OverheadKind) -> Span {
        let b = self.bucket(kind);
        if b.is_empty() {
            return Span::ZERO;
        }
        let total: u128 = b.iter().map(|s| s.as_nanos() as u128).sum();
        Span::from_nanos((total / b.len() as u128) as u64)
    }

    /// Largest sample of `kind` ([`Span::ZERO`] when empty).
    pub fn max(&self, kind: OverheadKind) -> Span {
        self.bucket(kind).iter().copied().max().unwrap_or(Span::ZERO)
    }

    /// Smallest sample of `kind` ([`Span::ZERO`] when empty).
    pub fn min(&self, kind: OverheadKind) -> Span {
        self.bucket(kind).iter().copied().min().unwrap_or(Span::ZERO)
    }

    /// `p`-th percentile (0–100, nearest-rank) of `kind`'s samples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0..=100`.
    pub fn percentile(&self, kind: OverheadKind, p: u8) -> Span {
        assert!(p <= 100, "percentile must be within 0..=100");
        let mut v = self.bucket(kind).clone();
        if v.is_empty() {
            return Span::ZERO;
        }
        v.sort_unstable();
        if p == 0 {
            return v[0];
        }
        let rank = (p as usize * v.len()).div_ceil(100);
        v[rank - 1]
    }

    /// Merges another report's samples into this one.
    pub fn merge(&mut self, other: &OverheadReport) {
        for kind in OverheadKind::ALL {
            self.bucket_mut(kind)
                .extend_from_slice(other.bucket(kind));
        }
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for kind in OverheadKind::ALL {
            writeln!(
                f,
                "{}: n={} mean={} max={}",
                kind.symbol(),
                self.count(kind),
                self.mean(kind),
                self.max(kind),
            )?;
        }
        Ok(())
    }
}

/// What the fault plan did to a run and how the overload supervisor
/// responded — the resilience counterpart of [`OverheadReport`].
///
/// All counters are totals over one run; [`merge`](FaultReport::merge)
/// combines runs (dwell/latency spans add, so per-run means need the
/// episode counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// WCET overruns the plan injected (demand multipliers applied).
    pub wcet_faults: u64,
    /// Optional-deadline timer faults injected (delays and losses).
    pub timer_faults: u64,
    /// CPU stall windows entered.
    pub cpu_stalls: u64,
    /// Real-time part overruns the supervisor observed (demand exceeded
    /// the per-task budget).
    pub overruns_detected: u64,
    /// Real-time parts the supervisor cut at their budget.
    pub budget_cuts: u64,
    /// Quarantine episodes entered (a task's optional parts shed after
    /// consecutive overruns).
    pub quarantines: u64,
    /// Jobs whose optional parts were shed by quarantine or degraded mode.
    pub jobs_degraded: u64,
    /// Times the system entered degraded (mandatory + wind-up only) mode.
    pub degraded_entries: u64,
    /// Total simulated time spent in degraded mode.
    pub degraded_dwell: Span,
    /// Total time from first overrun of an overload episode to full
    /// recovery (normal mode restored). Divide by
    /// [`degraded_entries`](FaultReport::degraded_entries) for the mean.
    pub recovery_latency: Span,
}

impl FaultReport {
    /// An all-zero report.
    pub fn new() -> FaultReport {
        FaultReport::default()
    }

    /// `true` when nothing was injected and nothing was supervised away —
    /// the report of a healthy run.
    pub fn is_clean(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Adds another run's counters into this one.
    pub fn merge(&mut self, other: &FaultReport) {
        self.wcet_faults += other.wcet_faults;
        self.timer_faults += other.timer_faults;
        self.cpu_stalls += other.cpu_stalls;
        self.overruns_detected += other.overruns_detected;
        self.budget_cuts += other.budget_cuts;
        self.quarantines += other.quarantines;
        self.jobs_degraded += other.jobs_degraded;
        self.degraded_entries += other.degraded_entries;
        self.degraded_dwell += other.degraded_dwell;
        self.recovery_latency += other.recovery_latency;
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "injected: {} wcet, {} timer, {} cpu-stall",
            self.wcet_faults, self.timer_faults, self.cpu_stalls
        )?;
        writeln!(
            f,
            "supervisor: {} overruns, {} budget cuts, {} quarantines, {} jobs degraded",
            self.overruns_detected, self.budget_cuts, self.quarantines, self.jobs_degraded
        )?;
        write!(
            f,
            "degraded mode: {} entries, dwell {}, recovery latency {}",
            self.degraded_entries, self.degraded_dwell, self.recovery_latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Span {
        Span::from_micros(v)
    }

    #[test]
    fn empty_report_is_zero() {
        let r = OverheadReport::new();
        for kind in OverheadKind::ALL {
            assert_eq!(r.count(kind), 0);
            assert_eq!(r.mean(kind), Span::ZERO);
            assert_eq!(r.max(kind), Span::ZERO);
            assert_eq!(r.min(kind), Span::ZERO);
            assert_eq!(r.percentile(kind, 99), Span::ZERO);
        }
    }

    #[test]
    fn mean_min_max() {
        let mut r = OverheadReport::new();
        for v in [10u64, 20, 30] {
            r.push(OverheadKind::BeginMandatory, us(v));
        }
        assert_eq!(r.count(OverheadKind::BeginMandatory), 3);
        assert_eq!(r.mean(OverheadKind::BeginMandatory), us(20));
        assert_eq!(r.min(OverheadKind::BeginMandatory), us(10));
        assert_eq!(r.max(OverheadKind::BeginMandatory), us(30));
        // Other kinds untouched.
        assert_eq!(r.count(OverheadKind::EndOptional), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut r = OverheadReport::new();
        for v in 1..=100u64 {
            r.push(OverheadKind::EndOptional, us(v));
        }
        assert_eq!(r.percentile(OverheadKind::EndOptional, 0), us(1));
        assert_eq!(r.percentile(OverheadKind::EndOptional, 50), us(50));
        assert_eq!(r.percentile(OverheadKind::EndOptional, 99), us(99));
        assert_eq!(r.percentile(OverheadKind::EndOptional, 100), us(100));
    }

    #[test]
    #[should_panic(expected = "0..=100")]
    fn percentile_rejects_out_of_range() {
        OverheadReport::new().percentile(OverheadKind::BeginMandatory, 101);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = OverheadReport::new();
        let mut b = OverheadReport::new();
        a.push(OverheadKind::BeginOptional, us(5));
        b.push(OverheadKind::BeginOptional, us(15));
        b.push(OverheadKind::SwitchToOptional, us(1));
        a.merge(&b);
        assert_eq!(a.count(OverheadKind::BeginOptional), 2);
        assert_eq!(a.mean(OverheadKind::BeginOptional), us(10));
        assert_eq!(a.count(OverheadKind::SwitchToOptional), 1);
    }

    #[test]
    fn display_contains_all_symbols() {
        let r = OverheadReport::new();
        let s = r.to_string();
        for kind in OverheadKind::ALL {
            assert!(s.contains(kind.symbol()), "{s}");
        }
    }

    #[test]
    fn fault_report_clean_and_merge() {
        let mut a = FaultReport::new();
        assert!(a.is_clean());
        let b = FaultReport {
            wcet_faults: 2,
            budget_cuts: 1,
            degraded_entries: 1,
            degraded_dwell: us(500),
            recovery_latency: us(700),
            ..FaultReport::default()
        };
        assert!(!b.is_clean());
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.wcet_faults, 4);
        assert_eq!(a.degraded_entries, 2);
        assert_eq!(a.degraded_dwell, us(1000));
        assert_eq!(a.recovery_latency, us(1400));
        let s = a.to_string();
        assert!(s.contains("4 wcet"), "{s}");
        assert!(s.contains("2 entries"), "{s}");
    }
}
