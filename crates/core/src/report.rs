//! Overhead sample collection and statistics — the measurement side of the
//! paper's §V-B (means over 100 jobs per configuration).

use core::fmt;

use rtseed_model::Span;
use rtseed_sim::OverheadKind;
use serde::{Deserialize, Serialize};

/// Samples of the four overheads (Δm, Δb, Δs, Δe) across a run's jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadReport {
    begin_mandatory: Vec<Span>,
    begin_optional: Vec<Span>,
    switch_to_optional: Vec<Span>,
    end_optional: Vec<Span>,
}

impl OverheadReport {
    /// An empty report.
    pub fn new() -> OverheadReport {
        OverheadReport::default()
    }

    fn bucket(&self, kind: OverheadKind) -> &Vec<Span> {
        match kind {
            OverheadKind::BeginMandatory => &self.begin_mandatory,
            OverheadKind::BeginOptional => &self.begin_optional,
            OverheadKind::SwitchToOptional => &self.switch_to_optional,
            OverheadKind::EndOptional => &self.end_optional,
        }
    }

    fn bucket_mut(&mut self, kind: OverheadKind) -> &mut Vec<Span> {
        match kind {
            OverheadKind::BeginMandatory => &mut self.begin_mandatory,
            OverheadKind::BeginOptional => &mut self.begin_optional,
            OverheadKind::SwitchToOptional => &mut self.switch_to_optional,
            OverheadKind::EndOptional => &mut self.end_optional,
        }
    }

    /// Records one sample.
    pub fn push(&mut self, kind: OverheadKind, value: Span) {
        self.bucket_mut(kind).push(value);
    }

    /// All samples of `kind` in recording order.
    pub fn samples(&self, kind: OverheadKind) -> &[Span] {
        self.bucket(kind)
    }

    /// Number of samples of `kind`.
    pub fn count(&self, kind: OverheadKind) -> usize {
        self.bucket(kind).len()
    }

    /// Arithmetic mean of `kind`'s samples ([`Span::ZERO`] when empty).
    pub fn mean(&self, kind: OverheadKind) -> Span {
        let b = self.bucket(kind);
        if b.is_empty() {
            return Span::ZERO;
        }
        let total: u128 = b.iter().map(|s| s.as_nanos() as u128).sum();
        Span::from_nanos((total / b.len() as u128) as u64)
    }

    /// Largest sample of `kind` ([`Span::ZERO`] when empty).
    pub fn max(&self, kind: OverheadKind) -> Span {
        self.bucket(kind).iter().copied().max().unwrap_or(Span::ZERO)
    }

    /// Smallest sample of `kind` ([`Span::ZERO`] when empty).
    pub fn min(&self, kind: OverheadKind) -> Span {
        self.bucket(kind).iter().copied().min().unwrap_or(Span::ZERO)
    }

    /// `p`-th percentile (0–100, nearest-rank) of `kind`'s samples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0..=100`.
    pub fn percentile(&self, kind: OverheadKind, p: u8) -> Span {
        assert!(p <= 100, "percentile must be within 0..=100");
        let mut v = self.bucket(kind).clone();
        if v.is_empty() {
            return Span::ZERO;
        }
        v.sort_unstable();
        if p == 0 {
            return v[0];
        }
        let rank = (p as usize * v.len()).div_ceil(100);
        v[rank - 1]
    }

    /// Merges another report's samples into this one.
    pub fn merge(&mut self, other: &OverheadReport) {
        for kind in OverheadKind::ALL {
            self.bucket_mut(kind)
                .extend_from_slice(other.bucket(kind));
        }
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for kind in OverheadKind::ALL {
            writeln!(
                f,
                "{}: n={} mean={} max={}",
                kind.symbol(),
                self.count(kind),
                self.mean(kind),
                self.max(kind),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Span {
        Span::from_micros(v)
    }

    #[test]
    fn empty_report_is_zero() {
        let r = OverheadReport::new();
        for kind in OverheadKind::ALL {
            assert_eq!(r.count(kind), 0);
            assert_eq!(r.mean(kind), Span::ZERO);
            assert_eq!(r.max(kind), Span::ZERO);
            assert_eq!(r.min(kind), Span::ZERO);
            assert_eq!(r.percentile(kind, 99), Span::ZERO);
        }
    }

    #[test]
    fn mean_min_max() {
        let mut r = OverheadReport::new();
        for v in [10u64, 20, 30] {
            r.push(OverheadKind::BeginMandatory, us(v));
        }
        assert_eq!(r.count(OverheadKind::BeginMandatory), 3);
        assert_eq!(r.mean(OverheadKind::BeginMandatory), us(20));
        assert_eq!(r.min(OverheadKind::BeginMandatory), us(10));
        assert_eq!(r.max(OverheadKind::BeginMandatory), us(30));
        // Other kinds untouched.
        assert_eq!(r.count(OverheadKind::EndOptional), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut r = OverheadReport::new();
        for v in 1..=100u64 {
            r.push(OverheadKind::EndOptional, us(v));
        }
        assert_eq!(r.percentile(OverheadKind::EndOptional, 0), us(1));
        assert_eq!(r.percentile(OverheadKind::EndOptional, 50), us(50));
        assert_eq!(r.percentile(OverheadKind::EndOptional, 99), us(99));
        assert_eq!(r.percentile(OverheadKind::EndOptional, 100), us(100));
    }

    #[test]
    #[should_panic(expected = "0..=100")]
    fn percentile_rejects_out_of_range() {
        OverheadReport::new().percentile(OverheadKind::BeginMandatory, 101);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = OverheadReport::new();
        let mut b = OverheadReport::new();
        a.push(OverheadKind::BeginOptional, us(5));
        b.push(OverheadKind::BeginOptional, us(15));
        b.push(OverheadKind::SwitchToOptional, us(1));
        a.merge(&b);
        assert_eq!(a.count(OverheadKind::BeginOptional), 2);
        assert_eq!(a.mean(OverheadKind::BeginOptional), us(10));
        assert_eq!(a.count(OverheadKind::SwitchToOptional), 1);
    }

    #[test]
    fn display_contains_all_symbols() {
        let r = OverheadReport::new();
        let s = r.to_string();
        for kind in OverheadKind::ALL {
            assert!(s.contains(kind.symbol()), "{s}");
        }
    }
}
