//! Simulation executor: runs the complete RT-Seed protocol of paper Fig. 6
//! on the `rtseed-sim` discrete-event many-core substrate.
//!
//! Per job of every task the executor simulates, in order:
//!
//! 1. periodic release (`clock_nanosleep` wake-up) — costs **Δm** before
//!    the mandatory part can begin;
//! 2. preemptive SCHED_FIFO execution of the **mandatory part** on the
//!    task's pinned hardware thread;
//! 3. the `pthread_cond_signal` loop waking every parallel optional thread
//!    — **Δb**, O(npᵢ) — plus the mandatory→optional context switch
//!    **Δs**; optional parts whose signal arrives run on their
//!    policy-assigned hardware threads at NRTQ priority;
//! 4. the one-shot optional-deadline timer: at `ODᵢ`, still-active parts
//!    are terminated (per the configured
//!    [`TerminationMode`](crate::termination::TerminationMode)) and the
//!    handling — timer interrupt, `siglongjmp` restore, completion
//!    signalling — costs **Δe** before the wind-up part is released;
//! 5. preemptive execution of the **wind-up part**; the job's deadline is
//!    checked and its QoS (completed / terminated / discarded parts,
//!    achieved optional execution) recorded.
//!
//! Mandatory/wind-up parts of co-located tasks preempt lower-priority work
//! exactly per SCHED_FIFO (preempted threads resume at the head of their
//! level); equal-priority optional parts sharing a hardware thread are
//! serialized FIFO. Everything is deterministic in the run seed.
//!
//! All protocol decisions live in the shared [`Engine`](crate::engine):
//! this module is a *driver* that owns only the discrete-event mechanism —
//! the event queue, per-CPU ready queues and preemption, and the
//! [`OverheadModel`] whose RNG stream is sampled in exactly the order the
//! protocol performs the underlying actions.

use rtseed_model::{HwThreadId, Priority, Span, Time};
use rtseed_sim::{EventQueue, FifoReadyQueue, OverheadKind, OverheadModel};

use crate::config::SystemConfig;
use crate::engine::{AfterMandatory, Cursor, Engine, OdAction, WindupCommand};
use crate::executor::{Backend, ExecError, Executor, Outcome, RunConfig};
use crate::obs::{QueueBand, QueueOp, TraceEvent};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Work {
    task: usize,
    cursor: Cursor,
}

#[derive(Debug)]
enum Event {
    Release { task: usize, retried: bool },
    Ready { work: Work },
    Complete { hw: usize, gen: u64 },
    OdExpire { task: usize, seq: u64 },
    WindupReady { task: usize, seq: u64 },
    StallStart { hw: usize, duration: Span },
    StallEnd { hw: usize },
}

#[derive(Debug, Clone, Copy)]
struct Running {
    work: Work,
    prio: Priority,
    since: Time,
    gen: u64,
}

#[derive(Debug, Default)]
struct Cpu {
    queue: FifoReadyQueue<Work>,
    running: Option<Running>,
    /// Depth of overlapping fault-plan stall windows; > 0 means the
    /// hardware thread executes nothing.
    stalled: u32,
}

/// Reusable per-worker buffers for [`SimExecutor`] runs.
///
/// A worker that executes many simulations back to back (the `mcbench`
/// Monte-Carlo pool, property tests over seed domains) pays the big
/// allocations — the event-queue slab and one 99-level ready queue per
/// hardware thread — once, not per run: [`SimExecutor::run_with_scratch`]
/// borrows the buffers for the duration of a run and returns them cleared
/// but with their capacity intact.
///
/// Reuse is **observationally free**: a run through a reused scratch
/// produces bit-identical outcomes to a fresh executor. The event queue's
/// internal FIFO sequence counter keeps running across
/// [`EventQueue::clear`], but event ordering depends only on *relative*
/// sequence numbers, and the ready queues and signal buffer reset to
/// empty. The scratch-reuse property test in `tests/tests/mcbench.rs`
/// locks this down over random run sequences.
///
/// `ExecutorScratch` is intentionally **not** shareable across threads —
/// each worker owns one.
#[derive(Debug, Default)]
pub struct ExecutorScratch {
    events: EventQueue<Event>,
    cpus: Vec<Cpu>,
    signal_scratch: Vec<Time>,
}

impl ExecutorScratch {
    /// An empty scratch; buffers grow on first use and are kept across
    /// runs.
    pub fn new() -> ExecutorScratch {
        ExecutorScratch::default()
    }
}

/// The simulation executor.
#[derive(Debug)]
pub struct SimExecutor {
    config: SystemConfig,
    run_cfg: RunConfig,
}

impl SimExecutor {
    /// Creates an executor for `config` with run parameters `run_cfg`.
    pub fn new(config: SystemConfig, run_cfg: RunConfig) -> SimExecutor {
        SimExecutor { config, run_cfg }
    }

    /// The system configuration this executor runs.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the simulation to completion and returns the measurements.
    pub fn run(&self) -> Outcome {
        self.run_with_scratch(&mut ExecutorScratch::new())
    }

    /// [`SimExecutor::run`] through reusable worker-owned buffers: the
    /// event queue, per-CPU ready queues, and the Δb signal buffer are
    /// borrowed from `scratch` instead of freshly allocated, and returned
    /// (cleared, capacity kept) when the run completes. The outcome is
    /// bit-identical to [`SimExecutor::run`] — see [`ExecutorScratch`].
    pub fn run_with_scratch(&self, scratch: &mut ExecutorScratch) -> Outcome {
        let topology = *self.config.topology();
        // Recycle the buffers: the event queue keeps its slab (and its
        // running FIFO sequence counter — only relative order matters),
        // the ready queues keep their per-level capacity, and the CPU
        // vector is resized to exactly this topology so out-of-range
        // fault-plan stalls are filtered identically to a fresh run.
        scratch.events.clear();
        scratch
            .cpus
            .resize_with(topology.hw_threads() as usize, Cpu::default);
        for cpu in &mut scratch.cpus {
            cpu.queue.clear();
            cpu.running = None;
            cpu.stalled = 0;
        }
        scratch.signal_scratch.clear();

        let run = &self.run_cfg;
        let mut eng = Engine::new(&self.config, run);
        if run.jobs > 0 {
            // One decision event per task records where the assignment
            // policy placed its optional parts (paper Fig. 8).
            eng.trace_policy_decisions(&self.config);
        }
        let mut sim = SimState {
            run,
            now: Time::ZERO,
            events: std::mem::take(&mut scratch.events),
            cpus: std::mem::take(&mut scratch.cpus),
            eng,
            model: OverheadModel::new(run.calibration, topology, run.load, run.seed),
            gen_counter: 0,
            events_processed: 0,
            signal_scratch: std::mem::take(&mut scratch.signal_scratch),
        };
        sim.run();
        let SimState {
            eng,
            now,
            events_processed,
            events,
            cpus,
            signal_scratch,
            ..
        } = sim;
        scratch.events = events;
        scratch.cpus = cpus;
        scratch.signal_scratch = signal_scratch;
        let out = eng.finish(now);
        Outcome {
            overheads: out.overheads,
            qos: out.qos,
            trace: out.trace,
            metrics: out.metrics,
            faults: out.faults,
            events_processed,
            ..Default::default()
        }
    }
}

impl Executor for SimExecutor {
    fn backend(&self) -> Backend {
        Backend::Sim
    }

    fn system(&self) -> &SystemConfig {
        &self.config
    }

    fn execute(&mut self) -> Result<Outcome, ExecError> {
        self.run_cfg.validate()?;
        Ok(self.run())
    }
}

struct SimState<'a> {
    run: &'a RunConfig,
    now: Time,
    events: EventQueue<Event>,
    cpus: Vec<Cpu>,
    eng: Engine,
    model: OverheadModel,
    gen_counter: u64,
    events_processed: u64,
    /// Reused buffer for per-part signal ready-times (Δb loop): cleared
    /// and refilled each mandatory completion instead of reallocated.
    signal_scratch: Vec<Time>,
}

impl<'a> SimState<'a> {
    fn run(&mut self) {
        if self.run.jobs == 0 {
            return;
        }
        for t in 0..self.eng.task_count() {
            self.events.push(
                Time::ZERO,
                Event::Release {
                    task: t,
                    retried: false,
                },
            );
        }
        // Planned CPU stall windows enter the same event queue as everything
        // else, so a faulted run replays exactly like a healthy one.
        for stall in self.run.fault_plan.stalls() {
            let hw = stall.hw as usize;
            if hw >= self.cpus.len() {
                continue;
            }
            self.events.push(
                stall.at,
                Event::StallStart {
                    hw,
                    duration: stall.duration,
                },
            );
            self.events
                .push(stall.at + stall.duration, Event::StallEnd { hw });
        }
        while self.eng.has_live_tasks() {
            let Some((at, event)) = self.events.pop() else {
                break;
            };
            debug_assert!(at >= self.now, "event time went backwards");
            self.now = at;
            self.events_processed += 1;
            match event {
                Event::Release { task, retried } => self.on_release_inner(task, retried),
                Event::Ready { work } => self.on_ready(work),
                Event::Complete { hw, gen } => self.on_complete(hw, gen),
                Event::OdExpire { task, seq } => self.on_od_expire(task, seq),
                Event::WindupReady { task, seq } => self.on_windup_ready(task, seq),
                Event::StallStart { hw, duration } => self.on_stall_start(hw, duration),
                Event::StallEnd { hw } => self.on_stall_end(hw),
            }
        }
    }

    // ----- event handlers -------------------------------------------------

    fn on_release_inner(&mut self, task: usize, retried: bool) {
        // A job may complete at the very instant of the next release; the
        // completion event is already queued ahead of us (FIFO), so requeue
        // the release once to let it land before declaring an overrun.
        if self.eng.job_in_flight(task) && !retried {
            self.events.push(
                self.now,
                Event::Release {
                    task,
                    retried: true,
                },
            );
            return;
        }
        // Abort a job that overran into its next release (deadline missed
        // hard): finalize it so the new job starts clean.
        if self.eng.jobs_done(task) > 0 || self.eng.job_in_flight(task) {
            if self.eng.job_in_flight(task) {
                self.abort_job(task);
            }
            if self.eng.jobs_done(task) >= self.run.jobs {
                return;
            }
        }

        let release = self.now;
        let rel = self.eng.release(task, release);

        // Δm: wake-up latency before the mandatory thread is runnable.
        let dm = self.model.begin_mandatory();
        self.eng.sample(OverheadKind::BeginMandatory, dm);
        self.events.push(
            release + dm,
            Event::Ready {
                work: Work {
                    task,
                    cursor: Cursor::Mandatory,
                },
            },
        );

        // The optional-deadline timer (armed per job; the handler no-ops if
        // the Table I signal-mask defect broke the timer). The fault plan
        // may delay the one-shot or lose it outright.
        if rel.has_parts {
            if let Some(at) = self.eng.arm_timer(task, release) {
                self.events.push(at, Event::OdExpire { task, seq: rel.seq });
            }
        }

        // Periodic releases continue while jobs remain.
        if let Some(at) = rel.next_release {
            self.events.push(
                at,
                Event::Release {
                    task,
                    retried: false,
                },
            );
        }
    }

    fn on_ready(&mut self, work: Work) {
        let (hw, prio) = match work.cursor {
            Cursor::Mandatory | Cursor::Windup => {
                (self.eng.mandatory_hw(work.task), self.eng.mand_prio(work.task))
            }
            Cursor::Optional(k) => (
                self.eng.placement(work.task, k as usize),
                self.eng.opt_prio(work.task),
            ),
        };
        // Hot path: build the queue event only when someone is recording.
        if self.eng.tracing() {
            let job = self.eng.job(work.task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Enqueue,
                    job,
                    hw: Some(HwThreadId(hw as u32)),
                },
            );
        }
        self.cpus[hw].queue.enqueue(prio, work);
        self.resched(hw);
    }

    fn on_complete(&mut self, hw: usize, gen: u64) {
        let Some(running) = self.cpus[hw].running else {
            return;
        };
        if running.gen != gen {
            return; // stale completion (preempted or terminated meanwhile)
        }
        self.cpus[hw].running = None;
        let work = running.work;
        if matches!(work.cursor, Cursor::Mandatory | Cursor::Windup) {
            // Bank what actually ran; the engine cuts the part at its
            // supervisor budget if demand remains.
            let ran = self.now.saturating_elapsed_since(running.since);
            self.eng.bank(work.task, work.cursor, ran);
            self.eng.cut_if_over_budget(work.task, work.cursor, self.now);
        }
        match work.cursor {
            Cursor::Mandatory => {
                let after = self.eng.mandatory_completed(work.task, self.now);
                self.after_mandatory(work.task, after);
            }
            Cursor::Optional(k) => {
                if let Some(cmd) = self.eng.optional_completed(work.task, k, self.now) {
                    self.apply_windup(work.task, cmd);
                }
            }
            Cursor::Windup => {
                self.eng.windup_completed(work.task, self.now);
            }
        }
        self.resched(hw);
    }

    /// Maps the engine's post-mandatory decision onto the event queue: the
    /// Δb `pthread_cond_signal` loop and the Δs mandatory→optional switch
    /// for signalled parts, or the wind-up command otherwise.
    fn after_mandatory(&mut self, task: usize, after: AfterMandatory) {
        match after {
            AfterMandatory::Windup(cmd) => self.apply_windup(task, cmd),
            AfterMandatory::Signal { np } => {
                // Δb: the signal loop over all parallel optional threads,
                // executed sequentially by the mandatory thread. The
                // ready-time buffer is a reused scratch vector (taken out
                // of self to keep the borrow checker happy across the model
                // calls), so the signalling loop allocates nothing after
                // the first job.
                let mut ready_times = std::mem::take(&mut self.signal_scratch);
                ready_times.clear();
                let mut cum = Span::ZERO;
                for _ in 0..np {
                    cum += self.model.signal_one_optional();
                    ready_times.push(self.now + cum);
                }
                self.eng.sample(OverheadKind::BeginOptional, cum);

                // Δs: the mandatory→optional context switch; parts placed
                // on the mandatory thread's own processor additionally wait
                // for it.
                let ds = self.model.switch_to_optional(np);
                self.eng.sample(OverheadKind::SwitchToOptional, ds);

                let mandatory_hw = self.eng.mandatory_hw(task);
                for (k, &base) in ready_times.iter().enumerate() {
                    let at = if self.eng.placement(task, k) == mandatory_hw {
                        base + ds
                    } else {
                        base
                    };
                    self.events.push(
                        at,
                        Event::Ready {
                            work: Work {
                                task,
                                cursor: Cursor::Optional(k as u32),
                            },
                        },
                    );
                }
                self.signal_scratch = ready_times;
            }
        }
    }

    /// Maps a wind-up command onto the event queue (a `Finished` or
    /// `AlreadyScheduled` command needs no mechanism).
    fn apply_windup(&mut self, task: usize, cmd: WindupCommand) {
        if let WindupCommand::At { at, seq } = cmd {
            self.events.push(at, Event::WindupReady { task, seq });
        }
    }

    fn on_od_expire(&mut self, task: usize, seq: u64) {
        match self.eng.od_expired(task, seq, self.now) {
            OdAction::Stale | OdAction::Handled => {}
            OdAction::Terminate { np } => {
                // Terminate every un-ended part, in part order. Termination
                // handling is serialized — the O(npᵢ) mechanism behind
                // Fig. 13 — and hops between cores cost extra under load.
                for k in 0..np {
                    let Some(target) = self.eng.plan_terminate(task, k) else {
                        continue;
                    };
                    let cost = self.model.end_one_part(target.cross_core);
                    self.eng.note_termination_cost(cost);
                    // Remove the part from its processor (running or
                    // queued).
                    self.stop_work(
                        target.hw,
                        Work {
                            task,
                            cursor: Cursor::Optional(k as u32),
                        },
                        target.prio,
                    );
                    self.eng.commit_terminate(task, k, self.now);
                }
                let cmd = self.eng.finish_termination(task, self.now);
                self.apply_windup(task, cmd);
            }
        }
    }

    fn on_windup_ready(&mut self, task: usize, seq: u64) {
        if self.eng.windup_ready(task, seq, self.now) {
            self.on_ready(Work {
                task,
                cursor: Cursor::Windup,
            });
        }
    }

    fn on_stall_start(&mut self, hw: usize, duration: Span) {
        self.eng.stall_started(hw, duration, self.now);
        self.cpus[hw].stalled += 1;
        // Whatever was running loses the processor; its banked progress is
        // kept and it resumes at the head of its priority level when the
        // stall window closes.
        if let Some(r) = self.cpus[hw].running.take() {
            let ran = self.now.saturating_elapsed_since(r.since);
            self.eng.bank(r.work.task, r.work.cursor, ran);
            self.cpus[hw].queue.enqueue_front(r.prio, r.work);
        }
    }

    fn on_stall_end(&mut self, hw: usize) {
        self.cpus[hw].stalled = self.cpus[hw].stalled.saturating_sub(1);
        if self.cpus[hw].stalled == 0 {
            self.resched(hw);
        }
    }

    // ----- helpers --------------------------------------------------------

    /// Forcibly ends a job that is still incomplete at its next release.
    fn abort_job(&mut self, task: usize) {
        // Scrub real-time work.
        let mand_hw = self.eng.mandatory_hw(task);
        let mand_prio = self.eng.mand_prio(task);
        for cursor in [Cursor::Mandatory, Cursor::Windup] {
            self.stop_work(mand_hw, Work { task, cursor }, mand_prio);
        }
        // Scrub optional work and finalize outcomes.
        for k in 0..self.eng.part_count(task) {
            if self.eng.part_ended(task, k) {
                continue;
            }
            let hw = self.eng.placement(task, k);
            let opt_prio = self.eng.opt_prio(task);
            self.stop_work(
                hw,
                Work {
                    task,
                    cursor: Cursor::Optional(k as u32),
                },
                opt_prio,
            );
            self.eng.abort_part(task, k, self.now);
        }
        self.eng.finish_abort(task, self.now);
    }

    /// Stops `work` on `hw` whether it is currently running or queued.
    fn stop_work(&mut self, hw: usize, work: Work, prio: Priority) {
        let cpu = &mut self.cpus[hw];
        if cpu.running.is_some_and(|r| r.work == work) {
            let r = cpu.running.take().expect("checked");
            // Bank the execution it achieved up to now.
            let ran = self.now.saturating_elapsed_since(r.since);
            self.eng.bank(work.task, work.cursor, ran);
            self.resched(hw);
        } else if self.cpus[hw].queue.remove(prio, &work) && self.eng.tracing() {
            let job = self.eng.job(work.task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Remove,
                    job,
                    hw: Some(HwThreadId(hw as u32)),
                },
            );
        }
    }

    /// SCHED_FIFO dispatch for one processor: preempt if a higher-priority
    /// thread is waiting, then fill an idle processor with the best thread.
    fn resched(&mut self, hw: usize) {
        // A stalled hardware thread dispatches nothing until the window
        // closes (the stall handler already vacated it).
        if self.cpus[hw].stalled > 0 {
            return;
        }
        // Preemption check.
        if let Some(running) = self.cpus[hw].running {
            let waiting = self.cpus[hw].queue.peek_highest_priority();
            if waiting.is_some_and(|p| p > running.prio) {
                self.cpus[hw].running = None;
                let ran = self.now.saturating_elapsed_since(running.since);
                self.eng.bank(running.work.task, running.work.cursor, ran);
                // Preempted SCHED_FIFO threads resume at the head of their
                // level.
                self.cpus[hw]
                    .queue
                    .enqueue_front(running.prio, running.work);
            } else {
                return;
            }
        }
        // Dispatch the best waiting thread.
        let Some((prio, work)) = self.cpus[hw].queue.dequeue_highest() else {
            return;
        };
        if self.eng.tracing() {
            let job = self.eng.job(work.task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Dispatch,
                    job,
                    hw: Some(HwThreadId(hw as u32)),
                },
            );
        }
        let remaining = self.eng.on_dispatch(work.task, work.cursor, hw, self.now);
        self.gen_counter += 1;
        let gen = self.gen_counter;
        self.cpus[hw].running = Some(Running {
            work,
            prio,
            since: self.now,
            gen,
        });
        self.events.push(self.now + remaining, Event::Complete { hw, gen });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AssignmentPolicy;
    use crate::supervisor::SupervisorConfig;
    use crate::termination::TerminationMode;
    use rtseed_model::{TaskId, TaskSet, TaskSpec, Topology};
    use rtseed_sim::{FaultPlan, FaultTarget, TimerFault};

    fn paper_set(np: usize) -> TaskSet {
        let t = TaskSpec::builder("τ1")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(250))
            .windup(Span::from_millis(250))
            .optional_parts(np, Span::from_secs(1))
            .build()
            .unwrap();
        TaskSet::new(vec![t]).unwrap()
    }

    fn executor(np: usize, policy: AssignmentPolicy, run: RunConfig) -> SimExecutor {
        let cfg =
            SystemConfig::build(paper_set(np), Topology::xeon_phi_3120a(), policy).unwrap();
        SimExecutor::new(cfg, run)
    }

    fn quick_run(np: usize, jobs: u64) -> Outcome {
        executor(
            np,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs,
                trace: crate::obs::TraceConfig::enabled(),
                ..Default::default()
            },
        )
        .run()
    }

    #[test]
    fn paper_workload_no_misses() {
        let out = quick_run(57, 10);
        assert_eq!(out.qos.jobs(), 10);
        assert_eq!(out.qos.deadline_misses(), 0);
    }

    #[test]
    fn overrunning_parts_are_terminated_not_completed() {
        // o = 1 s but only 500 ms fit between OD and the earliest start:
        // every part is terminated.
        let out = quick_run(57, 5);
        let (completed, terminated, discarded) = out.qos.outcome_totals();
        assert_eq!(completed, 0);
        assert_eq!(terminated, 57 * 5);
        assert_eq!(discarded, 0);
    }

    #[test]
    fn overhead_sample_counts() {
        let jobs = 8;
        let out = quick_run(16, jobs);
        for kind in OverheadKind::ALL {
            assert_eq!(out.overheads.count(kind), jobs as usize, "{kind:?}");
        }
    }

    #[test]
    fn qos_achieved_matches_window() {
        // Parts start right after the mandatory part (~250 ms) and are
        // terminated at OD (750 ms): achieved ≈ 500 ms each (minus
        // signalling overheads).
        let out = quick_run(8, 3);
        let per_part = out.qos.achieved_total() / (8 * 3) as u64;
        assert!(
            per_part > Span::from_millis(520) && per_part < Span::from_millis(575),
            "{per_part}"
        );
    }

    #[test]
    fn short_parts_complete_early() {
        // 50 ms optional parts easily finish inside the 500 ms window.
        let t = TaskSpec::builder("τ1")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(250))
            .windup(Span::from_millis(250))
            .optional_parts(4, Span::from_millis(50))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![t]).unwrap(),
            Topology::xeon_phi_3120a(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 5,
                ..Default::default()
            },
        )
        .run();
        let (completed, terminated, discarded) = out.qos.outcome_totals();
        assert_eq!(completed, 20);
        assert_eq!(terminated, 0);
        assert_eq!(discarded, 0);
        assert_eq!(out.qos.deadline_misses(), 0);
        assert!((out.qos.aggregate_ratio() - 1.0).abs() < 1e-9);
        // No termination happened, so no Δe samples.
        assert_eq!(out.overheads.count(OverheadKind::EndOptional), 0);
    }

    #[test]
    fn trace_contains_full_job_lifecycle() {
        let out = quick_run(4, 1);
        let events = &out.trace;
        assert_eq!(events.count(|e| matches!(e, TraceEvent::JobReleased { .. })), 1);
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::MandatoryStarted { .. })),
            1
        );
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::MandatoryCompleted { .. })),
            1
        );
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::OptionalStarted { .. })),
            4
        );
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::OptionalEnded { .. })),
            4
        );
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::WindupCompleted { .. })),
            1
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick_run(32, 5);
        let b = quick_run(32, 5);
        assert_eq!(a.qos, b.qos);
        assert_eq!(a.overheads, b.overheads);
        assert_eq!(a.trace, b.trace);
        assert!(a.faults.is_clean());
    }

    fn mandatory_fault_plan(factor: f64, jobs: rtseed_sim::JobWindow) -> FaultPlan {
        FaultPlan::new(1).with_wcet_fault(rtseed_sim::WcetFault {
            task: None,
            jobs,
            target: FaultTarget::Mandatory,
            factor,
        })
    }

    #[test]
    fn wcet_fault_without_supervisor_misses_deadlines() {
        // 5× the mandatory demand (0.75 × 250 ms × 5 = 937.5 ms) blows past
        // the optional deadline and leaves no room for the wind-up part.
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 4,
                fault_plan: mandatory_fault_plan(5.0, rtseed_sim::JobWindow::ALL),
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.deadline_misses(), 4);
        assert_eq!(out.faults.wcet_faults, 4);
        // Unsupervised: faults observed, nothing cut, nothing degraded.
        assert_eq!(out.faults.budget_cuts, 0);
        assert_eq!(out.faults.degraded_entries, 0);
    }

    #[test]
    fn supervisor_budget_cut_preserves_deadlines_under_same_fault() {
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 4,
                fault_plan: mandatory_fault_plan(5.0, rtseed_sim::JobWindow::ALL),
                supervisor: SupervisorConfig::armed(),
                trace: crate::obs::TraceConfig::enabled(),
                ..Default::default()
            },
        )
        .run();
        // Every mandatory part is cut at its declared budget, so the
        // analysed schedule holds: zero misses.
        assert_eq!(out.qos.deadline_misses(), 0);
        assert_eq!(out.faults.budget_cuts, 4);
        assert_eq!(out.faults.overruns_detected, 4);
        // Sustained overrun ⇒ degraded mode (entered at the 2nd cut) and
        // eventually quarantine (3rd consecutive overrun).
        assert_eq!(out.faults.degraded_entries, 1);
        assert_eq!(out.faults.quarantines, 1);
        assert_eq!(out.faults.jobs_degraded, 3, "jobs 1..=3 shed optional");
        assert_eq!(out.qos.degraded_jobs(), 3);
        assert!(out.faults.degraded_dwell > Span::ZERO);
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::BudgetCut { .. })),
            4
        );
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::DegradedModeEntered)),
            1
        );
    }

    #[test]
    fn supervisor_recovers_when_the_fault_clears() {
        // Fault the first two jobs only; the remaining clean jobs must
        // bring the system back to normal mode with full QoS.
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 8,
                fault_plan: mandatory_fault_plan(5.0, rtseed_sim::JobWindow::new(0, 2)),
                supervisor: SupervisorConfig::armed(),
                trace: crate::obs::TraceConfig::enabled(),
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.deadline_misses(), 0);
        assert_eq!(out.faults.degraded_entries, 1);
        assert!(out.faults.recovery_latency > Span::ZERO);
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::DegradedModeExited)),
            1
        );
        // Post-recovery jobs deliver optional QoS again.
        let (_, terminated, discarded) = out.qos.outcome_totals();
        assert!(terminated > 0, "recovered jobs run optional parts");
        assert!(discarded > 0, "degraded jobs shed optional parts");
    }

    #[test]
    fn lost_timer_fault_breaks_one_job() {
        let plan = FaultPlan::new(0).with_timer_fault(rtseed_sim::TimerFaultSpec {
            task: None,
            jobs: rtseed_sim::JobWindow::new(0, 1),
            fault: TimerFault::Lost,
        });
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 3,
                fault_plan: plan,
                ..Default::default()
            },
        )
        .run();
        // Job 0's parts (o = 1 s) run unchecked until the next release
        // aborts the job; jobs 1–2 are healthy.
        assert_eq!(out.qos.deadline_misses(), 1);
        assert_eq!(out.faults.timer_faults, 1);
    }

    #[test]
    fn delayed_timer_extends_optional_window() {
        let delayed = |d_ms| {
            executor(
                2,
                AssignmentPolicy::OneByOne,
                RunConfig {
                    jobs: 2,
                    fault_plan: FaultPlan::new(0).with_timer_fault(
                        rtseed_sim::TimerFaultSpec {
                            task: None,
                            jobs: rtseed_sim::JobWindow::ALL,
                            fault: TimerFault::Delay(Span::from_millis(d_ms)),
                        },
                    ),
                    ..Default::default()
                },
            )
            .run()
        };
        let on_time = quick_run(2, 2);
        let late = delayed(30);
        // Parts keep executing during the latency spike...
        assert!(late.qos.achieved_total() > on_time.qos.achieved_total());
        // ...and a 30 ms spike fits inside the wind-up slack
        // (1000 − 750 − 187.5 ≈ 62 ms), so deadlines still hold.
        assert_eq!(late.qos.deadline_misses(), 0);
        assert_eq!(late.faults.timer_faults, 2);
        // A spike larger than the slack pushes the wind-up past the
        // deadline.
        assert_eq!(delayed(100).qos.deadline_misses(), 2);
    }

    #[test]
    fn cpu_stall_starves_the_pinned_mandatory_thread() {
        let plan = FaultPlan::new(0).with_cpu_stall(rtseed_sim::CpuStall {
            hw: 0,
            at: Time::ZERO,
            duration: Span::from_millis(900),
        });
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 3,
                fault_plan: plan,
                trace: crate::obs::TraceConfig::enabled(),
                ..Default::default()
            },
        )
        .run();
        // Job 0 cannot start its mandatory part until 900 ms and is aborted
        // by the next release; later jobs are healthy.
        assert_eq!(out.qos.deadline_misses(), 1);
        assert_eq!(out.faults.cpu_stalls, 1);
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::CpuStallStarted { .. })),
            1
        );
    }

    #[test]
    fn faulted_run_replays_bit_identically() {
        let run = || {
            executor(
                8,
                AssignmentPolicy::OneByOne,
                RunConfig {
                    jobs: 6,
                    fault_plan: FaultPlan::new(99)
                        .with_random_overruns(rtseed_sim::RandomOverruns {
                            probability: 0.4,
                            min_factor: 2.0,
                            max_factor: 6.0,
                            target: FaultTarget::Mandatory,
                        })
                        .with_cpu_stall(rtseed_sim::CpuStall {
                            hw: 1,
                            at: Time::from_nanos(2_300_000_000),
                            duration: Span::from_millis(40),
                        }),
                    supervisor: SupervisorConfig::armed(),
                    trace: crate::obs::TraceConfig::enabled(),
                    ..Default::default()
                },
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.qos, b.qos);
        assert_eq!(a.faults, b.faults);
        assert!(!a.faults.is_clean());
    }

    #[test]
    fn zero_jobs_is_empty_run() {
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 0,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.jobs(), 0);
    }

    #[test]
    fn plain_liu_layland_task_runs() {
        let t = TaskSpec::builder("plain")
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(30))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![t]).unwrap(),
            Topology::uniprocessor(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 10,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.jobs(), 10);
        assert_eq!(out.qos.deadline_misses(), 0);
        assert!((out.qos.aggregate_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_colocated_tasks_interfere_but_meet_deadlines() {
        let mk = |name: &str, period_ms: u64| {
            TaskSpec::builder(name)
                .period(Span::from_millis(period_ms))
                .mandatory(Span::from_millis(10))
                .windup(Span::from_millis(10))
                .optional_parts(2, Span::from_millis(period_ms))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk("fast", 100), mk("slow", 400)]).unwrap();
        let cfg =
            SystemConfig::build(set, Topology::uniprocessor(), AssignmentPolicy::OneByOne)
                .unwrap();
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 8,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.jobs(), 16);
        assert_eq!(out.qos.deadline_misses(), 0);
    }

    #[test]
    fn periodic_check_delays_windup_but_gains_qos() {
        let sig = executor(
            8,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 5,
                ..Default::default()
            },
        )
        .run();
        let pc = executor(
            8,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 5,
                termination: TerminationMode::PeriodicCheck {
                    interval: Span::from_millis(40),
                },
                ..Default::default()
            },
        )
        .run();
        // The cooperative mode keeps running until the next checkpoint:
        // more achieved optional execution, larger Δe (lag included).
        assert!(pc.qos.achieved_total() > sig.qos.achieved_total());
        assert!(
            pc.overheads.mean(OverheadKind::EndOptional)
                > sig.overheads.mean(OverheadKind::EndOptional)
        );
        // With a 40 ms interval and 250 ms of wind-up slack, deadlines
        // still hold.
        assert_eq!(pc.qos.deadline_misses(), 0);
    }

    #[test]
    fn unwind_defect_breaks_later_jobs() {
        // Table I: try-catch does not restore the signal mask; after the
        // first job, optional-deadline timers never fire, parts run to
        // completion (1 s each!) and wind-up parts miss deadlines.
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 4,
                termination: TerminationMode::UnwindCatch,
                ..Default::default()
            },
        )
        .run();
        assert!(
            out.qos.deadline_misses() >= 2,
            "expected later jobs to miss deadlines, got {}",
            out.qos.deadline_misses()
        );
        // The healthy mechanism has zero misses on the same workload.
        let healthy = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 4,
                termination: TerminationMode::SigjmpTimer,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(healthy.qos.deadline_misses(), 0);
    }

    #[test]
    fn mandatory_overrunning_od_discards_all_parts() {
        // m = 950 ms WCET with rt_exec_fraction = 1.0 completes exactly at
        // OD = D − w = 950 ms: no time remains, every part is discarded
        // and the wind-up part runs right after the mandatory part (§II-B).
        let t = TaskSpec::builder("late")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(950))
            .windup(Span::from_millis(50))
            .optional_parts(4, Span::from_millis(100))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![t]).unwrap(),
            Topology::xeon_phi_3120a(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        let zero_dm = rtseed_sim::Calibration {
            begin_mandatory_ns: 0,
            jitter: 0.0,
            ..rtseed_sim::Calibration::default()
        };
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 3,
                rt_exec_fraction: 1.0,
                calibration: zero_dm,
                ..Default::default()
            },
        )
        .run();
        let (completed, terminated, discarded) = out.qos.outcome_totals();
        assert_eq!(discarded, 12, "c/t = {completed}/{terminated}");
        assert_eq!(completed + terminated, 0);
        // The wind-up still fits: 950 + 50 = 1000 = D.
        assert_eq!(out.qos.deadline_misses(), 0);
        // No signalling happened, so no Δb/Δs/Δe samples.
        assert_eq!(out.overheads.count(OverheadKind::BeginOptional), 0);
        assert_eq!(out.overheads.count(OverheadKind::EndOptional), 0);
    }

    #[test]
    fn rt_parts_preempt_optional_parts_on_shared_thread() {
        // Task A (higher RM rank by insertion-order tie) shares the single
        // hw thread with task B: B's optional window is squeezed by A's
        // mandatory part and bounded by B's interference-shrunk OD.
        let a = TaskSpec::builder("a")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(200))
            .windup(Span::from_millis(200))
            .optional_parts(1, Span::from_millis(1))
            .build()
            .unwrap();
        let b = TaskSpec::builder("b")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(50))
            .windup(Span::from_millis(50))
            .optional_parts(1, Span::from_secs(1))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![a, b]).unwrap(),
            Topology::uniprocessor(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        // B's wind-up response under A's interference: R = 50 + 400 = 450,
        // so OD_B = 550 ms.
        assert_eq!(cfg.optional_deadline(TaskId(1)), Span::from_millis(550));
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 2,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.deadline_misses(), 0);
        // Per job: A's mandatory runs 0–150 ms (0.75 × 200), B's mandatory
        // 150–187.5, B's optional then runs until OD_B = 550, minus A's
        // tiny optional part: ≈ 360 ms. Two jobs ⇒ ≈ 720 ms total.
        let achieved = out.qos.achieved_total();
        assert!(
            achieved > Span::from_millis(2 * 320) && achieved < Span::from_millis(2 * 380),
            "preempted optional window should be ≈ 360 ms/job: {achieved}"
        );
    }

    #[test]
    fn shared_hw_thread_serializes_optional_parts() {
        // 8 optional parts on a uniprocessor: all run (serialized) on the
        // single hardware thread; total achieved is bounded by the OD
        // window, far below 8 × window.
        let t = TaskSpec::builder("uni")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(100))
            .windup(Span::from_millis(100))
            .optional_parts(8, Span::from_secs(1))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![t]).unwrap(),
            Topology::uniprocessor(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 2,
                ..Default::default()
            },
        )
        .run();
        // OD = 900 ms, mandatory done ~75 ms (0.75 × 100 ms WCET):
        // ~825 ms of serialized optional execution per job.
        let per_job = out.qos.achieved_total() / 2;
        assert!(
            per_job > Span::from_millis(780) && per_job < Span::from_millis(830),
            "{per_job}"
        );
        assert_eq!(out.qos.deadline_misses(), 0);
    }
}
