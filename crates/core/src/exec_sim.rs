//! Simulation executor: runs the complete RT-Seed protocol of paper Fig. 6
//! on the `rtseed-sim` discrete-event many-core substrate.
//!
//! Per job of every task the executor simulates, in order:
//!
//! 1. periodic release (`clock_nanosleep` wake-up) — costs **Δm** before
//!    the mandatory part can begin;
//! 2. preemptive SCHED_FIFO execution of the **mandatory part** on the
//!    task's pinned hardware thread;
//! 3. the `pthread_cond_signal` loop waking every parallel optional thread
//!    — **Δb**, O(npᵢ) — plus the mandatory→optional context switch
//!    **Δs**; optional parts whose signal arrives run on their
//!    policy-assigned hardware threads at NRTQ priority;
//! 4. the one-shot optional-deadline timer: at `ODᵢ`, still-active parts
//!    are terminated (per the configured
//!    [`TerminationMode`](crate::termination::TerminationMode)) and the
//!    handling — timer interrupt, `siglongjmp` restore, completion
//!    signalling — costs **Δe** before the wind-up part is released;
//! 5. preemptive execution of the **wind-up part**; the job's deadline is
//!    checked and its QoS (completed / terminated / discarded parts,
//!    achieved optional execution) recorded.
//!
//! Mandatory/wind-up parts of co-located tasks preempt lower-priority work
//! exactly per SCHED_FIFO (preempted threads resume at the head of their
//! level); equal-priority optional parts sharing a hardware thread are
//! serialized FIFO. Everything is deterministic in the run seed.

use rtseed_model::{
    JobId, JobPhase, OptionalOutcome, PartId, Priority, QosSummary, Span, TaskId,
    Time,
};
use rtseed_sim::{
    EventQueue, FaultTarget, FifoReadyQueue, OverheadKind, OverheadModel, TimerFault,
};

use crate::config::SystemConfig;
use crate::executor::{Backend, ExecError, Executor, Outcome, RunConfig};
use crate::obs::{MetricsRegistry, QueueBand, QueueOp, TraceEvent, TraceRecorder};
use crate::report::OverheadReport;
use crate::supervisor::OverloadSupervisor;

/// Former name of the unified [`RunConfig`]; every field carries over.
#[deprecated(note = "use `rtseed::executor::RunConfig` (or the prelude)")]
pub type SimRunConfig = RunConfig;

/// Former name of the unified [`Outcome`]; every field carries over.
#[deprecated(note = "use `rtseed::executor::Outcome` (or the prelude)")]
pub type SimOutcome = Outcome;

/// Which part of which task a scheduled unit of work belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cursor {
    Mandatory,
    Optional(u32),
    Windup,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Work {
    task: usize,
    cursor: Cursor,
}

#[derive(Debug)]
enum Event {
    Release { task: usize, retried: bool },
    Ready { work: Work },
    Complete { hw: usize, gen: u64 },
    OdExpire { task: usize, seq: u64 },
    WindupReady { task: usize, seq: u64 },
    StallStart { hw: usize, duration: Span },
    StallEnd { hw: usize },
}

#[derive(Debug, Clone, Copy)]
struct Running {
    work: Work,
    prio: Priority,
    since: Time,
    gen: u64,
}

#[derive(Debug, Default)]
struct Cpu {
    queue: FifoReadyQueue<Work>,
    running: Option<Running>,
    /// Depth of overlapping fault-plan stall windows; > 0 means the
    /// hardware thread executes nothing.
    stalled: u32,
}

#[derive(Debug, Clone)]
struct PartState {
    executed: Span,
    running_since: Option<Time>,
    started: Option<Time>,
    outcome: Option<OptionalOutcome>,
}

impl PartState {
    fn fresh() -> PartState {
        PartState {
            executed: Span::ZERO,
            running_since: None,
            started: None,
            outcome: None,
        }
    }
}

#[derive(Debug)]
struct TaskRun {
    // Static configuration.
    mandatory_hw: usize,
    placements: Vec<usize>,
    mand_prio: Priority,
    opt_prio: Priority,
    period: Span,
    deadline: Span,
    mandatory: Span,
    windup: Span,
    optional: Vec<Span>,
    od: Span,
    // Per-job state.
    seq: u64,
    release: Time,
    phase: JobPhase,
    rt_remaining: Span,
    /// Supervisor execution budget remaining for the current real-time
    /// part (only enforced when the supervisor is armed).
    rt_budget: Span,
    parts: Vec<PartState>,
    windup_scheduled: bool,
    /// The task entered the SQ waiting for its wind-up release (traced so
    /// the SQ enqueue/remove pair stays balanced).
    in_sq: bool,
    /// The current job exceeded a real-time budget (supervisor cut it).
    overran: bool,
    /// The current job ran with its optional parts shed (degraded mode or
    /// quarantine).
    shed: bool,
    // Across jobs.
    timer_broken: bool,
    jobs_done: u64,
}

impl TaskRun {
    fn od_time(&self) -> Time {
        self.release + self.od
    }

    fn job(&self, id: usize) -> JobId {
        JobId {
            task: TaskId(id as u32),
            seq: self.seq,
        }
    }

    fn parts_all_ended(&self) -> bool {
        self.parts.iter().all(|p| p.outcome.is_some())
    }

    fn requested_optional(&self) -> Span {
        self.optional.iter().copied().sum()
    }
}

/// The simulation executor.
#[derive(Debug)]
pub struct SimExecutor {
    config: SystemConfig,
    run_cfg: RunConfig,
}

impl SimExecutor {
    /// Creates an executor for `config` with run parameters `run_cfg`.
    pub fn new(config: SystemConfig, run_cfg: RunConfig) -> SimExecutor {
        SimExecutor { config, run_cfg }
    }

    /// The system configuration this executor runs.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the simulation to completion and returns the measurements.
    pub fn run(&self) -> Outcome {
        let mut sim = SimState::new(&self.config, &self.run_cfg);
        sim.run();
        let faults = sim.sup.finish(sim.now);
        Outcome {
            overheads: sim.overheads,
            qos: sim.qos,
            trace: sim.rec.finish(),
            metrics: sim.metrics,
            faults,
            events_processed: sim.events_processed,
            ..Default::default()
        }
    }
}

impl Executor for SimExecutor {
    fn backend(&self) -> Backend {
        Backend::Sim
    }

    fn system(&self) -> &SystemConfig {
        &self.config
    }

    fn execute(&mut self) -> Result<Outcome, ExecError> {
        self.run_cfg.validate()?;
        Ok(self.run())
    }
}

struct SimState<'a> {
    cfg: &'a SystemConfig,
    run: &'a RunConfig,
    now: Time,
    events: EventQueue<Event>,
    cpus: Vec<Cpu>,
    tasks: Vec<TaskRun>,
    model: OverheadModel,
    gen_counter: u64,
    overheads: OverheadReport,
    qos: QosSummary,
    rec: TraceRecorder,
    metrics: MetricsRegistry,
    live_tasks: usize,
    sup: OverloadSupervisor,
    events_processed: u64,
    /// Reused buffer for per-part signal ready-times (Δb loop): cleared
    /// and refilled each mandatory completion instead of reallocated.
    signal_scratch: Vec<Time>,
}

impl<'a> SimState<'a> {
    fn new(cfg: &'a SystemConfig, run: &'a RunConfig) -> SimState<'a> {
        assert!(
            run.rt_exec_fraction > 0.0 && run.rt_exec_fraction <= 1.0,
            "rt_exec_fraction must be within (0, 1]"
        );
        let topology = *cfg.topology();
        let cpus = (0..topology.hw_threads()).map(|_| Cpu::default()).collect();
        let tasks = cfg
            .set()
            .iter()
            .map(|(id, spec)| TaskRun {
                mandatory_hw: cfg.mandatory_hw(id).index(),
                placements: cfg
                    .optional_placements(id)
                    .iter()
                    .map(|h| h.index())
                    .collect(),
                mand_prio: cfg.priorities().mandatory(id),
                opt_prio: cfg.priorities().optional(id),
                period: spec.period(),
                deadline: spec.deadline(),
                mandatory: spec.mandatory().mul_f64(run.rt_exec_fraction),
                windup: spec.windup().mul_f64(run.rt_exec_fraction),
                optional: spec.optional_parts().to_vec(),
                od: cfg.optional_deadline(id),
                seq: 0,
                release: Time::ZERO,
                phase: JobPhase::Done, // becomes Released at first release
                rt_remaining: Span::ZERO,
                rt_budget: Span::ZERO,
                parts: Vec::new(),
                windup_scheduled: false,
                in_sq: false,
                overran: false,
                shed: false,
                timer_broken: false,
                jobs_done: 0,
            })
            .collect::<Vec<_>>();
        let live_tasks = tasks.len();
        let sup = OverloadSupervisor::new(run.supervisor, tasks.len());
        SimState {
            cfg,
            run,
            now: Time::ZERO,
            events: EventQueue::new(),
            cpus,
            tasks,
            model: OverheadModel::new(run.calibration, topology, run.load, run.seed),
            gen_counter: 0,
            overheads: OverheadReport::new(),
            qos: QosSummary::new(),
            rec: TraceRecorder::new(run.trace_config()),
            metrics: MetricsRegistry::new(),
            live_tasks,
            sup,
            events_processed: 0,
            signal_scratch: Vec::new(),
        }
    }

    fn trace(&mut self, ev: TraceEvent) {
        self.rec.record(self.now, ev);
    }

    /// Records one overhead sample in both the per-kind sample report and
    /// the histogram metrics.
    fn sample(&mut self, kind: OverheadKind, value: Span) {
        self.overheads.push(kind, value);
        self.metrics.record_overhead(kind, value);
    }

    fn run(&mut self) {
        if self.run.jobs == 0 {
            return;
        }
        // One decision event per task records where the assignment policy
        // placed its optional parts (paper Fig. 8). Guarded: the label is a
        // formatted string, not worth building with tracing off.
        if self.rec.enabled() {
            let topology = *self.cfg.topology();
            let policy = self.cfg.policy();
            for (idx, t) in self.tasks.iter().enumerate() {
                let np = t.optional.len();
                if np == 0 {
                    continue;
                }
                let ev = TraceEvent::PolicyDecision {
                    task: TaskId(idx as u32),
                    policy: policy.label(),
                    parts: np as u32,
                    distinct_cores: policy.distinct_cores(&topology, np),
                };
                self.rec.record(Time::ZERO, ev);
            }
        }
        for t in 0..self.tasks.len() {
            self.events.push(
                Time::ZERO,
                Event::Release {
                    task: t,
                    retried: false,
                },
            );
        }
        // Planned CPU stall windows enter the same event queue as everything
        // else, so a faulted run replays exactly like a healthy one.
        for stall in self.run.fault_plan.stalls() {
            let hw = stall.hw as usize;
            if hw >= self.cpus.len() {
                continue;
            }
            self.events.push(
                stall.at,
                Event::StallStart {
                    hw,
                    duration: stall.duration,
                },
            );
            self.events
                .push(stall.at + stall.duration, Event::StallEnd { hw });
        }
        while self.live_tasks > 0 {
            let Some((at, event)) = self.events.pop() else {
                break;
            };
            debug_assert!(at >= self.now, "event time went backwards");
            self.now = at;
            self.events_processed += 1;
            match event {
                Event::Release { task, retried } => self.on_release_inner(task, retried),
                Event::Ready { work } => self.on_ready(work),
                Event::Complete { hw, gen } => self.on_complete(hw, gen),
                Event::OdExpire { task, seq } => self.on_od_expire(task, seq),
                Event::WindupReady { task, seq } => self.on_windup_ready(task, seq),
                Event::StallStart { hw, duration } => self.on_stall_start(hw, duration),
                Event::StallEnd { hw } => self.on_stall_end(hw),
            }
        }
    }

    // ----- event handlers -------------------------------------------------

    fn on_release_inner(&mut self, task: usize, retried: bool) {
        // A job may complete at the very instant of the next release; the
        // completion event is already queued ahead of us (FIFO), so requeue
        // the release once to let it land before declaring an overrun.
        if self.tasks[task].phase != JobPhase::Done && !retried {
            self.events.push(
                self.now,
                Event::Release {
                    task,
                    retried: true,
                },
            );
            return;
        }
        // Abort a job that overran into its next release (deadline missed
        // hard): finalize it so the new job starts clean.
        if self.tasks[task].jobs_done > 0 || self.tasks[task].phase != JobPhase::Done {
            if self.tasks[task].phase != JobPhase::Done {
                self.abort_job(task);
            }
            if self.tasks[task].jobs_done >= self.run.jobs {
                return;
            }
        }

        let release = self.now;
        let next_seq = self.tasks[task].jobs_done;
        let mand_factor =
            self.run
                .fault_plan
                .wcet_factor(task as u32, next_seq, FaultTarget::Mandatory);
        let timer_fault = self.run.fault_plan.timer_fault(task as u32, next_seq);
        let t = &mut self.tasks[task];
        t.release = release;
        t.seq = t.jobs_done;
        t.phase = JobPhase::Released;
        t.rt_remaining = t.mandatory.mul_f64(mand_factor);
        // Reset part states in place: after the first job this reuses the
        // Vec's capacity, so releases allocate nothing in steady state.
        t.parts.clear();
        t.parts.resize(t.optional.len(), PartState::fresh());
        t.windup_scheduled = false;
        t.in_sq = false;
        t.overran = false;
        t.shed = false;
        let seq = t.seq;
        let period = t.period;
        let od_time = t.od_time();
        let has_parts = !t.optional.is_empty();
        let jobs_done = t.jobs_done;
        let job = t.job(task);
        self.tasks[task].rt_budget = self.sup.budget(self.tasks[task].mandatory);

        self.trace(TraceEvent::JobReleased { job });
        if mand_factor != 1.0 {
            self.sup.note_wcet_fault();
            self.trace(TraceEvent::WcetFaultInjected {
                job,
                target: FaultTarget::Mandatory,
                factor: mand_factor,
            });
        }

        // Δm: wake-up latency before the mandatory thread is runnable.
        let dm = self.model.begin_mandatory();
        self.sample(OverheadKind::BeginMandatory, dm);
        self.events.push(
            release + dm,
            Event::Ready {
                work: Work {
                    task,
                    cursor: Cursor::Mandatory,
                },
            },
        );

        // The optional-deadline timer (armed per job; the handler no-ops if
        // the Table I signal-mask defect broke the timer). The fault plan
        // may delay the one-shot or lose it outright.
        if has_parts {
            match timer_fault {
                None => {
                    self.trace(TraceEvent::TimerArmed { job, at: od_time });
                    self.events.push(od_time, Event::OdExpire { task, seq });
                }
                Some(TimerFault::Delay(d)) => {
                    self.sup.note_timer_fault();
                    self.trace(TraceEvent::TimerFaultInjected {
                        job,
                        fault: TimerFault::Delay(d),
                    });
                    self.trace(TraceEvent::TimerArmed {
                        job,
                        at: od_time + d,
                    });
                    self.events.push(od_time + d, Event::OdExpire { task, seq });
                }
                Some(TimerFault::Lost) => {
                    self.sup.note_timer_fault();
                    self.trace(TraceEvent::TimerFaultInjected {
                        job,
                        fault: TimerFault::Lost,
                    });
                }
            }
        }

        // Periodic releases continue while jobs remain.
        if jobs_done + 1 < self.run.jobs {
            self.events.push(
                release + period,
                Event::Release {
                    task,
                    retried: false,
                },
            );
        }
    }

    fn on_ready(&mut self, work: Work) {
        let t = &self.tasks[work.task];
        let (hw, prio) = match work.cursor {
            Cursor::Mandatory | Cursor::Windup => (t.mandatory_hw, t.mand_prio),
            Cursor::Optional(k) => (t.placements[k as usize], t.opt_prio),
        };
        // Hot path: build the queue event only when someone is recording.
        if self.rec.enabled() {
            let job = t.job(work.task);
            self.trace(TraceEvent::Queue {
                band: QueueBand::of(prio),
                op: QueueOp::Enqueue,
                job,
                hw: Some(rtseed_model::HwThreadId(hw as u32)),
            });
        }
        self.cpus[hw].queue.enqueue(prio, work);
        self.resched(hw);
    }

    fn on_complete(&mut self, hw: usize, gen: u64) {
        let Some(running) = self.cpus[hw].running else {
            return;
        };
        if running.gen != gen {
            return; // stale completion (preempted or terminated meanwhile)
        }
        self.cpus[hw].running = None;
        let work = running.work;
        if matches!(work.cursor, Cursor::Mandatory | Cursor::Windup) {
            // Bank what actually ran. Under an armed supervisor the
            // dispatched slice was clipped to the remaining budget, so
            // demand left over here means the part hit its budget: cut it
            // (treat it as complete) instead of letting the overrun eat
            // into lower-priority parts' response times.
            let ran = self.now.saturating_elapsed_since(running.since);
            self.bank_execution(work, ran);
            if self.sup.enabled() && !self.tasks[work.task].rt_remaining.is_zero() {
                self.budget_cut(work);
            }
        }
        match work.cursor {
            Cursor::Mandatory => self.mandatory_completed(work.task),
            Cursor::Optional(k) => self.optional_completed(work.task, k),
            Cursor::Windup => self.windup_completed(work.task),
        }
        self.resched(hw);
    }

    /// A supervised real-time part reached its execution budget with
    /// demand remaining: shed the excess and escalate.
    fn budget_cut(&mut self, work: Work) {
        let task = work.task;
        let target = match work.cursor {
            Cursor::Windup => FaultTarget::Windup,
            _ => FaultTarget::Mandatory,
        };
        self.tasks[task].rt_remaining = Span::ZERO;
        self.tasks[task].overran = true;
        self.sup.note_budget_cut();
        let job = self.tasks[task].job(task);
        self.trace(TraceEvent::BudgetCut { job, target });
        let resp = self.sup.on_overrun(task, self.now);
        if resp.quarantined_task {
            self.trace(TraceEvent::TaskQuarantined { job });
        }
        if resp.entered_degraded {
            self.trace(TraceEvent::DegradedModeEntered);
        }
    }

    fn mandatory_completed(&mut self, task: usize) {
        let job = self.tasks[task].job(task);
        self.trace(TraceEvent::MandatoryCompleted { job });

        let od_time = self.tasks[task].od_time();
        let np = self.tasks[task].optional.len();
        let seq = self.tasks[task].seq;

        if np == 0 {
            // Degenerate models: no optional parts.
            if self.tasks[task].windup.is_zero() {
                // Pure Liu–Layland task: the job is complete.
                self.finish_job(task, true);
            } else {
                let at = self.now.max(od_time);
                self.tasks[task].phase = JobPhase::OptionalRunning;
                self.schedule_windup(task, seq, at);
            }
            return;
        }

        if self.now >= od_time {
            // §II-B: mandatory part overran the optional deadline — every
            // optional part is discarded and the wind-up part runs
            // immediately after the mandatory part.
            for k in 0..np {
                self.tasks[task].parts[k].outcome = Some(OptionalOutcome::Discarded);
                if self.rec.enabled() {
                    let job = self.tasks[task].job(task);
                    self.trace(TraceEvent::OptionalEnded {
                        job,
                        part: PartId(k as u32),
                        outcome: OptionalOutcome::Discarded,
                        achieved: Span::ZERO,
                    });
                }
            }
            self.tasks[task].phase = JobPhase::OptionalRunning;
            self.schedule_windup(task, seq, self.now);
            return;
        }

        if self.sup.shed_optional(task) {
            // Overload supervisor: degraded mode or task quarantine —
            // optional parts are shed (discarded unstarted), the wind-up
            // part runs right after the mandatory part. No signalling, no
            // Δb/Δs, no OD-timer interference: minimum service, maximum
            // headroom.
            self.sup.note_degraded_job();
            self.tasks[task].shed = true;
            for k in 0..np {
                self.tasks[task].parts[k].outcome = Some(OptionalOutcome::Discarded);
                if self.rec.enabled() {
                    let job = self.tasks[task].job(task);
                    self.trace(TraceEvent::OptionalEnded {
                        job,
                        part: PartId(k as u32),
                        outcome: OptionalOutcome::Discarded,
                        achieved: Span::ZERO,
                    });
                }
            }
            self.tasks[task].phase = JobPhase::OptionalRunning;
            self.schedule_windup(task, seq, self.now);
            return;
        }

        self.tasks[task].phase = JobPhase::OptionalRunning;

        // Δb: the pthread_cond_signal loop over all parallel optional
        // threads, executed sequentially by the mandatory thread. The
        // ready-time buffer is a reused scratch vector (taken out of self
        // to keep the borrow checker happy across the model calls), so the
        // signalling loop allocates nothing after the first job.
        let mut ready_times = std::mem::take(&mut self.signal_scratch);
        ready_times.clear();
        let mut cum = Span::ZERO;
        for _ in 0..np {
            cum += self.model.signal_one_optional();
            ready_times.push(self.now + cum);
        }
        self.sample(OverheadKind::BeginOptional, cum);

        // Δs: the mandatory→optional context switch; parts placed on the
        // mandatory thread's own processor additionally wait for it.
        let ds = self.model.switch_to_optional(np);
        self.sample(OverheadKind::SwitchToOptional, ds);

        let mandatory_hw = self.tasks[task].mandatory_hw;
        for (k, &base) in ready_times.iter().enumerate() {
            let at = if self.tasks[task].placements[k] == mandatory_hw {
                base + ds
            } else {
                base
            };
            self.events.push(
                at,
                Event::Ready {
                    work: Work {
                        task,
                        cursor: Cursor::Optional(k as u32),
                    },
                },
            );
        }
        self.signal_scratch = ready_times;
    }

    fn optional_completed(&mut self, task: usize, k: u32) {
        let ki = k as usize;
        let o_k = self.tasks[task].optional[ki];
        {
            let part = &mut self.tasks[task].parts[ki];
            part.executed = o_k;
            part.running_since = None;
            part.outcome = Some(OptionalOutcome::Completed);
        }
        if self.rec.enabled() {
            let job = self.tasks[task].job(task);
            self.trace(TraceEvent::OptionalEnded {
                job,
                part: PartId(k),
                outcome: OptionalOutcome::Completed,
                achieved: o_k,
            });
        }

        if self.tasks[task].parts_all_ended() && !self.tasks[task].windup_scheduled {
            // All parts completed before the optional deadline: the
            // optional-deadline timer is stopped and the task sleeps in the
            // SQ until OD, when the wind-up part is released (§IV-B).
            let job = self.tasks[task].job(task);
            self.trace(TraceEvent::TimerCancelled { job });
            let at = self.now.max(self.tasks[task].od_time());
            let seq = self.tasks[task].seq;
            self.schedule_windup(task, seq, at);
        }
    }

    fn windup_completed(&mut self, task: usize) {
        let deadline = self.tasks[task].release + self.tasks[task].deadline;
        self.finish_job(task, self.now <= deadline);
    }

    fn on_od_expire(&mut self, task: usize, seq: u64) {
        if self.tasks[task].seq != seq
            || self.tasks[task].jobs_done != seq
            || self.tasks[task].phase == JobPhase::Done
        {
            return; // stale timer from an already-finished job
        }
        if self.tasks[task].timer_broken {
            // Table I: the try-catch implementation does not restore the
            // signal mask, so "the timer interrupt of the next job does not
            // occur" — optional parts now run unchecked.
            return;
        }
        let job = self.tasks[task].job(task);
        self.trace(TraceEvent::OptionalDeadlineExpired { job });

        if self.tasks[task].phase != JobPhase::OptionalRunning {
            // Mandatory part still running: nothing to terminate — the
            // discard path triggers at mandatory completion.
            return;
        }
        if self.tasks[task].parts_all_ended() {
            return; // timer was (conceptually) cancelled by early completion
        }

        // Termination happens when the timer actually fires: `self.now` is
        // the nominal OD normally, later if the fault plan delayed the
        // one-shot (parts kept running in the meantime).
        let term_at = self.now;
        let topology = *self.cfg.topology();
        let mode = self.run.termination;

        // Terminate every un-ended part, in part order. Termination
        // handling (timer interrupt, stack restore, completion signal) is
        // serialized — the O(npᵢ) mechanism behind Fig. 13 — and hops
        // between cores cost extra under load.
        let mut handling = Span::ZERO;
        let mut max_lag = Span::ZERO;
        let mut prev_core: Option<rtseed_model::CoreId> = None;
        let np = self.tasks[task].optional.len();
        for k in 0..np {
            if self.tasks[task].parts[k].outcome.is_some() {
                continue;
            }
            let hw = self.tasks[task].placements[k];
            let core = topology.core_of(rtseed_model::HwThreadId(hw as u32));
            let cross = prev_core.is_some_and(|c| c != core);
            prev_core = Some(core);
            handling += self.model.end_one_part(cross);

            // Achieved execution: whatever ran before OD, plus (for
            // cooperative modes) the lag until the next checkpoint.
            let o_k = self.tasks[task].optional[k];
            let (achieved, lag) = {
                let part = &self.tasks[task].parts[k];
                match part.running_since {
                    Some(since) => {
                        let lag = mode
                            .termination_lag(part.started.unwrap_or(since), term_at);
                        let ran = term_at.saturating_elapsed_since(since) + lag;
                        ((part.executed + ran).min(o_k), lag)
                    }
                    None => (part.executed, Span::ZERO),
                }
            };
            max_lag = max_lag.max(lag);

            // Remove the part from its processor (running or queued).
            self.stop_work(
                hw,
                Work {
                    task,
                    cursor: Cursor::Optional(k as u32),
                },
                self.tasks[task].opt_prio,
            );

            let outcome = if achieved >= o_k {
                OptionalOutcome::Completed
            } else {
                OptionalOutcome::Terminated
            };
            {
                let part = &mut self.tasks[task].parts[k];
                part.executed = achieved;
                part.running_since = None;
                part.outcome = Some(outcome);
            }
            if self.rec.enabled() {
                let job = self.tasks[task].job(task);
                self.trace(TraceEvent::OptionalEnded {
                    job,
                    part: PartId(k as u32),
                    outcome,
                    achieved,
                });
            }
        }

        self.sample(OverheadKind::EndOptional, handling + max_lag);

        if mode.models_signal_mask_defect() {
            self.tasks[task].timer_broken = true;
        }

        let windup_at = term_at + max_lag + handling;
        self.schedule_windup(task, seq, windup_at);
    }

    fn on_windup_ready(&mut self, task: usize, seq: u64) {
        if self.tasks[task].seq != seq || self.tasks[task].phase == JobPhase::Done {
            return;
        }
        if self.tasks[task].in_sq {
            self.tasks[task].in_sq = false;
            let job = self.tasks[task].job(task);
            self.trace(TraceEvent::Queue {
                band: QueueBand::Sq,
                op: QueueOp::Remove,
                job,
                hw: None,
            });
        }
        let factor = self
            .run
            .fault_plan
            .wcet_factor(task as u32, seq, FaultTarget::Windup);
        self.tasks[task].phase = JobPhase::WindupRunning;
        self.tasks[task].rt_remaining = self.tasks[task].windup.mul_f64(factor);
        self.tasks[task].rt_budget = self.sup.budget(self.tasks[task].windup);
        let job = self.tasks[task].job(task);
        self.trace(TraceEvent::WindupStarted { job });
        if factor != 1.0 {
            self.sup.note_wcet_fault();
            self.trace(TraceEvent::WcetFaultInjected {
                job,
                target: FaultTarget::Windup,
                factor,
            });
        }
        self.on_ready(Work {
            task,
            cursor: Cursor::Windup,
        });
    }

    fn on_stall_start(&mut self, hw: usize, duration: Span) {
        self.sup.note_cpu_stall();
        self.trace(TraceEvent::CpuStallStarted {
            hw: rtseed_model::HwThreadId(hw as u32),
            duration,
        });
        self.cpus[hw].stalled += 1;
        // Whatever was running loses the processor; its banked progress is
        // kept and it resumes at the head of its priority level when the
        // stall window closes.
        if let Some(r) = self.cpus[hw].running.take() {
            let ran = self.now.saturating_elapsed_since(r.since);
            self.bank_execution(r.work, ran);
            self.cpus[hw].queue.enqueue_front(r.prio, r.work);
        }
    }

    fn on_stall_end(&mut self, hw: usize) {
        self.cpus[hw].stalled = self.cpus[hw].stalled.saturating_sub(1);
        if self.cpus[hw].stalled == 0 {
            self.resched(hw);
        }
    }

    // ----- helpers --------------------------------------------------------

    fn schedule_windup(&mut self, task: usize, seq: u64, at: Time) {
        if self.tasks[task].windup_scheduled {
            return;
        }
        self.tasks[task].windup_scheduled = true;
        if self.tasks[task].windup.is_zero() {
            // No wind-up part: the job ends once its optional side is done.
            let deadline = self.tasks[task].release + self.tasks[task].deadline;
            self.finish_job(task, at <= deadline);
            return;
        }
        if at > self.now {
            // The task sleeps in the SQ until its wind-up release (§IV-B).
            self.tasks[task].in_sq = true;
            let job = self.tasks[task].job(task);
            self.trace(TraceEvent::Queue {
                band: QueueBand::Sq,
                op: QueueOp::Enqueue,
                job,
                hw: None,
            });
        }
        self.events.push(at, Event::WindupReady { task, seq });
    }

    fn finish_job(&mut self, task: usize, deadline_met: bool) {
        let job = {
            let t = &mut self.tasks[task];
            t.phase = JobPhase::Done;
            JobId {
                task: TaskId(task as u32),
                seq: t.seq,
            }
        };
        self.trace(TraceEvent::WindupCompleted { job, deadline_met });
        let requested = self.tasks[task].requested_optional();
        let response = self
            .now
            .saturating_elapsed_since(self.tasks[task].release);
        self.metrics.record_response_time(response);
        // Stream the per-part results straight into the summary — no
        // per-job QosRecord vector on the hot path.
        let ratio = self.qos.record_job(
            self.tasks[task]
                .parts
                .iter()
                .map(|p| (p.executed, p.outcome.unwrap_or(OptionalOutcome::Discarded))),
            requested,
            deadline_met,
            self.tasks[task].shed,
        );
        self.metrics.record_qos_level(ratio);
        if self.sup.enabled() {
            if self.tasks[task].overran {
                // Already escalated at budget-cut time.
            } else if deadline_met {
                let resp = self.sup.on_clean_job(task, self.now);
                if resp.recovered {
                    self.trace(TraceEvent::DegradedModeExited);
                }
            } else {
                // A miss without a budget overrun (stall-induced, lost
                // timer, overrun into the next release) is still an
                // overload signal.
                let resp = self.sup.on_overrun(task, self.now);
                if resp.quarantined_task {
                    self.trace(TraceEvent::TaskQuarantined { job });
                }
                if resp.entered_degraded {
                    self.trace(TraceEvent::DegradedModeEntered);
                }
            }
        }
        let t = &mut self.tasks[task];
        t.jobs_done += 1;
        if t.jobs_done >= self.run.jobs {
            self.live_tasks -= 1;
        }
    }

    /// Forcibly ends a job that is still incomplete at its next release.
    fn abort_job(&mut self, task: usize) {
        let np = self.tasks[task].optional.len();
        // Scrub real-time work.
        let mand_hw = self.tasks[task].mandatory_hw;
        let mand_prio = self.tasks[task].mand_prio;
        for cursor in [Cursor::Mandatory, Cursor::Windup] {
            self.stop_work(mand_hw, Work { task, cursor }, mand_prio);
        }
        // Scrub optional work and finalize outcomes.
        for k in 0..np {
            if self.tasks[task].parts[k].outcome.is_some() {
                continue;
            }
            let hw = self.tasks[task].placements[k];
            let opt_prio = self.tasks[task].opt_prio;
            self.stop_work(
                hw,
                Work {
                    task,
                    cursor: Cursor::Optional(k as u32),
                },
                opt_prio,
            );
            let part = &mut self.tasks[task].parts[k];
            if let Some(since) = part.running_since.take() {
                part.executed += self.now.saturating_elapsed_since(since);
            }
            part.outcome = Some(if part.started.is_some() {
                OptionalOutcome::Terminated
            } else {
                OptionalOutcome::Discarded
            });
        }
        self.finish_job(task, false);
    }

    /// Stops `work` on `hw` whether it is currently running or queued.
    fn stop_work(&mut self, hw: usize, work: Work, prio: Priority) {
        let cpu = &mut self.cpus[hw];
        if cpu.running.is_some_and(|r| r.work == work) {
            let r = cpu.running.take().expect("checked");
            // Bank the execution it achieved up to now.
            let ran = self.now.saturating_elapsed_since(r.since);
            self.bank_execution(work, ran);
            self.resched(hw);
        } else if self.cpus[hw].queue.remove(prio, &work) && self.rec.enabled() {
            let job = self.tasks[work.task].job(work.task);
            self.trace(TraceEvent::Queue {
                band: QueueBand::of(prio),
                op: QueueOp::Remove,
                job,
                hw: Some(rtseed_model::HwThreadId(hw as u32)),
            });
        }
    }

    fn bank_execution(&mut self, work: Work, ran: Span) {
        let t = &mut self.tasks[work.task];
        match work.cursor {
            Cursor::Mandatory | Cursor::Windup => {
                t.rt_remaining = t.rt_remaining.saturating_sub(ran);
                t.rt_budget = t.rt_budget.saturating_sub(ran);
            }
            Cursor::Optional(k) => {
                let part = &mut t.parts[k as usize];
                part.executed += ran;
                part.running_since = None;
            }
        }
    }

    /// SCHED_FIFO dispatch for one processor: preempt if a higher-priority
    /// thread is waiting, then fill an idle processor with the best thread.
    fn resched(&mut self, hw: usize) {
        // A stalled hardware thread dispatches nothing until the window
        // closes (the stall handler already vacated it).
        if self.cpus[hw].stalled > 0 {
            return;
        }
        // Preemption check.
        if let Some(running) = self.cpus[hw].running {
            let waiting = self.cpus[hw].queue.peek_highest_priority();
            if waiting.is_some_and(|p| p > running.prio) {
                self.cpus[hw].running = None;
                let ran = self.now.saturating_elapsed_since(running.since);
                self.bank_execution(running.work, ran);
                // Preempted SCHED_FIFO threads resume at the head of their
                // level.
                self.cpus[hw]
                    .queue
                    .enqueue_front(running.prio, running.work);
            } else {
                return;
            }
        }
        // Dispatch the best waiting thread.
        let Some((prio, work)) = self.cpus[hw].queue.dequeue_highest() else {
            return;
        };
        if self.rec.enabled() {
            let job = self.tasks[work.task].job(work.task);
            self.trace(TraceEvent::Queue {
                band: QueueBand::of(prio),
                op: QueueOp::Dispatch,
                job,
                hw: Some(rtseed_model::HwThreadId(hw as u32)),
            });
        }
        let remaining = self.dispatch_bookkeeping(work);
        self.gen_counter += 1;
        let gen = self.gen_counter;
        self.cpus[hw].running = Some(Running {
            work,
            prio,
            since: self.now,
            gen,
        });
        self.events.push(self.now + remaining, Event::Complete { hw, gen });
    }

    /// Remaining execution to dispatch for a real-time part: the demand,
    /// clipped to the supervisor budget when the supervisor is armed.
    fn rt_slice(&self, task: usize) -> Span {
        let t = &self.tasks[task];
        if self.sup.enabled() {
            t.rt_remaining.min(t.rt_budget)
        } else {
            t.rt_remaining
        }
    }

    /// Updates per-part/per-phase state at dispatch; returns remaining
    /// execution.
    fn dispatch_bookkeeping(&mut self, work: Work) -> Span {
        match work.cursor {
            Cursor::Mandatory => {
                let first = self.tasks[work.task].phase == JobPhase::Released;
                if first {
                    self.tasks[work.task].phase = JobPhase::MandatoryRunning;
                    let job = self.tasks[work.task].job(work.task);
                    let hw = self.tasks[work.task].mandatory_hw;
                    let jitter = self
                        .now
                        .saturating_elapsed_since(self.tasks[work.task].release);
                    self.metrics.record_release_jitter(jitter);
                    self.trace(TraceEvent::MandatoryStarted {
                        job,
                        hw: rtseed_model::HwThreadId(hw as u32),
                    });
                }
                self.rt_slice(work.task)
            }
            Cursor::Windup => self.rt_slice(work.task),
            Cursor::Optional(k) => {
                let o_k = self.tasks[work.task].optional[k as usize];
                let now = self.now;
                let task_idx = work.task;
                let first_start = {
                    let part = &mut self.tasks[task_idx].parts[k as usize];
                    part.running_since = Some(now);
                    if part.started.is_none() {
                        part.started = Some(now);
                        true
                    } else {
                        false
                    }
                };
                if first_start && self.rec.enabled() {
                    let job = self.tasks[task_idx].job(task_idx);
                    let hw = self.tasks[task_idx].placements[k as usize];
                    self.trace(TraceEvent::OptionalStarted {
                        job,
                        part: PartId(k),
                        hw: rtseed_model::HwThreadId(hw as u32),
                    });
                }
                o_k.saturating_sub(self.tasks[task_idx].parts[k as usize].executed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AssignmentPolicy;
    use crate::supervisor::SupervisorConfig;
    use crate::termination::TerminationMode;
    use rtseed_model::{TaskId, TaskSet, TaskSpec, Topology};
    use rtseed_sim::FaultPlan;

    fn paper_set(np: usize) -> TaskSet {
        let t = TaskSpec::builder("τ1")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(250))
            .windup(Span::from_millis(250))
            .optional_parts(np, Span::from_secs(1))
            .build()
            .unwrap();
        TaskSet::new(vec![t]).unwrap()
    }

    fn executor(np: usize, policy: AssignmentPolicy, run: RunConfig) -> SimExecutor {
        let cfg =
            SystemConfig::build(paper_set(np), Topology::xeon_phi_3120a(), policy).unwrap();
        SimExecutor::new(cfg, run)
    }

    fn quick_run(np: usize, jobs: u64) -> Outcome {
        executor(
            np,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs,
                trace: crate::obs::TraceConfig::enabled(),
                ..Default::default()
            },
        )
        .run()
    }

    #[test]
    fn paper_workload_no_misses() {
        let out = quick_run(57, 10);
        assert_eq!(out.qos.jobs(), 10);
        assert_eq!(out.qos.deadline_misses(), 0);
    }

    #[test]
    fn overrunning_parts_are_terminated_not_completed() {
        // o = 1 s but only 500 ms fit between OD and the earliest start:
        // every part is terminated.
        let out = quick_run(57, 5);
        let (completed, terminated, discarded) = out.qos.outcome_totals();
        assert_eq!(completed, 0);
        assert_eq!(terminated, 57 * 5);
        assert_eq!(discarded, 0);
    }

    #[test]
    fn overhead_sample_counts() {
        let jobs = 8;
        let out = quick_run(16, jobs);
        for kind in OverheadKind::ALL {
            assert_eq!(out.overheads.count(kind), jobs as usize, "{kind:?}");
        }
    }

    #[test]
    fn qos_achieved_matches_window() {
        // Parts start right after the mandatory part (~250 ms) and are
        // terminated at OD (750 ms): achieved ≈ 500 ms each (minus
        // signalling overheads).
        let out = quick_run(8, 3);
        let per_part = out.qos.achieved_total() / (8 * 3) as u64;
        assert!(
            per_part > Span::from_millis(520) && per_part < Span::from_millis(575),
            "{per_part}"
        );
    }

    #[test]
    fn short_parts_complete_early() {
        // 50 ms optional parts easily finish inside the 500 ms window.
        let t = TaskSpec::builder("τ1")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(250))
            .windup(Span::from_millis(250))
            .optional_parts(4, Span::from_millis(50))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![t]).unwrap(),
            Topology::xeon_phi_3120a(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 5,
                ..Default::default()
            },
        )
        .run();
        let (completed, terminated, discarded) = out.qos.outcome_totals();
        assert_eq!(completed, 20);
        assert_eq!(terminated, 0);
        assert_eq!(discarded, 0);
        assert_eq!(out.qos.deadline_misses(), 0);
        assert!((out.qos.aggregate_ratio() - 1.0).abs() < 1e-9);
        // No termination happened, so no Δe samples.
        assert_eq!(out.overheads.count(OverheadKind::EndOptional), 0);
    }

    #[test]
    fn trace_contains_full_job_lifecycle() {
        let out = quick_run(4, 1);
        let events = &out.trace;
        assert_eq!(events.count(|e| matches!(e, TraceEvent::JobReleased { .. })), 1);
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::MandatoryStarted { .. })),
            1
        );
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::MandatoryCompleted { .. })),
            1
        );
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::OptionalStarted { .. })),
            4
        );
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::OptionalEnded { .. })),
            4
        );
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::WindupCompleted { .. })),
            1
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick_run(32, 5);
        let b = quick_run(32, 5);
        assert_eq!(a.qos, b.qos);
        assert_eq!(a.overheads, b.overheads);
        assert_eq!(a.trace, b.trace);
        assert!(a.faults.is_clean());
    }

    fn mandatory_fault_plan(factor: f64, jobs: rtseed_sim::JobWindow) -> FaultPlan {
        FaultPlan::new(1).with_wcet_fault(rtseed_sim::WcetFault {
            task: None,
            jobs,
            target: FaultTarget::Mandatory,
            factor,
        })
    }

    #[test]
    fn wcet_fault_without_supervisor_misses_deadlines() {
        // 5× the mandatory demand (0.75 × 250 ms × 5 = 937.5 ms) blows past
        // the optional deadline and leaves no room for the wind-up part.
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 4,
                fault_plan: mandatory_fault_plan(5.0, rtseed_sim::JobWindow::ALL),
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.deadline_misses(), 4);
        assert_eq!(out.faults.wcet_faults, 4);
        // Unsupervised: faults observed, nothing cut, nothing degraded.
        assert_eq!(out.faults.budget_cuts, 0);
        assert_eq!(out.faults.degraded_entries, 0);
    }

    #[test]
    fn supervisor_budget_cut_preserves_deadlines_under_same_fault() {
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 4,
                fault_plan: mandatory_fault_plan(5.0, rtseed_sim::JobWindow::ALL),
                supervisor: SupervisorConfig::armed(),
                trace: crate::obs::TraceConfig::enabled(),
                ..Default::default()
            },
        )
        .run();
        // Every mandatory part is cut at its declared budget, so the
        // analysed schedule holds: zero misses.
        assert_eq!(out.qos.deadline_misses(), 0);
        assert_eq!(out.faults.budget_cuts, 4);
        assert_eq!(out.faults.overruns_detected, 4);
        // Sustained overrun ⇒ degraded mode (entered at the 2nd cut) and
        // eventually quarantine (3rd consecutive overrun).
        assert_eq!(out.faults.degraded_entries, 1);
        assert_eq!(out.faults.quarantines, 1);
        assert_eq!(out.faults.jobs_degraded, 3, "jobs 1..=3 shed optional");
        assert_eq!(out.qos.degraded_jobs(), 3);
        assert!(out.faults.degraded_dwell > Span::ZERO);
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::BudgetCut { .. })),
            4
        );
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::DegradedModeEntered)),
            1
        );
    }

    #[test]
    fn supervisor_recovers_when_the_fault_clears() {
        // Fault the first two jobs only; the remaining clean jobs must
        // bring the system back to normal mode with full QoS.
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 8,
                fault_plan: mandatory_fault_plan(5.0, rtseed_sim::JobWindow::new(0, 2)),
                supervisor: SupervisorConfig::armed(),
                trace: crate::obs::TraceConfig::enabled(),
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.deadline_misses(), 0);
        assert_eq!(out.faults.degraded_entries, 1);
        assert!(out.faults.recovery_latency > Span::ZERO);
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::DegradedModeExited)),
            1
        );
        // Post-recovery jobs deliver optional QoS again.
        let (_, terminated, discarded) = out.qos.outcome_totals();
        assert!(terminated > 0, "recovered jobs run optional parts");
        assert!(discarded > 0, "degraded jobs shed optional parts");
    }

    #[test]
    fn lost_timer_fault_breaks_one_job() {
        let plan = FaultPlan::new(0).with_timer_fault(rtseed_sim::TimerFaultSpec {
            task: None,
            jobs: rtseed_sim::JobWindow::new(0, 1),
            fault: TimerFault::Lost,
        });
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 3,
                fault_plan: plan,
                ..Default::default()
            },
        )
        .run();
        // Job 0's parts (o = 1 s) run unchecked until the next release
        // aborts the job; jobs 1–2 are healthy.
        assert_eq!(out.qos.deadline_misses(), 1);
        assert_eq!(out.faults.timer_faults, 1);
    }

    #[test]
    fn delayed_timer_extends_optional_window() {
        let delayed = |d_ms| {
            executor(
                2,
                AssignmentPolicy::OneByOne,
                RunConfig {
                    jobs: 2,
                    fault_plan: FaultPlan::new(0).with_timer_fault(
                        rtseed_sim::TimerFaultSpec {
                            task: None,
                            jobs: rtseed_sim::JobWindow::ALL,
                            fault: TimerFault::Delay(Span::from_millis(d_ms)),
                        },
                    ),
                    ..Default::default()
                },
            )
            .run()
        };
        let on_time = quick_run(2, 2);
        let late = delayed(30);
        // Parts keep executing during the latency spike...
        assert!(late.qos.achieved_total() > on_time.qos.achieved_total());
        // ...and a 30 ms spike fits inside the wind-up slack
        // (1000 − 750 − 187.5 ≈ 62 ms), so deadlines still hold.
        assert_eq!(late.qos.deadline_misses(), 0);
        assert_eq!(late.faults.timer_faults, 2);
        // A spike larger than the slack pushes the wind-up past the
        // deadline.
        assert_eq!(delayed(100).qos.deadline_misses(), 2);
    }

    #[test]
    fn cpu_stall_starves_the_pinned_mandatory_thread() {
        let plan = FaultPlan::new(0).with_cpu_stall(rtseed_sim::CpuStall {
            hw: 0,
            at: Time::ZERO,
            duration: Span::from_millis(900),
        });
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 3,
                fault_plan: plan,
                trace: crate::obs::TraceConfig::enabled(),
                ..Default::default()
            },
        )
        .run();
        // Job 0 cannot start its mandatory part until 900 ms and is aborted
        // by the next release; later jobs are healthy.
        assert_eq!(out.qos.deadline_misses(), 1);
        assert_eq!(out.faults.cpu_stalls, 1);
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::CpuStallStarted { .. })),
            1
        );
    }

    #[test]
    fn faulted_run_replays_bit_identically() {
        let run = || {
            executor(
                8,
                AssignmentPolicy::OneByOne,
                RunConfig {
                    jobs: 6,
                    fault_plan: FaultPlan::new(99)
                        .with_random_overruns(rtseed_sim::RandomOverruns {
                            probability: 0.4,
                            min_factor: 2.0,
                            max_factor: 6.0,
                            target: FaultTarget::Mandatory,
                        })
                        .with_cpu_stall(rtseed_sim::CpuStall {
                            hw: 1,
                            at: Time::from_nanos(2_300_000_000),
                            duration: Span::from_millis(40),
                        }),
                    supervisor: SupervisorConfig::armed(),
                    trace: crate::obs::TraceConfig::enabled(),
                    ..Default::default()
                },
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.qos, b.qos);
        assert_eq!(a.faults, b.faults);
        assert!(!a.faults.is_clean());
    }

    #[test]
    fn zero_jobs_is_empty_run() {
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 0,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.jobs(), 0);
    }

    #[test]
    fn plain_liu_layland_task_runs() {
        let t = TaskSpec::builder("plain")
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(30))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![t]).unwrap(),
            Topology::uniprocessor(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 10,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.jobs(), 10);
        assert_eq!(out.qos.deadline_misses(), 0);
        assert!((out.qos.aggregate_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_colocated_tasks_interfere_but_meet_deadlines() {
        let mk = |name: &str, period_ms: u64| {
            TaskSpec::builder(name)
                .period(Span::from_millis(period_ms))
                .mandatory(Span::from_millis(10))
                .windup(Span::from_millis(10))
                .optional_parts(2, Span::from_millis(period_ms))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk("fast", 100), mk("slow", 400)]).unwrap();
        let cfg =
            SystemConfig::build(set, Topology::uniprocessor(), AssignmentPolicy::OneByOne)
                .unwrap();
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 8,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.jobs(), 16);
        assert_eq!(out.qos.deadline_misses(), 0);
    }

    #[test]
    fn periodic_check_delays_windup_but_gains_qos() {
        let sig = executor(
            8,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 5,
                ..Default::default()
            },
        )
        .run();
        let pc = executor(
            8,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 5,
                termination: TerminationMode::PeriodicCheck {
                    interval: Span::from_millis(40),
                },
                ..Default::default()
            },
        )
        .run();
        // The cooperative mode keeps running until the next checkpoint:
        // more achieved optional execution, larger Δe (lag included).
        assert!(pc.qos.achieved_total() > sig.qos.achieved_total());
        assert!(
            pc.overheads.mean(OverheadKind::EndOptional)
                > sig.overheads.mean(OverheadKind::EndOptional)
        );
        // With a 40 ms interval and 250 ms of wind-up slack, deadlines
        // still hold.
        assert_eq!(pc.qos.deadline_misses(), 0);
    }

    #[test]
    fn unwind_defect_breaks_later_jobs() {
        // Table I: try-catch does not restore the signal mask; after the
        // first job, optional-deadline timers never fire, parts run to
        // completion (1 s each!) and wind-up parts miss deadlines.
        let out = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 4,
                termination: TerminationMode::UnwindCatch,
                ..Default::default()
            },
        )
        .run();
        assert!(
            out.qos.deadline_misses() >= 2,
            "expected later jobs to miss deadlines, got {}",
            out.qos.deadline_misses()
        );
        // The healthy mechanism has zero misses on the same workload.
        let healthy = executor(
            4,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 4,
                termination: TerminationMode::SigjmpTimer,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(healthy.qos.deadline_misses(), 0);
    }

    #[test]
    fn mandatory_overrunning_od_discards_all_parts() {
        // m = 950 ms WCET with rt_exec_fraction = 1.0 completes exactly at
        // OD = D − w = 950 ms: no time remains, every part is discarded
        // and the wind-up part runs right after the mandatory part (§II-B).
        let t = TaskSpec::builder("late")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(950))
            .windup(Span::from_millis(50))
            .optional_parts(4, Span::from_millis(100))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![t]).unwrap(),
            Topology::xeon_phi_3120a(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        let zero_dm = rtseed_sim::Calibration {
            begin_mandatory_ns: 0,
            jitter: 0.0,
            ..rtseed_sim::Calibration::default()
        };
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 3,
                rt_exec_fraction: 1.0,
                calibration: zero_dm,
                ..Default::default()
            },
        )
        .run();
        let (completed, terminated, discarded) = out.qos.outcome_totals();
        assert_eq!(discarded, 12, "c/t = {completed}/{terminated}");
        assert_eq!(completed + terminated, 0);
        // The wind-up still fits: 950 + 50 = 1000 = D.
        assert_eq!(out.qos.deadline_misses(), 0);
        // No signalling happened, so no Δb/Δs/Δe samples.
        assert_eq!(out.overheads.count(OverheadKind::BeginOptional), 0);
        assert_eq!(out.overheads.count(OverheadKind::EndOptional), 0);
    }

    #[test]
    fn rt_parts_preempt_optional_parts_on_shared_thread() {
        // Task A (higher RM rank by insertion-order tie) shares the single
        // hw thread with task B: B's optional window is squeezed by A's
        // mandatory part and bounded by B's interference-shrunk OD.
        let a = TaskSpec::builder("a")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(200))
            .windup(Span::from_millis(200))
            .optional_parts(1, Span::from_millis(1))
            .build()
            .unwrap();
        let b = TaskSpec::builder("b")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(50))
            .windup(Span::from_millis(50))
            .optional_parts(1, Span::from_secs(1))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![a, b]).unwrap(),
            Topology::uniprocessor(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        // B's wind-up response under A's interference: R = 50 + 400 = 450,
        // so OD_B = 550 ms.
        assert_eq!(cfg.optional_deadline(TaskId(1)), Span::from_millis(550));
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 2,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(out.qos.deadline_misses(), 0);
        // Per job: A's mandatory runs 0–150 ms (0.75 × 200), B's mandatory
        // 150–187.5, B's optional then runs until OD_B = 550, minus A's
        // tiny optional part: ≈ 360 ms. Two jobs ⇒ ≈ 720 ms total.
        let achieved = out.qos.achieved_total();
        assert!(
            achieved > Span::from_millis(2 * 320) && achieved < Span::from_millis(2 * 380),
            "preempted optional window should be ≈ 360 ms/job: {achieved}"
        );
    }

    #[test]
    fn shared_hw_thread_serializes_optional_parts() {
        // 8 optional parts on a uniprocessor: all run (serialized) on the
        // single hardware thread; total achieved is bounded by the OD
        // window, far below 8 × window.
        let t = TaskSpec::builder("uni")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(100))
            .windup(Span::from_millis(100))
            .optional_parts(8, Span::from_secs(1))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![t]).unwrap(),
            Topology::uniprocessor(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 2,
                ..Default::default()
            },
        )
        .run();
        // OD = 900 ms, mandatory done ~75 ms (0.75 × 100 ms WCET):
        // ~825 ms of serialized optional execution per job.
        let per_job = out.qos.achieved_total() / 2;
        assert!(
            per_job > Span::from_millis(780) && per_job < Span::from_millis(830),
            "{per_job}"
        );
        assert_eq!(out.qos.deadline_misses(), 0);
    }
}
