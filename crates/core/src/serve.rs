//! Multi-tenant serving layer: admission-controlled sessions over the
//! shared P-RMWP [`Engine`].
//!
//! The one-shot executors answer "run this fixed task set to completion".
//! A serving middleware instead stays up while **tenants** come and go:
//! each tenant submits a task set at runtime, the [`SessionManager`] runs
//! the online RMWP admission test
//! ([`ShardedAdmission`] over
//! [`rtseed_analysis::AdmissionController`] — the
//! same response-time analysis and bin-packing heuristics as the offline
//! partitioner), and either
//!
//! * **admits** the tenant — binding its mandatory/wind-up threads to the
//!   hardware threads the admission chose, granting the optional deadlines
//!   the per-thread analysis computed, and shrinking co-located residents'
//!   ODs per the returned [`OdUpdate`]s — or
//! * **rejects** it outright, leaving the running system untouched: an
//!   overload submission is turned away by analysis, not discovered as a
//!   deadline miss.
//!
//! Departures evict the tenant's tasks (aborting any job in flight exactly
//! as a hard deadline miss would), free its utilization, and *grow* the
//! survivors' optional deadlines. The run-scoped
//! [`OverloadSupervisor`](crate::supervisor::OverloadSupervisor) keeps
//! working across tenants, so a misbehaving tenant degrades into
//! optional-part shedding rather than taking down its neighbours.
//!
//! The scheduling substrate is the *same* discrete-event mechanism as
//! [`SimExecutor`](crate::exec_sim::SimExecutor) — per-CPU SCHED_FIFO
//! ready queues, the deterministic event queue, and the calibrated
//! [`OverheadModel`] sampled in protocol order — driving the shared
//! sans-IO [`Engine`] with dynamic task arrival
//! ([`Engine::add_task`]) and departure ([`Engine::remove_task`]).
//!
//! ## Priorities across tenants
//!
//! The offline [`PriorityMap`](crate::PriorityMap) ranks a *closed* task
//! set. Tenants arrive one at a time, so the serving layer instead maps
//! each task's period onto a stable RTQ level by period magnitude
//! ([`mandatory_priority_for_period`]): shorter periods get strictly
//! higher levels, which agrees with the Rate Monotonic order the
//! admission test analyzes. Tasks whose periods fall into the same
//! power-of-two bucket share a level and serialize FIFO there — bounded
//! level inversion the test does not model, mirroring RT-Seed's own
//! finite RTQ band.
//!
//! ## Graceful degradation
//!
//! Overload is handled by *policy*, never by panic, in three layers
//! (each in its own submodule):
//!
//! * **Admission backpressure** ([`queue`]) — submissions can enter a
//!   bounded queue ([`Submission::queued`]) instead of being
//!   admission-tested on the spot; batched admission rounds retry
//!   blocked requests with exponential backoff until a per-request
//!   deadline, and distinguish *permanent* rejections (the set fits no
//!   thread even on an idle system) from *retryable* ones.
//! * **QoS shedding ladder** ([`ladder`]) — each tenant may declare a
//!   [`QosFloor`]; admission then searches placements in increasing
//!   shed severity, never deploying an optional deadline below any
//!   resident's floor, and restores shed QoS (with hysteresis) when
//!   departures free capacity.
//! * **Tenant health enforcement** ([`health`]) — per-tenant
//!   miss/overrun budgets walk a `Healthy → Degraded → Quarantined →
//!   Evicted` ladder fed by the engine's per-job signals; quarantine
//!   forcibly sheds the tenant's optional parts, eviction removes it.
//!
//! All three are configured by [`GracefulConfig`] and are off (or
//! no-ops) by default: a [`SessionManager::new`] session behaves
//! exactly as before.
//!
//! ## Admission at tenant scale
//!
//! Admission state lives in a
//! [`ShardedAdmission`] controller: the
//! per-CPU response-time fixpoints are cached and re-analysed only for
//! the CPUs a placement touches (decisions stay bit-identical to the
//! monolithic full-RTA path — see [`AdmissionConfig::full_rta`] for the
//! oracle mode), and the hardware threads are partitioned into disjoint
//! shards. When [`AdmissionConfig::parallel_rounds`] is on, a batched
//! admission round *plans* its queued requests concurrently across
//! shards (scoped threads, immutable controller) and then *commits*
//! them in FIFO order on the event loop thread, re-planning any request
//! whose speculative plan examined a shard an earlier commit touched.
//! Engine binding, tracing, and every counter stay on the
//! replay-deterministic single-threaded path, so traces are
//! byte-identical with parallelism on or off.
//!
//! ## Determinism
//!
//! A run is a pure function of the submissions (or the
//! [`ChurnPlan`]) and the [`RunConfig`]: same seed, same plan, same
//! trace — byte for byte. When a churn event and a scheduling event fall
//! on the same instant, the churn event applies first.
//!
//! # Examples
//!
//! ```
//! use rtseed::serve::{SessionManager, Submission};
//! use rtseed::{AssignmentPolicy, RunConfig};
//! use rtseed_analysis::PartitionHeuristic;
//! use rtseed_model::{Span, TaskSpec, Topology};
//!
//! let tenant_set = |name: &str| {
//!     vec![TaskSpec::builder(name)
//!         .period(Span::from_millis(100))
//!         .mandatory(Span::from_millis(10))
//!         .windup(Span::from_millis(10))
//!         .optional_parts(2, Span::from_millis(20))
//!         .build()
//!         .unwrap()]
//! };
//! let run = RunConfig::builder().jobs(3).build()?;
//! let mut mgr = SessionManager::new(
//!     Topology::quad_core_smt2(),
//!     PartitionHeuristic::WorstFitDecreasing,
//!     AssignmentPolicy::OneByOne,
//!     run,
//! );
//! mgr.submit(Submission::new("alpha", tenant_set("α")))?;
//! mgr.submit(Submission::new("beta", tenant_set("β")))?;
//! let out = mgr.run();
//! assert_eq!(out.tenants.len(), 2);
//! assert_eq!(out.outcome.qos.jobs(), 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod health;
pub mod ladder;
pub mod queue;
pub mod submission;

use std::fmt;

use rtseed_analysis::{
    AdmissionError, EvictPlan, OdUpdate, PartitionHeuristic, ShardPlan, ShardedAdmission,
    TaskKey,
};
use rtseed_model::{
    HwThreadId, Priority, QosFloor, QosSummary, SessionId, Span, TaskId, TaskSpec, TenantHealth,
    TenantId, TenantState, Time, Topology,
};
use rtseed_sim::{ChurnAction, ChurnPlan, EventQueue, FifoReadyQueue, OverheadKind, OverheadModel};

use crate::engine::{AfterMandatory, Cursor, Engine, JobSignal, OdAction, TaskParams, WindupCommand};
use crate::executor::{Outcome, RunConfig};
use crate::obs::{QueueBand, QueueOp, Trace, TraceEvent};
use crate::policy::AssignmentPolicy;

pub use health::HealthPolicy;
pub use queue::{QueueConfig, Rejected};
pub use submission::Submission;

use health::HealthTracker;
use ladder::{LadderEntry, PendingRestore};
use queue::{QueuedRequest, SubmitQueue};

/// Why a serving-layer request failed. Every failure the serving layer
/// can reach from user input is a typed variant here — none of them
/// panic the middleware, and callers match exactly **one** level (the
/// admission-analysis failures are folded in as first-class variants
/// rather than nested behind a wrapper).
///
/// # Retryable vs. permanent
///
/// [`ServeError::Unschedulable`] is the only *possibly retryable*
/// failure: it reports the task set infeasible **against the current
/// residents**, so a later departure may make the same submission
/// admissible — which is exactly what a [`Submission::queued`] request
/// does (retry with backoff while the set still
/// fits an idle machine). Every other variant is **permanent** for the
/// request that produced it: [`ServeError::EmptySubmission`] and
/// [`ServeError::NoOptionalBand`] are malformed input,
/// [`ServeError::QueueFull`] rejects the submission without creating a
/// tenant (resubmit later is a *new* request), and
/// [`ServeError::UnknownTenant`] / [`ServeError::NotResident`] describe
/// departure targets, not admissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The online RMWP admission test rejected the task set (at every
    /// ladder stage the tenant's floors allow): the `index`-th task fits
    /// on no hardware thread against the current residents.
    Unschedulable {
        /// Index into the submitted task set.
        index: usize,
    },
    /// The submission contained no tasks.
    EmptySubmission,
    /// The bounded submit queue is at capacity; the submission was
    /// refused without creating a tenant record.
    QueueFull {
        /// The configured [`QueueConfig::capacity`].
        capacity: usize,
    },
    /// A task's period maps to an RTQ level with no NRTQ counterpart,
    /// so its optional parts could not be given a priority. (The level
    /// mapping clamps into the RTQ band, so this is unreachable for
    /// any [`TaskSpec`] the builder accepts — kept as a typed error
    /// rather than a panic path.)
    NoOptionalBand {
        /// The offending RTQ level.
        level: u8,
    },
    /// [`SessionManager::depart`] named a tenant that was never
    /// submitted under that name.
    UnknownTenant,
    /// [`SessionManager::depart`] named a tenant that exists but is not
    /// currently admitted (already departed, evicted, rejected, or
    /// still queued).
    NotResident {
        /// The tenant's actual lifecycle state.
        state: TenantState,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Unschedulable { index } => write!(
                f,
                "admission failed: submitted task #{index} is not RMWP-schedulable on any hardware thread"
            ),
            ServeError::EmptySubmission => {
                write!(f, "admission failed: submission contains no tasks")
            }
            ServeError::QueueFull { capacity } => {
                write!(f, "submit queue full (capacity {capacity})")
            }
            ServeError::NoOptionalBand { level } => {
                write!(f, "RTQ level {level} has no NRTQ counterpart")
            }
            ServeError::UnknownTenant => write!(f, "no tenant with that name was ever submitted"),
            ServeError::NotResident { state } => {
                write!(f, "tenant is not currently admitted (state: {state})")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<AdmissionError> for ServeError {
    fn from(e: AdmissionError) -> ServeError {
        match e {
            AdmissionError::Unschedulable { index } => ServeError::Unschedulable { index },
            AdmissionError::EmptySubmission => ServeError::EmptySubmission,
            // `AdmissionError` is non_exhaustive; any future analysis
            // failure is still an admission rejection of the whole set.
            _ => ServeError::Unschedulable { index: 0 },
        }
    }
}

/// How the admission controller is organized for scale (see the
/// [module docs](self), "Admission at tenant scale"). The default is
/// conservative: automatic sharding, sequential rounds, incremental
/// RTA — decisions and traces are identical across every setting, only
/// the cost profile changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Number of disjoint CPU-set shards the hardware threads are
    /// split into. `0` (the default) picks automatically — one shard
    /// per 32 hardware threads.
    pub shards: u32,
    /// Plan batched admission rounds concurrently across shards
    /// (commits stay sequential and deterministic). Off by default.
    pub parallel_rounds: bool,
    /// Run the monolithic full-RTA oracle (every decision re-analyzes
    /// every non-empty CPU) instead of the incremental per-CPU cache.
    /// Decisions are bit-identical either way; this is the
    /// differential-testing and benchmarking baseline. Off by default.
    pub full_rta: bool,
}

/// Configuration of the graceful-degradation machinery. The default is
/// fully benign: an unbounded-feeling queue that is never used unless
/// a [`Submission::queued`] request arrives, no floors (the ladder
/// converges to plain admission), immediate restores, and health
/// enforcement off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GracefulConfig {
    /// Bounded submit-queue tuning (admission backpressure).
    pub queue: QueueConfig,
    /// Number of shedding stages the admission ladder searches between
    /// "no shed" and "down to the floors" (≥ 1; default 4).
    pub ladder_stages: u32,
    /// How long a capacity-freeing departure must "stick" before shed
    /// QoS is restored. `Span::ZERO` (the default) restores
    /// immediately, preserving the pre-ladder behaviour.
    pub restore_hysteresis: Span,
    /// Tenant health enforcement budgets (disabled by default).
    pub health: HealthPolicy,
    /// Admission sharding/caching/parallelism (scale controls).
    pub admission: AdmissionConfig,
}

impl Default for GracefulConfig {
    fn default() -> GracefulConfig {
        GracefulConfig {
            queue: QueueConfig::default(),
            ladder_stages: 4,
            restore_hysteresis: Span::ZERO,
            health: HealthPolicy::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// The stable RTQ level for a task of the given period
/// ([`Priority::for_period`]).
///
/// The mapping is monotone but many-to-one: distinct periods inside the
/// same power-of-two bucket share a level, and SCHED_FIFO cannot order
/// tasks within a level. The admission test analyzes against these
/// *deployed* levels (charging same-level tasks with each other's
/// interference), so runtime dispatch never sees interference the
/// analysis did not account for.
pub fn mandatory_priority_for_period(period: Span) -> Priority {
    Priority::for_period(period)
}

// ----- discrete-event mechanism (mirrors exec_sim) ------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Work {
    task: usize,
    cursor: Cursor,
}

#[derive(Debug)]
enum Event {
    Release { task: usize, retried: bool },
    Ready { work: Work },
    Complete { hw: usize, gen: u64 },
    OdExpire { task: usize, seq: u64 },
    WindupReady { task: usize, seq: u64 },
    StallStart { hw: usize, duration: Span },
    StallEnd { hw: usize },
    /// Batched admission sweep over the submit queue.
    AdmissionRound,
    /// Hysteresis check: deploy any pending OD restores that came due.
    RestoreCheck,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    work: Work,
    prio: Priority,
    since: Time,
    gen: u64,
}

#[derive(Debug, Default)]
struct Cpu {
    queue: FifoReadyQueue<Work>,
    running: Option<Running>,
    stalled: u32,
}

/// One admitted task: the admission controller's handle, the engine
/// slot it was bound to, and its QoS-ladder bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Binding {
    key: TaskKey,
    engine_idx: usize,
    tenant: TenantId,
    /// Contractual floor (absolute OD) fixed at admission.
    floor: Span,
    /// The OD currently programmed into the engine. Invariant:
    /// `floor <= deployed <= analyzed` (shrinks apply immediately,
    /// growths wait out the restore hysteresis).
    deployed: Span,
    /// The OD the latest analysis grants this task.
    analyzed: Span,
}

#[derive(Debug)]
struct Tenant {
    id: TenantId,
    session: SessionId,
    name: String,
    state: TenantState,
    tasks: Vec<Binding>,
}

/// A validated-but-uncommitted admission: the shard-annotated placement
/// plan plus the pre-validated priorities. Produced by
/// [`SessionManager::plan_tenant`] (possibly on a worker thread),
/// applied by [`SessionManager::commit_tenant`] on the event-loop
/// thread.
#[derive(Debug)]
struct PlannedAdmission {
    splan: ShardPlan,
    /// Per task: (mandatory band priority, optional counterpart).
    prios: Vec<(Priority, Priority)>,
    /// An earlier ladder stage failed before the successful one: the
    /// failed search's examined bins are unrecorded, so this plan may
    /// only be reused speculatively when **no** prior commit in the
    /// round touched the controller.
    conservative: bool,
}

/// Counters of serving-layer decisions over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Tenant submissions received ([`SessionManager::submit`] calls plus
    /// churn arrivals).
    pub submissions: u64,
    /// Submissions that passed the admission test.
    pub admissions: u64,
    /// Submissions turned away by the admission test.
    pub rejections: u64,
    /// Admitted tenants that departed (voluntarily or via churn).
    pub departures: u64,
    /// Optional-deadline updates applied to running tasks (shrinks on
    /// admission, growths on departure).
    pub od_updates_applied: u64,
    /// Churn-plan events replayed.
    pub churn_events: u64,
    /// Submissions accepted into the bounded submit queue.
    pub enqueued: u64,
    /// Submissions refused because the queue was at capacity.
    pub queue_rejected_full: u64,
    /// Retryable admission failures that re-queued with backoff.
    pub retries: u64,
    /// Queued submissions dropped (deadline passed or retries
    /// exhausted).
    pub expired: u64,
    /// Tenants removed by health enforcement.
    pub evictions: u64,
    /// Resident optional deadlines shrunk by the shedding ladder.
    pub qos_sheds: u64,
    /// Shed optional deadlines restored after departures.
    pub qos_restores: u64,
    /// Per-CPU response-time reads served from the incremental RTA
    /// cache (see [`AdmissionConfig`]; always 0 in full-RTA mode).
    pub rta_cache_hits: u64,
    /// Per-CPU response-time fixpoint computations performed.
    pub rta_cache_misses: u64,
    /// Admissions whose placement fell outside the shard the heuristic
    /// ranked first (cross-shard fallback).
    pub cross_shard_admissions: u64,
}

/// Per-tenant results of a serving run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// The tenant's identity (submission order).
    pub tenant: TenantId,
    /// The session under which it was served.
    pub session: SessionId,
    /// The name it submitted under.
    pub name: String,
    /// Terminal lifecycle state (`Rejected`, `Departed`, or — for tenants
    /// still resident at the end of the run — `Admitted`).
    pub state: TenantState,
    /// Engine task ids bound to this tenant (empty if rejected); keys for
    /// scoping the shared trace via [`ServeOutcome::tenant_trace`].
    pub tasks: Vec<TaskId>,
    /// QoS accounting over this tenant's jobs only.
    pub qos: QosSummary,
}

/// Everything a serving run produced: the aggregate [`Outcome`] (same
/// shape as the one-shot executors), per-tenant outcomes, and the
/// admission/churn counters.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Aggregate measurements across all tenants.
    pub outcome: Outcome,
    /// Per-tenant outcomes in submission order (including rejected
    /// tenants, with empty QoS).
    pub tenants: Vec<TenantOutcome>,
    /// Serving-layer decision counters.
    pub counters: ServeCounters,
}

impl ServeOutcome {
    /// The outcome of the most recent tenant submitted under `name`.
    pub fn tenant(&self, name: &str) -> Option<&TenantOutcome> {
        self.tenants.iter().rev().find(|t| t.name == name)
    }

    /// The slice of the shared trace concerning `tenant`: its lifecycle
    /// events plus every event of its tasks' jobs. Empty when tracing was
    /// disabled for the run.
    pub fn tenant_trace(&self, tenant: TenantId) -> Trace {
        let tasks: &[TaskId] = self
            .tenants
            .iter()
            .find(|t| t.tenant == tenant)
            .map(|t| t.tasks.as_slice())
            .unwrap_or(&[]);
        let mut out = Trace::new();
        for (at, ev) in self.outcome.trace.events() {
            let ours = match ev {
                TraceEvent::TenantAdmitted { tenant: t, .. }
                | TraceEvent::TenantRejected { tenant: t }
                | TraceEvent::TenantDeparted { tenant: t }
                | TraceEvent::TenantDepartIgnored { tenant: t }
                | TraceEvent::TenantEvicted { tenant: t }
                | TraceEvent::TenantHealthChanged { tenant: t, .. }
                | TraceEvent::QosShed { tenant: t, .. }
                | TraceEvent::QosRestored { tenant: t, .. }
                | TraceEvent::SubmissionQueued { tenant: t }
                | TraceEvent::SubmissionRetried { tenant: t, .. }
                | TraceEvent::SubmissionExpired { tenant: t } => *t == tenant,
                TraceEvent::PolicyDecision { task, .. } => tasks.contains(task),
                _ => ev.job().is_some_and(|j| tasks.contains(&j.task)),
            };
            if ours {
                out.record(*at, ev.clone());
            }
        }
        out
    }
}

/// The serving layer: accepts tenant task-set submissions at runtime,
/// admission-tests them, and drives the admitted population through the
/// shared P-RMWP engine on the discrete-event substrate (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct SessionManager {
    topology: Topology,
    policy: AssignmentPolicy,
    run: RunConfig,
    now: Time,
    events: EventQueue<Event>,
    cpus: Vec<Cpu>,
    eng: Engine,
    model: OverheadModel,
    ctl: ShardedAdmission,
    gen_counter: u64,
    events_processed: u64,
    signal_scratch: Vec<Time>,
    tenants: Vec<Tenant>,
    /// Live (admitted, not departed) task bindings: admission key →
    /// engine slot, for applying OD deltas.
    bindings: Vec<Binding>,
    counters: ServeCounters,
    graceful: GracefulConfig,
    queue: SubmitQueue,
    health: HealthTracker,
    pending_restores: Vec<PendingRestore>,
    health_scratch: Vec<JobSignal>,
}

impl SessionManager {
    /// Creates an empty serving session on `topology`: no tenants, no
    /// tasks. Admission packs mandatory threads with `heuristic`; optional
    /// parts are placed by `policy`; `run` supplies the run-scoped knobs
    /// (per-task job quota, seed, calibration, fault plan, supervisor,
    /// trace sink).
    pub fn new(
        topology: Topology,
        heuristic: PartitionHeuristic,
        policy: AssignmentPolicy,
        run: RunConfig,
    ) -> SessionManager {
        SessionManager::with_graceful(topology, heuristic, policy, run, GracefulConfig::default())
    }

    /// Like [`SessionManager::new`] with explicit graceful-degradation
    /// configuration: submit-queue tuning, shedding-ladder depth,
    /// restore hysteresis, and tenant health enforcement.
    pub fn with_graceful(
        topology: Topology,
        heuristic: PartitionHeuristic,
        policy: AssignmentPolicy,
        run: RunConfig,
        graceful: GracefulConfig,
    ) -> SessionManager {
        let cpus = (0..topology.hw_threads()).map(|_| Cpu::default()).collect();
        let mut eng = Engine::empty(topology, &run);
        eng.collect_job_signals(graceful.health.enabled);
        let model = OverheadModel::new(run.calibration, topology, run.load, run.seed);
        let mut events = EventQueue::new();
        // Planned CPU stall windows enter the queue up front, exactly as in
        // the one-shot simulator.
        for stall in run.fault_plan.stalls() {
            let hw = stall.hw as usize;
            if hw >= topology.hw_threads() as usize {
                continue;
            }
            events.push(
                stall.at,
                Event::StallStart {
                    hw,
                    duration: stall.duration,
                },
            );
            events.push(stall.at + stall.duration, Event::StallEnd { hw });
        }
        SessionManager {
            topology,
            policy,
            ctl: ShardedAdmission::new(
                topology.hw_threads() as usize,
                heuristic,
                graceful.admission.shards,
                graceful.admission.full_rta,
            ),
            run,
            now: Time::ZERO,
            events,
            cpus,
            eng,
            model,
            gen_counter: 0,
            events_processed: 0,
            signal_scratch: Vec::new(),
            tenants: Vec::new(),
            bindings: Vec::new(),
            counters: ServeCounters::default(),
            graceful,
            queue: SubmitQueue::default(),
            health: HealthTracker::default(),
            pending_restores: Vec::new(),
            health_scratch: Vec::new(),
        }
    }

    /// The current simulated time (advances during [`SessionManager::run`]).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of tenants currently admitted (not departed).
    pub fn admitted_tenants(&self) -> usize {
        self.tenants
            .iter()
            .filter(|t| t.state == TenantState::Admitted)
            .count()
    }

    /// Total mandatory+wind-up utilization of the resident tasks.
    pub fn total_utilization(&self) -> f64 {
        self.ctl.total_utilization()
    }

    /// The lifecycle state of the most recent tenant submitted under
    /// `name`, if any.
    pub fn state_of(&self, name: &str) -> Option<TenantState> {
        self.tenants
            .iter()
            .rev()
            .find(|t| t.name == name)
            .map(|t| t.state)
    }

    /// The decision counters so far (including the admission
    /// controller's live RTA cache hit/miss counts).
    pub fn counters(&self) -> ServeCounters {
        let mut c = self.counters;
        let s = self.ctl.cache_stats();
        c.rta_cache_hits = s.hits;
        c.rta_cache_misses = s.misses;
        c
    }

    /// Number of submissions waiting in the submit queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The health rung of the most recent tenant submitted under
    /// `name` (always `Healthy` when enforcement is disabled).
    pub fn health_of(&self, name: &str) -> Option<TenantHealth> {
        self.tenants
            .iter()
            .rev()
            .find(|t| t.name == name)
            .map(|t| self.health.health_of(t.id))
    }

    /// The deployed (currently programmed) optional deadlines of the
    /// most recent tenant submitted under `name`, in task order. Empty
    /// when the tenant is not resident.
    pub fn deployed_ods(&self, name: &str) -> Vec<Span> {
        let Some(t) = self.tenants.iter().rev().find(|t| t.name == name) else {
            return Vec::new();
        };
        if t.state != TenantState::Admitted {
            return Vec::new();
        }
        t.tasks
            .iter()
            .filter_map(|b| {
                self.bindings
                    .iter()
                    .find(|live| live.key == b.key)
                    .map(|live| live.deployed)
            })
            .collect()
    }

    /// Submits a [`Submission`] — the single entry point for every way
    /// work enters the serving layer.
    ///
    /// A plain `Submission::new(name, tasks)` is admission-tested
    /// synchronously at the current instant: on admission the tenant's
    /// tasks release their first jobs immediately and co-located
    /// residents' optional deadlines shrink per the analysis (taking
    /// effect at their next release); on rejection the running system
    /// is untouched — the tenant is recorded as
    /// [`TenantState::Rejected`] and appears in the final
    /// [`ServeOutcome::tenants`] with empty QoS. A
    /// [`Submission::floor`] declares the tenant's SLA floor for the
    /// shedding ladder (see [`ladder`]).
    ///
    /// A [`Submission::queued`] request instead enters the bounded
    /// submit queue and is decided in batched admission rounds during
    /// the run: a *retryable* failure (blocked only by current
    /// residents) backs off exponentially and retries until the queue
    /// timeout (measured from now) expires or
    /// [`QueueConfig::max_retries`] attempts are spent; a *permanent*
    /// failure rejects immediately. The tenant stays
    /// [`TenantState::Pending`] until a round decides it. See
    /// [`queue`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Unschedulable`] when some submitted task fits on
    /// no hardware thread under the exact RMWP test (at any ladder
    /// stage), [`ServeError::EmptySubmission`] for an empty task set,
    /// or — for queued submissions only — [`ServeError::QueueFull`]
    /// when the queue is at capacity (no tenant record is created).
    pub fn submit(&mut self, submission: Submission) -> Result<TenantId, ServeError> {
        let Submission {
            name,
            tasks,
            floor,
            queued,
        } = submission;
        match queued {
            Some(timeout) => self.submit_queued(name, tasks, floor, timeout),
            None => self.submit_now(name, &tasks, floor),
        }
    }

    /// Mints the next tenant/session id pair and records the tenant in
    /// state [`TenantState::Pending`]. The **only** place ids are
    /// derived, so no admission path (sharded or not) can ever mint
    /// duplicates.
    fn mint_tenant(&mut self, name: String) -> TenantId {
        let tenant = TenantId(self.tenants.len() as u32);
        let session = SessionId(tenant.0 as u64);
        self.tenants.push(Tenant {
            id: tenant,
            session,
            name,
            state: TenantState::Pending,
            tasks: Vec::new(),
        });
        tenant
    }

    /// Synchronous admission path (plain submissions and churn
    /// arrivals).
    fn submit_now(
        &mut self,
        name: String,
        tasks: &[TaskSpec],
        floor: QosFloor,
    ) -> Result<TenantId, ServeError> {
        self.counters.submissions += 1;
        let tenant = self.mint_tenant(name);
        match self.admit_tenant(tenant, tasks, floor) {
            Ok(()) => Ok(tenant),
            Err(e) => {
                self.reject_tenant(tenant);
                Err(e)
            }
        }
    }

    /// Queued admission path ([`Submission::queued`] and churn submit
    /// events).
    fn submit_queued(
        &mut self,
        name: String,
        tasks: Vec<TaskSpec>,
        floor: QosFloor,
        timeout: Span,
    ) -> Result<TenantId, ServeError> {
        if self.queue.len() >= self.graceful.queue.capacity {
            self.counters.queue_rejected_full += 1;
            return Err(ServeError::QueueFull {
                capacity: self.graceful.queue.capacity,
            });
        }
        self.counters.submissions += 1;
        self.counters.enqueued += 1;
        let tenant = self.mint_tenant(name);
        let req = QueuedRequest {
            tenant,
            tasks,
            floor,
            deadline: self.now.checked_add(timeout).unwrap_or(Time::MAX),
            attempts: 0,
            not_before: self.now,
        };
        self.queue.push(&self.graceful.queue, req);
        self.eng.trace(self.now, TraceEvent::SubmissionQueued { tenant });
        self.events.push(self.now, Event::AdmissionRound);
        Ok(tenant)
    }

    /// Compatibility wrapper for the pre-[`Submission`] surface.
    #[deprecated(since = "0.1.0", note = "use `submit(Submission::new(name, tasks))`")]
    pub fn submit_tasks(
        &mut self,
        name: impl Into<String>,
        tasks: &[TaskSpec],
    ) -> Result<TenantId, ServeError> {
        self.submit(Submission::new(name, tasks))
    }

    /// Compatibility wrapper for the pre-[`Submission`] surface.
    #[deprecated(
        since = "0.1.0",
        note = "use `submit(Submission::new(name, tasks).floor(floor))`"
    )]
    pub fn submit_with_floor(
        &mut self,
        name: impl Into<String>,
        tasks: &[TaskSpec],
        floor: QosFloor,
    ) -> Result<TenantId, ServeError> {
        self.submit(Submission::new(name, tasks).floor(floor))
    }

    /// Compatibility wrapper for the pre-[`Submission`] surface.
    #[deprecated(
        since = "0.1.0",
        note = "use `submit(Submission::new(name, tasks).floor(floor).queued(timeout))`"
    )]
    pub fn enqueue(
        &mut self,
        name: impl Into<String>,
        tasks: &[TaskSpec],
        floor: QosFloor,
        timeout: Span,
    ) -> Result<TenantId, ServeError> {
        self.submit(Submission::new(name, tasks).floor(floor).queued(timeout))
    }

    /// Runs the staged-ladder admission for `tenant` and, on success,
    /// commits: binds tasks to the engine, applies OD updates (shedding
    /// residents no further than their floors), and marks the tenant
    /// admitted. On failure the running system is untouched.
    fn admit_tenant(
        &mut self,
        tenant: TenantId,
        tasks: &[TaskSpec],
        floor: QosFloor,
    ) -> Result<(), ServeError> {
        let planned = Self::plan_tenant(&self.ctl, &self.bindings, &self.graceful, tasks, floor)?;
        self.commit_tenant(tenant, tasks, floor, &planned);
        Ok(())
    }

    /// The read-only half of admission: priority validation plus the
    /// staged-ladder placement search, against an immutable controller.
    /// An associated fn (no `&self`) so parallel admission rounds can
    /// run it from scoped worker threads.
    fn plan_tenant(
        ctl: &ShardedAdmission,
        bindings: &[Binding],
        graceful: &GracefulConfig,
        tasks: &[TaskSpec],
        floor: QosFloor,
    ) -> Result<PlannedAdmission, ServeError> {
        // Validate priorities up front so the commit below cannot hit a
        // panic path halfway through.
        let mut prios = Vec::with_capacity(tasks.len());
        for spec in tasks {
            let mand_prio = mandatory_priority_for_period(spec.period());
            let opt_prio =
                mand_prio
                    .optional_counterpart()
                    .map_err(|_| ServeError::NoOptionalBand {
                        level: mand_prio.level(),
                    })?;
            prios.push((mand_prio, opt_prio));
        }
        // Staged placement search: stage 0 forbids shedding any
        // resident below its deployed OD; the final stage allows
        // shedding down to the floors. First feasible stage wins, so
        // admission sheds the least it can.
        let floors = vec![floor; tasks.len()];
        let stages = graceful.ladder_stages.max(1);
        let entries: Vec<LadderEntry> = bindings
            .iter()
            .map(|b| LadderEntry {
                key: b.key,
                deployed: b.deployed,
                floor: b.floor,
            })
            .collect();
        let mut last_err = AdmissionError::EmptySubmission;
        // A plan is `conservative` when an earlier ladder stage failed
        // before this one succeeded: the failed search examined a bin
        // set the plan does not record, so speculative reuse after a
        // conflicting commit would be unsound (see on_admission_round).
        let mut conservative = false;
        for stage in 0..=stages {
            let bounds = ladder::stage_bounds(&entries, stage, stages);
            match ctl.plan(tasks, &floors, &bounds) {
                Ok(splan) => {
                    return Ok(PlannedAdmission {
                        splan,
                        prios,
                        conservative,
                    })
                }
                Err(e) => {
                    last_err = e;
                    conservative = true;
                }
            }
        }
        Err(last_err.into())
    }

    /// The mutating half of admission: commits a planned placement into
    /// the controller and binds the tenant's tasks to the engine.
    /// Always runs on the event-loop thread, so engine binding and
    /// tracing stay replay-deterministic.
    fn commit_tenant(
        &mut self,
        tenant: TenantId,
        tasks: &[TaskSpec],
        floor: QosFloor,
        planned: &PlannedAdmission,
    ) {
        let floors = vec![floor; tasks.len()];
        let admission = self.ctl.commit(tasks, &floors, &planned.splan);
        let prios = &planned.prios;
        if planned.splan.is_cross_shard() {
            self.counters.cross_shard_admissions += 1;
        }
        // Transient soundness: a resident whose OD shrinks keeps the old
        // (longer) OD until its next release, and that old bound was
        // analysed *without* the newcomer's interference. Defer the
        // newcomer's first releases past every such in-flight job's
        // absolute deadline, so no old-OD wind-up window ever faces
        // demand it was not analysed against.
        let mut start_at = self.now;
        for u in &admission.od_updates {
            let Some(b) = self.bindings.iter().find(|b| b.key == u.key) else {
                continue;
            };
            if u.optional_deadline < b.deployed && self.eng.job_in_flight(b.engine_idx) {
                start_at = start_at.max(self.eng.current_deadline(b.engine_idx));
            }
        }
        self.counters.admissions += 1;
        self.eng.trace(
            self.now,
            TraceEvent::TenantAdmitted {
                tenant,
                tasks: tasks.len() as u32,
            },
        );
        let mut bound = Vec::with_capacity(tasks.len());
        for ((spec, admitted), &(mand_prio, opt_prio)) in
            tasks.iter().zip(&admission.tasks).zip(prios)
        {
            let np = spec.optional_count();
            let placements: Vec<usize> = self
                .policy
                .placements(&self.topology, np)
                .iter()
                .map(|h| h.index())
                .collect();
            let id = TaskId(self.eng.task_count() as u32);
            let idx = self.eng.add_task(TaskParams {
                id,
                tenant: Some(tenant),
                mandatory_hw: admitted.hw_thread.index(),
                placements,
                mand_prio,
                opt_prio,
                period: spec.period(),
                deadline: spec.deadline(),
                mandatory: spec.mandatory(),
                windup: spec.windup(),
                optional: spec.optional_parts().to_vec(),
                od: admitted.optional_deadline,
            });
            if np > 0 && self.eng.tracing() {
                self.eng.trace(
                    self.now,
                    TraceEvent::PolicyDecision {
                        task: id,
                        policy: self.policy.label(),
                        parts: np as u32,
                        distinct_cores: self.policy.distinct_cores(&self.topology, np),
                    },
                );
            }
            bound.push(Binding {
                key: admitted.key,
                engine_idx: idx,
                tenant,
                floor: floor.floor_od(admitted.optional_deadline),
                deployed: admitted.optional_deadline,
                analyzed: admitted.optional_deadline,
            });
            if self.run.jobs > 0 {
                self.events.push(
                    start_at,
                    Event::Release {
                        task: idx,
                        retried: false,
                    },
                );
            }
        }
        self.apply_od_updates(&admission.od_updates);
        self.bindings.extend(bound.iter().copied());
        let t = &mut self.tenants[tenant.0 as usize];
        t.state = TenantState::Admitted;
        t.tasks = bound;
    }

    /// Records a failed submission: rejection counter, trace event,
    /// terminal `Rejected` state.
    fn reject_tenant(&mut self, tenant: TenantId) {
        self.counters.rejections += 1;
        self.eng.trace(self.now, TraceEvent::TenantRejected { tenant });
        self.tenants[tenant.0 as usize].state = TenantState::Rejected;
    }

    /// Departs the most recent admitted tenant named `name`: aborts its
    /// in-flight jobs (exactly as a hard deadline miss would), removes its
    /// tasks from scheduling, frees its utilization, and grows the
    /// survivors' optional deadlines (possibly deferred by the restore
    /// hysteresis).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when no tenant was ever submitted
    /// under `name`; [`ServeError::NotResident`] when the name is known
    /// but its most recent tenant is not currently admitted (already
    /// departed, evicted, rejected, or still queued). The latter also
    /// records a [`TraceEvent::TenantDepartIgnored`] no-op event so
    /// operator tooling can audit the attempt.
    pub fn depart(&mut self, name: &str) -> Result<TenantId, ServeError> {
        if let Some(pos) = self
            .tenants
            .iter()
            .rposition(|t| t.name == name && t.state == TenantState::Admitted)
        {
            let tenant = self.tenants[pos].id;
            self.remove_tenant(pos, TenantState::Departed);
            self.counters.departures += 1;
            return Ok(tenant);
        }
        let Some(pos) = self.tenants.iter().rposition(|t| t.name == name) else {
            return Err(ServeError::UnknownTenant);
        };
        let tenant = self.tenants[pos].id;
        let state = self.tenants[pos].state;
        self.eng
            .trace(self.now, TraceEvent::TenantDepartIgnored { tenant });
        Err(ServeError::NotResident { state })
    }

    /// Departs every named tenant in one batch: claims are resolved
    /// sequentially with [`SessionManager::depart`]'s semantics (most
    /// recent admitted tenant per name, duplicate names peel back one
    /// claim at a time, non-resident names trace
    /// [`TraceEvent::TenantDepartIgnored`]), but the admission-state
    /// eviction commits **once** for the whole batch — a depart-heavy
    /// storm re-runs each touched bin's RMWP fixpoint a single time
    /// instead of once per departing tenant, and the touched bins are
    /// planned concurrently (the eviction-side mirror of the parallel
    /// admission rounds).
    pub fn depart_batch(&mut self, names: &[String]) -> usize {
        let mut claimed: Vec<usize> = Vec::new();
        for name in names {
            let found = (0..self.tenants.len()).rev().find(|&pos| {
                let t = &self.tenants[pos];
                t.name == *name && t.state == TenantState::Admitted && !claimed.contains(&pos)
            });
            match found {
                Some(pos) => claimed.push(pos),
                None => {
                    if let Some(pos) = self.tenants.iter().rposition(|t| t.name == *name) {
                        let tenant = self.tenants[pos].id;
                        self.eng
                            .trace(self.now, TraceEvent::TenantDepartIgnored { tenant });
                    }
                }
            }
        }
        if !claimed.is_empty() {
            self.remove_tenants(&claimed, TenantState::Departed);
            self.counters.departures += claimed.len() as u64;
        }
        claimed.len()
    }

    /// Unbinds a tenant's tasks (aborting in-flight jobs), frees its
    /// admission slots, applies the survivors' OD growth (through the
    /// restore hysteresis), and wakes the submit queue.
    fn remove_tenant(&mut self, pos: usize, state: TenantState) {
        self.remove_tenants(&[pos], state);
    }

    /// Batched [`SessionManager::remove_tenant`]: unbinds every listed
    /// tenant, then frees all their admission slots with **one** planned
    /// eviction so each touched bin's survivor fixpoint runs once for
    /// the whole batch, then applies the net OD growth once. Traces one
    /// departure/eviction event per tenant (in `positions` order) and
    /// wakes the submit queue once.
    fn remove_tenants(&mut self, positions: &[usize], state: TenantState) {
        let mut keys: Vec<TaskKey> = Vec::new();
        for &pos in positions {
            let bound = self.tenants[pos].tasks.clone();
            for b in &bound {
                if self.eng.job_in_flight(b.engine_idx) {
                    // Withdrawn, not missed: the tenant is leaving, so
                    // the partial job is cancelled without charging a
                    // miss.
                    self.abort_job_with(b.engine_idx, true);
                }
                self.eng.remove_task(b.engine_idx);
            }
            keys.extend(bound.iter().map(|b| b.key));
        }
        let updates = self.evict_keys(&keys);
        self.bindings.retain(|b| !keys.contains(&b.key));
        self.pending_restores.retain(|p| !keys.contains(&p.key));
        self.apply_od_updates(&updates);
        for &pos in positions {
            let tenant = self.tenants[pos].id;
            let ev = if state == TenantState::Evicted {
                TraceEvent::TenantEvicted { tenant }
            } else {
                TraceEvent::TenantDeparted { tenant }
            };
            self.eng.trace(self.now, ev);
            self.tenants[pos].state = state;
        }
        // Freed capacity is new information for queued requests: lift
        // their backoff gates and sweep immediately.
        if !self.queue.is_empty() {
            self.queue.wake(self.now);
            self.events.push(self.now, Event::AdmissionRound);
        }
    }

    /// Evicts `keys` from the admission controller, planning the touched
    /// bins' survivor fixpoints concurrently when parallel rounds are
    /// enabled — the eviction-side mirror of the batched admission
    /// planner ([`SessionManager::plan_round`]). Planning is read-only
    /// (`&ShardedAdmission`), the commit is a single sequential step, so
    /// the resulting OD updates are bit-identical to the sequential
    /// plan-then-commit path regardless of worker count.
    fn evict_keys(&mut self, keys: &[TaskKey]) -> Vec<OdUpdate> {
        let plan = {
            let ctl = &self.ctl;
            let bins = ctl.evict_touched_bins(keys);
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(bins.len())
                .max(1);
            if !self.graceful.admission.parallel_rounds || workers == 1 {
                ctl.plan_evict(keys)
            } else {
                let parts = std::thread::scope(|s| {
                    let bins = &bins;
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            s.spawn(move || {
                                let mut mine = Vec::new();
                                let mut i = w;
                                while i < bins.len() {
                                    mine.push(ctl.plan_evict_bin(bins[i], keys));
                                    i += workers;
                                }
                                mine
                            })
                        })
                        .collect();
                    let mut parts = Vec::new();
                    for h in handles {
                        parts.extend(h.join().expect("eviction planner thread panicked"));
                    }
                    parts
                });
                EvictPlan::assemble(parts)
            }
        };
        self.ctl.commit_evict(keys, &plan)
    }

    /// Applies analysis OD updates to the running engine through the
    /// ladder bookkeeping: shrinks deploy immediately (tracing
    /// [`TraceEvent::QosShed`] when the tenant loses deployed QoS),
    /// growths deploy after [`GracefulConfig::restore_hysteresis`].
    fn apply_od_updates(&mut self, updates: &[OdUpdate]) {
        let now = self.now;
        let hysteresis = self.graceful.restore_hysteresis;
        let mut restores_due = false;
        for u in updates {
            let Some(b) = self.bindings.iter_mut().find(|b| b.key == u.key) else {
                continue;
            };
            b.analyzed = u.optional_deadline;
            if u.optional_deadline < b.deployed {
                debug_assert!(
                    u.optional_deadline >= b.floor,
                    "ladder admitted a placement below a resident's floor"
                );
                b.deployed = u.optional_deadline;
                let (idx, tenant, floor) = (b.engine_idx, b.tenant, b.floor);
                self.eng.set_od(idx, u.optional_deadline);
                self.counters.od_updates_applied += 1;
                self.counters.qos_sheds += 1;
                self.eng.trace(
                    now,
                    TraceEvent::QosShed {
                        tenant,
                        task: TaskId(idx as u32),
                        od: u.optional_deadline,
                        floor,
                    },
                );
            } else if u.optional_deadline > b.deployed {
                if hysteresis == Span::ZERO {
                    b.deployed = u.optional_deadline;
                    let (idx, tenant) = (b.engine_idx, b.tenant);
                    self.eng.set_od(idx, u.optional_deadline);
                    self.counters.od_updates_applied += 1;
                    self.counters.qos_restores += 1;
                    self.eng.trace(
                        now,
                        TraceEvent::QosRestored {
                            tenant,
                            task: TaskId(idx as u32),
                            od: u.optional_deadline,
                        },
                    );
                } else {
                    let due = now.checked_add(hysteresis).unwrap_or(Time::MAX);
                    let key = b.key;
                    if !self.pending_restores.iter().any(|p| p.key == key) {
                        self.pending_restores.push(PendingRestore { key, due });
                        restores_due = true;
                    }
                }
            }
        }
        if restores_due {
            let due = now.checked_add(hysteresis).unwrap_or(Time::MAX);
            self.events.push(due, Event::RestoreCheck);
        }
    }

    /// One batched sweep over the submit queue: every request whose
    /// backoff gate has passed is admission-tested; failures are
    /// classified into permanent rejections, expiries, and backoff
    /// retries.
    ///
    /// With [`AdmissionConfig::parallel_rounds`] the requests are
    /// *planned* concurrently up front (immutable controller, scoped
    /// threads) and the speculative plans validated against the shards
    /// earlier commits touched; commits themselves — and therefore all
    /// engine binding, tracing, and counters — run sequentially in FIFO
    /// order, so the outcome is identical to the sequential sweep.
    fn on_admission_round(&mut self) {
        let ready = self.queue.take_ready(self.now);
        if ready.is_empty() {
            return;
        }
        let speculative = if self.graceful.admission.parallel_rounds && ready.len() > 1 {
            Self::plan_round(&self.ctl, &self.bindings, &self.graceful, self.now, &ready)
        } else {
            let mut none: Vec<Option<Result<PlannedAdmission, ServeError>>> = Vec::new();
            none.resize_with(ready.len(), || None);
            none
        };
        // A speculative Ok-plan is reusable only while its examined
        // shards are untouched by this round's earlier commits — and
        // only under a heuristic whose candidate order over untouched
        // bins is commit-stable. FFD ranks by index (stable); WFD ranks
        // by ascending utilization, and commits only *grow* utilization,
        // so the examined prefix keeps its order; BFD ranks descending,
        // where a grown bin can jump ahead of unexamined ones — never
        // reuse. A speculative rejection is reusable only when nothing
        // committed at all: earlier QoS sheds lower the ladder bounds
        // non-monotonically. Anything else replans sequentially, which
        // by construction gives the exact sequential-sweep decision.
        let bfd = self.ctl.heuristic() == PartitionHeuristic::BestFitDecreasing;
        let mut touched: u64 = 0;
        for (mut req, plan) in ready.into_iter().zip(speculative) {
            if req.deadline < self.now {
                self.expire_request(&req);
                continue;
            }
            let decision = match plan {
                Some(Ok(p))
                    if touched == 0
                        || (!bfd
                            && !p.conservative
                            && p.splan.examined_shards() & touched == 0) =>
                {
                    Ok(p)
                }
                Some(Err(e)) if touched == 0 => Err(e),
                _ => Self::plan_tenant(
                    &self.ctl,
                    &self.bindings,
                    &self.graceful,
                    &req.tasks,
                    req.floor,
                ),
            };
            match decision {
                Ok(p) => {
                    touched |= p.splan.placed_shards();
                    self.commit_tenant(req.tenant, &req.tasks, req.floor, &p);
                }
                Err(ServeError::Unschedulable { .. } | ServeError::EmptySubmission)
                    if self.ctl.fits_empty(&req.tasks) =>
                {
                    // Retryable: blocked only by the current residents.
                    req.attempts += 1;
                    let after = self.graceful.queue.backoff(req.attempts);
                    let next = self.now.checked_add(after).unwrap_or(Time::MAX);
                    if req.attempts >= self.graceful.queue.max_retries || next > req.deadline {
                        self.expire_request(&req);
                    } else {
                        req.not_before = next;
                        self.counters.retries += 1;
                        self.eng.trace(
                            self.now,
                            TraceEvent::SubmissionRetried {
                                tenant: req.tenant,
                                attempt: req.attempts,
                                after,
                            },
                        );
                        self.queue.requeue(req);
                        self.events.push(next, Event::AdmissionRound);
                    }
                }
                Err(_) => {
                    // Permanent: the set fits no thread even on an idle
                    // system (or is malformed) — waiting cannot help.
                    self.reject_tenant(req.tenant);
                }
            }
        }
    }

    /// Plans a round's ready requests concurrently on scoped worker
    /// threads. Planning is read-only (`&ShardedAdmission`), workers
    /// stripe the request list by index, and results return in request
    /// order — no decision is taken here, so determinism is untouched.
    /// Requests already past their deadline are skipped (the sweep
    /// expires them without ever planning).
    fn plan_round(
        ctl: &ShardedAdmission,
        bindings: &[Binding],
        graceful: &GracefulConfig,
        now: Time,
        ready: &[QueuedRequest],
    ) -> Vec<Option<Result<PlannedAdmission, ServeError>>> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(ready.len())
            .max(1);
        let mut plans: Vec<Option<Result<PlannedAdmission, ServeError>>> = Vec::new();
        plans.resize_with(ready.len(), || None);
        if workers == 1 {
            for (i, req) in ready.iter().enumerate() {
                if req.deadline >= now {
                    plans[i] = Some(Self::plan_tenant(
                        ctl,
                        bindings,
                        graceful,
                        &req.tasks,
                        req.floor,
                    ));
                }
            }
            return plans;
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        let mut i = w;
                        while i < ready.len() {
                            let req = &ready[i];
                            if req.deadline >= now {
                                mine.push((
                                    i,
                                    Self::plan_tenant(
                                        ctl,
                                        bindings,
                                        graceful,
                                        &req.tasks,
                                        req.floor,
                                    ),
                                ));
                            }
                            i += workers;
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                for (i, p) in h.join().expect("admission planner thread panicked") {
                    plans[i] = Some(p);
                }
            }
        });
        plans
    }

    /// Drops a queued request whose deadline or retry budget ran out.
    fn expire_request(&mut self, req: &QueuedRequest) {
        self.counters.expired += 1;
        self.eng.trace(
            self.now,
            TraceEvent::SubmissionExpired { tenant: req.tenant },
        );
        self.tenants[req.tenant.0 as usize].state = TenantState::Rejected;
    }

    /// Deploys pending OD restores that have aged past the hysteresis
    /// window (unless a later shrink superseded them).
    fn on_restore_check(&mut self) {
        let now = self.now;
        let mut due: Vec<TaskKey> = Vec::new();
        self.pending_restores.retain(|p| {
            if p.due <= now {
                due.push(p.key);
                false
            } else {
                true
            }
        });
        for key in due {
            let Some(b) = self.bindings.iter_mut().find(|b| b.key == key) else {
                continue;
            };
            if b.analyzed > b.deployed {
                b.deployed = b.analyzed;
                let (idx, tenant, od) = (b.engine_idx, b.tenant, b.analyzed);
                self.eng.set_od(idx, od);
                self.counters.od_updates_applied += 1;
                self.counters.qos_restores += 1;
                self.eng.trace(
                    now,
                    TraceEvent::QosRestored {
                        tenant,
                        task: TaskId(idx as u32),
                        od,
                    },
                );
            }
        }
    }

    /// Folds freshly drained engine job signals into tenant health,
    /// applying quarantine (forced optional shedding) and eviction.
    fn drain_health_signals(&mut self) {
        let mut sigs = std::mem::take(&mut self.health_scratch);
        self.eng.drain_job_signals(&mut sigs);
        for sig in sigs.drain(..) {
            let violation = !sig.met || sig.overran;
            let Some((from, to)) =
                self.health
                    .note_job(&self.graceful.health, sig.tenant, violation)
            else {
                continue;
            };
            self.eng.trace(
                self.now,
                TraceEvent::TenantHealthChanged {
                    tenant: sig.tenant,
                    from,
                    to,
                },
            );
            match to {
                TenantHealth::Quarantined => self.set_tenant_forced_shed(sig.tenant, true),
                TenantHealth::Evicted => self.evict_tenant(sig.tenant),
                _ => {
                    if from == TenantHealth::Quarantined {
                        self.set_tenant_forced_shed(sig.tenant, false);
                    }
                }
            }
        }
        self.health_scratch = sigs;
    }

    fn set_tenant_forced_shed(&mut self, tenant: TenantId, on: bool) {
        for b in &self.bindings {
            if b.tenant == tenant {
                self.eng.set_forced_shed(b.engine_idx, on);
            }
        }
    }

    /// Removes a tenant for health reasons: like a departure, but the
    /// terminal state is [`TenantState::Evicted`] and the trace records
    /// [`TraceEvent::TenantEvicted`].
    fn evict_tenant(&mut self, tenant: TenantId) {
        let Some(pos) = self
            .tenants
            .iter()
            .position(|t| t.id == tenant && t.state == TenantState::Admitted)
        else {
            return;
        };
        self.health.mark_evicted(tenant);
        self.remove_tenant(pos, TenantState::Evicted);
        self.counters.evictions += 1;
    }

    /// Runs the already-submitted tenants to completion (each admitted
    /// task executes the run's per-task job quota) and returns the
    /// per-tenant and aggregate measurements.
    pub fn run(self) -> ServeOutcome {
        self.run_with_churn(&ChurnPlan::new())
    }

    /// Runs to completion while replaying `plan`: scripted tenant
    /// arrivals are submitted (and possibly rejected) and departures
    /// applied at their scripted instants, interleaved deterministically
    /// with scheduling — a churn event at time `t` applies before
    /// scheduling events at `t`.
    pub fn run_with_churn(mut self, plan: &ChurnPlan) -> ServeOutcome {
        let mut next_churn = 0;
        while next_churn < plan.len() || self.eng.has_live_tasks() || !self.queue.is_empty() {
            let churn_at = plan.events().get(next_churn).map(|e| e.at);
            let take_churn = match (churn_at, self.events.peek_time()) {
                (Some(c), Some(s)) => c <= s,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_churn {
                let ev = plan.events()[next_churn].clone();
                next_churn += 1;
                self.counters.churn_events += 1;
                if ev.at > self.now {
                    self.now = ev.at;
                }
                match ev.action {
                    ChurnAction::Arrive { name, tasks } => {
                        // A rejection is a recorded outcome, not a run
                        // failure.
                        let _ = self.submit_now(name, &tasks, QosFloor::none());
                    }
                    ChurnAction::Depart { name } => {
                        // A depart-heavy storm scripts many departures
                        // at one instant; coalesce the consecutive run
                        // into one batched eviction so each touched
                        // bin's fixpoint re-runs once, not per tenant.
                        let mut names = vec![name];
                        while let Some(next) = plan.events().get(next_churn) {
                            if next.at != ev.at {
                                break;
                            }
                            let ChurnAction::Depart { name } = &next.action else {
                                break;
                            };
                            names.push(name.clone());
                            next_churn += 1;
                            self.counters.churn_events += 1;
                        }
                        self.depart_batch(&names);
                    }
                    ChurnAction::Submit {
                        name,
                        tasks,
                        floor,
                        timeout,
                    } => {
                        // A full queue sheds the submission; recorded in
                        // the counters, not a run failure.
                        let _ = self.submit_queued(name, tasks, floor, timeout);
                    }
                }
                continue;
            }
            let Some((at, event)) = self.events.pop() else {
                // No scheduled events but queued submissions remain:
                // sweep them at the earliest backoff gate so the queue
                // always drains (admit, reject, or expire).
                if let Some(at) = self.queue.next_eligible() {
                    self.events.push(at.max(self.now), Event::AdmissionRound);
                    continue;
                }
                break;
            };
            debug_assert!(at >= self.now, "event time went backwards");
            self.now = at;
            self.events_processed += 1;
            match event {
                Event::Release { task, retried } => self.on_release(task, retried),
                Event::Ready { work } => self.on_ready(work),
                Event::Complete { hw, gen } => self.on_complete(hw, gen),
                Event::OdExpire { task, seq } => self.on_od_expire(task, seq),
                Event::WindupReady { task, seq } => self.on_windup_ready(task, seq),
                Event::StallStart { hw, duration } => self.on_stall_start(hw, duration),
                Event::StallEnd { hw } => self.on_stall_end(hw),
                Event::AdmissionRound => self.on_admission_round(),
                Event::RestoreCheck => self.on_restore_check(),
            }
            if self.graceful.health.enabled {
                self.drain_health_signals();
            }
        }
        self.finish()
    }

    fn finish(self) -> ServeOutcome {
        let SessionManager {
            eng,
            now,
            events_processed,
            tenants,
            mut counters,
            ctl,
            ..
        } = self;
        let stats = ctl.cache_stats();
        counters.rta_cache_hits = stats.hits;
        counters.rta_cache_misses = stats.misses;
        let out = eng.finish(now);
        let tenant_outcomes = tenants
            .into_iter()
            .map(|t| TenantOutcome {
                tenant: t.id,
                session: t.session,
                name: t.name,
                state: t.state,
                tasks: t
                    .tasks
                    .iter()
                    .map(|b| TaskId(b.engine_idx as u32))
                    .collect(),
                qos: out
                    .tenant_qos
                    .iter()
                    .find(|(id, _)| *id == t.id)
                    .map(|(_, q)| q.clone())
                    .unwrap_or_default(),
            })
            .collect();
        ServeOutcome {
            outcome: Outcome {
                qos: out.qos,
                overheads: out.overheads,
                faults: out.faults,
                metrics: out.metrics,
                trace: out.trace,
                events_processed,
                ..Default::default()
            },
            tenants: tenant_outcomes,
            counters,
        }
    }

    // ----- event handlers (the exec_sim mechanism, verbatim) --------------

    fn on_release(&mut self, task: usize, retried: bool) {
        if self.eng.job_in_flight(task) && !retried {
            self.events.push(
                self.now,
                Event::Release {
                    task,
                    retried: true,
                },
            );
            return;
        }
        if self.eng.jobs_done(task) > 0 || self.eng.job_in_flight(task) {
            if self.eng.job_in_flight(task) {
                self.abort_job(task);
            }
            if self.eng.task_retired(task) {
                return; // quota exhausted or the tenant departed
            }
        }

        let release = self.now;
        let rel = self.eng.release(task, release);

        let dm = self.model.begin_mandatory();
        self.eng.sample(OverheadKind::BeginMandatory, dm);
        self.events.push(
            release + dm,
            Event::Ready {
                work: Work {
                    task,
                    cursor: Cursor::Mandatory,
                },
            },
        );

        if rel.has_parts {
            if let Some(at) = self.eng.arm_timer(task, release) {
                self.events.push(at, Event::OdExpire { task, seq: rel.seq });
            }
        }

        if let Some(at) = rel.next_release {
            self.events.push(
                at,
                Event::Release {
                    task,
                    retried: false,
                },
            );
        }
    }

    fn on_ready(&mut self, work: Work) {
        // The tenant may have departed between signalling and readiness.
        if self.eng.task_retired(work.task) && !self.eng.job_in_flight(work.task) {
            return;
        }
        let (hw, prio) = match work.cursor {
            Cursor::Mandatory | Cursor::Windup => (
                self.eng.mandatory_hw(work.task),
                self.eng.mand_prio(work.task),
            ),
            Cursor::Optional(k) => (
                self.eng.placement(work.task, k as usize),
                self.eng.opt_prio(work.task),
            ),
        };
        if self.eng.tracing() {
            let job = self.eng.job(work.task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Enqueue,
                    job,
                    hw: Some(HwThreadId(hw as u32)),
                },
            );
        }
        self.cpus[hw].queue.enqueue(prio, work);
        self.resched(hw);
    }

    fn on_complete(&mut self, hw: usize, gen: u64) {
        let Some(running) = self.cpus[hw].running else {
            return;
        };
        if running.gen != gen {
            return; // stale completion (preempted or terminated meanwhile)
        }
        self.cpus[hw].running = None;
        let work = running.work;
        if matches!(work.cursor, Cursor::Mandatory | Cursor::Windup) {
            let ran = self.now.saturating_elapsed_since(running.since);
            self.eng.bank(work.task, work.cursor, ran);
            self.eng.cut_if_over_budget(work.task, work.cursor, self.now);
        }
        match work.cursor {
            Cursor::Mandatory => {
                let after = self.eng.mandatory_completed(work.task, self.now);
                self.after_mandatory(work.task, after);
            }
            Cursor::Optional(k) => {
                if let Some(cmd) = self.eng.optional_completed(work.task, k, self.now) {
                    self.apply_windup(work.task, cmd);
                }
            }
            Cursor::Windup => {
                self.eng.windup_completed(work.task, self.now);
            }
        }
        self.resched(hw);
    }

    fn after_mandatory(&mut self, task: usize, after: AfterMandatory) {
        match after {
            AfterMandatory::Windup(cmd) => self.apply_windup(task, cmd),
            AfterMandatory::Signal { np } => {
                let mut ready_times = std::mem::take(&mut self.signal_scratch);
                ready_times.clear();
                let mut cum = Span::ZERO;
                for _ in 0..np {
                    cum += self.model.signal_one_optional();
                    ready_times.push(self.now + cum);
                }
                self.eng.sample(OverheadKind::BeginOptional, cum);

                let ds = self.model.switch_to_optional(np);
                self.eng.sample(OverheadKind::SwitchToOptional, ds);

                let mandatory_hw = self.eng.mandatory_hw(task);
                for (k, &base) in ready_times.iter().enumerate() {
                    let at = if self.eng.placement(task, k) == mandatory_hw {
                        base + ds
                    } else {
                        base
                    };
                    self.events.push(
                        at,
                        Event::Ready {
                            work: Work {
                                task,
                                cursor: Cursor::Optional(k as u32),
                            },
                        },
                    );
                }
                self.signal_scratch = ready_times;
            }
        }
    }

    fn apply_windup(&mut self, task: usize, cmd: WindupCommand) {
        if let WindupCommand::At { at, seq } = cmd {
            self.events.push(at, Event::WindupReady { task, seq });
        }
    }

    fn on_od_expire(&mut self, task: usize, seq: u64) {
        match self.eng.od_expired(task, seq, self.now) {
            OdAction::Stale | OdAction::Handled => {}
            OdAction::Terminate { np } => {
                for k in 0..np {
                    let Some(target) = self.eng.plan_terminate(task, k) else {
                        continue;
                    };
                    let cost = self.model.end_one_part(target.cross_core);
                    self.eng.note_termination_cost(cost);
                    self.stop_work(
                        target.hw,
                        Work {
                            task,
                            cursor: Cursor::Optional(k as u32),
                        },
                        target.prio,
                    );
                    self.eng.commit_terminate(task, k, self.now);
                }
                let cmd = self.eng.finish_termination(task, self.now);
                self.apply_windup(task, cmd);
            }
        }
    }

    fn on_windup_ready(&mut self, task: usize, seq: u64) {
        if self.eng.windup_ready(task, seq, self.now) {
            self.on_ready(Work {
                task,
                cursor: Cursor::Windup,
            });
        }
    }

    fn on_stall_start(&mut self, hw: usize, duration: Span) {
        self.eng.stall_started(hw, duration, self.now);
        self.cpus[hw].stalled += 1;
        if let Some(r) = self.cpus[hw].running.take() {
            let ran = self.now.saturating_elapsed_since(r.since);
            self.eng.bank(r.work.task, r.work.cursor, ran);
            self.cpus[hw].queue.enqueue_front(r.prio, r.work);
        }
    }

    fn on_stall_end(&mut self, hw: usize) {
        self.cpus[hw].stalled = self.cpus[hw].stalled.saturating_sub(1);
        if self.cpus[hw].stalled == 0 {
            self.resched(hw);
        }
    }

    /// Stops an in-flight job's work and finalizes its parts. `cancel`
    /// distinguishes a tenant withdrawing the job (departure/eviction —
    /// no deadline miss is charged) from a hard deadline abort at the
    /// next release.
    fn abort_job_with(&mut self, task: usize, cancel: bool) {
        let mand_hw = self.eng.mandatory_hw(task);
        let mand_prio = self.eng.mand_prio(task);
        for cursor in [Cursor::Mandatory, Cursor::Windup] {
            self.stop_work(mand_hw, Work { task, cursor }, mand_prio);
        }
        for k in 0..self.eng.part_count(task) {
            if self.eng.part_ended(task, k) {
                continue;
            }
            let hw = self.eng.placement(task, k);
            let opt_prio = self.eng.opt_prio(task);
            self.stop_work(
                hw,
                Work {
                    task,
                    cursor: Cursor::Optional(k as u32),
                },
                opt_prio,
            );
            self.eng.abort_part(task, k, self.now);
        }
        if cancel {
            self.eng.finish_cancel(task, self.now);
        } else {
            self.eng.finish_abort(task, self.now);
        }
    }

    fn abort_job(&mut self, task: usize) {
        self.abort_job_with(task, false);
    }

    fn stop_work(&mut self, hw: usize, work: Work, prio: Priority) {
        let cpu = &mut self.cpus[hw];
        if let Some(r) = cpu.running.filter(|r| r.work == work) {
            cpu.running = None;
            let ran = self.now.saturating_elapsed_since(r.since);
            self.eng.bank(work.task, work.cursor, ran);
            self.resched(hw);
        } else if self.cpus[hw].queue.remove(prio, &work) && self.eng.tracing() {
            let job = self.eng.job(work.task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Remove,
                    job,
                    hw: Some(HwThreadId(hw as u32)),
                },
            );
        }
    }

    fn resched(&mut self, hw: usize) {
        if self.cpus[hw].stalled > 0 {
            return;
        }
        if let Some(running) = self.cpus[hw].running {
            let waiting = self.cpus[hw].queue.peek_highest_priority();
            if waiting.is_some_and(|p| p > running.prio) {
                self.cpus[hw].running = None;
                let ran = self.now.saturating_elapsed_since(running.since);
                self.eng.bank(running.work.task, running.work.cursor, ran);
                self.cpus[hw]
                    .queue
                    .enqueue_front(running.prio, running.work);
            } else {
                return;
            }
        }
        let Some((prio, work)) = self.cpus[hw].queue.dequeue_highest() else {
            return;
        };
        if self.eng.tracing() {
            let job = self.eng.job(work.task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Dispatch,
                    job,
                    hw: Some(HwThreadId(hw as u32)),
                },
            );
        }
        let remaining = self.eng.on_dispatch(work.task, work.cursor, hw, self.now);
        self.gen_counter += 1;
        let gen = self.gen_counter;
        self.cpus[hw].running = Some(Running {
            work,
            prio,
            since: self.now,
            gen,
        });
        self.events.push(self.now + remaining, Event::Complete { hw, gen });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::TraceConfig;

    fn light(name: &str) -> Vec<TaskSpec> {
        vec![TaskSpec::builder(name)
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(10))
            .windup(Span::from_millis(10))
            .optional_parts(2, Span::from_millis(20))
            .build()
            .unwrap()]
    }

    /// Utilization 0.6 — at most one per hardware thread.
    fn heavy(name: &str) -> Vec<TaskSpec> {
        vec![TaskSpec::builder(name)
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(30))
            .windup(Span::from_millis(30))
            .optional_parts(1, Span::from_millis(10))
            .build()
            .unwrap()]
    }

    fn manager(jobs: u64) -> SessionManager {
        SessionManager::new(
            Topology::quad_core_smt2(),
            PartitionHeuristic::WorstFitDecreasing,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs,
                trace: TraceConfig::enabled(),
                ..Default::default()
            },
        )
    }

    #[test]
    fn priority_mapping_is_monotone_and_in_band() {
        let mut last = Priority::RTQ_MAX.level();
        for exp in 0..12 {
            let p = mandatory_priority_for_period(Span::from_micros(100 << exp));
            assert!(p.is_mandatory_band() && !p.is_hpq(), "{p:?}");
            assert!(p.level() <= last, "longer period may not gain priority");
            last = p.level();
        }
        assert_eq!(
            mandatory_priority_for_period(Span::from_nanos(1)),
            Priority::RTQ_MAX
        );
        // Even an absurdly long period stays inside the RTQ band.
        let floor = mandatory_priority_for_period(Span::from_nanos(u64::MAX));
        assert!(floor.is_mandatory_band() && !floor.is_hpq(), "{floor:?}");
    }

    #[test]
    fn eight_tenants_served_concurrently_with_per_tenant_qos() {
        let mut mgr = manager(4);
        for i in 0..8 {
            mgr.submit(Submission::new(format!("tenant{i}"), light(&format!("τ{i}"))))
                .unwrap();
        }
        assert_eq!(mgr.admitted_tenants(), 8);
        let out = mgr.run();
        assert_eq!(out.counters.admissions, 8);
        assert_eq!(out.outcome.qos.jobs(), 8 * 4);
        assert_eq!(out.outcome.qos.deadline_misses(), 0);
        for i in 0..8 {
            let t = out.tenant(&format!("tenant{i}")).unwrap();
            assert_eq!(t.state, TenantState::Admitted);
            assert_eq!(t.qos.jobs(), 4, "tenant{i}");
            assert_eq!(t.qos.deadline_misses(), 0);
            // The scoped trace sees this tenant's lifecycle and jobs only.
            let tr = out.tenant_trace(t.tenant);
            assert_eq!(
                tr.count(|e| matches!(e, TraceEvent::TenantAdmitted { .. })),
                1
            );
            assert_eq!(
                tr.count(|e| matches!(e, TraceEvent::JobReleased { .. })),
                4
            );
        }
    }

    #[test]
    fn overload_is_rejected_by_admission_not_by_misses() {
        let mut mgr = manager(3);
        for i in 0..8 {
            mgr.submit(Submission::new(format!("t{i}"), heavy(&format!("h{i}"))))
                .unwrap();
        }
        // The 9th heavy tenant fits on no thread: rejected up front.
        let err = mgr.submit(Submission::new("straw", heavy("h8"))).unwrap_err();
        assert!(matches!(err, ServeError::Unschedulable { .. }));
        assert_eq!(mgr.state_of("straw"), Some(TenantState::Rejected));
        assert_eq!(mgr.admitted_tenants(), 8);
        let out = mgr.run();
        assert_eq!(out.counters.rejections, 1);
        // The admitted population still runs clean: the overload never
        // reached the schedule.
        assert_eq!(out.outcome.qos.deadline_misses(), 0);
        let straw = out.tenant("straw").unwrap();
        assert_eq!(straw.state, TenantState::Rejected);
        assert_eq!(straw.qos.jobs(), 0);
        assert_eq!(
            out.tenant_trace(straw.tenant)
                .count(|e| matches!(e, TraceEvent::TenantRejected { .. })),
            1
        );
    }

    #[test]
    fn departure_frees_capacity_for_the_next_tenant() {
        let mut mgr = manager(2);
        for i in 0..8 {
            mgr.submit(Submission::new(format!("t{i}"), heavy(&format!("h{i}"))))
                .unwrap();
        }
        assert!(mgr.submit(Submission::new("late", heavy("h8"))).is_err());
        assert!(mgr.depart("t3").is_ok());
        assert_eq!(mgr.state_of("t3"), Some(TenantState::Departed));
        assert!(mgr.submit(Submission::new("late", heavy("h8"))).is_ok());
        assert_eq!(mgr.admitted_tenants(), 8);
        let out = mgr.run();
        assert_eq!(out.counters.departures, 1);
        // "late" appears twice: first rejected, then admitted — the name
        // lookup returns the latest.
        assert_eq!(out.tenant("late").unwrap().state, TenantState::Admitted);
        assert_eq!(out.tenant("late").unwrap().qos.jobs(), 2);
        // The departed tenant ran no jobs (departed before the run).
        assert_eq!(out.tenant("t3").unwrap().qos.jobs(), 0);
    }

    #[test]
    fn admission_od_deltas_reach_the_running_engine() {
        // Uniprocessor: "lo" alone gets OD 900 ms; admitting "hi" shrinks
        // it to 860 ms, and hi's departure restores it (same numbers as
        // the rtseed-analysis admission tests).
        let lo = vec![TaskSpec::builder("lo")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(100))
            .windup(Span::from_millis(100))
            .optional_parts(1, Span::from_millis(50))
            .build()
            .unwrap()];
        let hi = vec![TaskSpec::builder("hi")
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(10))
            .windup(Span::from_millis(10))
            .build()
            .unwrap()];
        let mut mgr = SessionManager::new(
            Topology::uniprocessor(),
            PartitionHeuristic::FirstFitDecreasing,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 2,
                ..Default::default()
            },
        );
        mgr.submit(Submission::new("lo", lo)).unwrap();
        assert_eq!(mgr.counters().od_updates_applied, 0);
        mgr.submit(Submission::new("hi", hi)).unwrap();
        assert_eq!(mgr.counters().od_updates_applied, 1, "lo's OD shrank");
        assert!(mgr.depart("hi").is_ok());
        assert_eq!(mgr.counters().od_updates_applied, 2, "lo's OD grew back");
        let out = mgr.run();
        assert_eq!(out.outcome.qos.deadline_misses(), 0);
    }

    #[test]
    fn churn_replay_is_deterministic() {
        let plan = || {
            ChurnPlan::new()
                .arrive(Time::ZERO, "a", light("a"))
                .arrive(Time::from_nanos(50_000_000), "b", heavy("b"))
                .depart(Time::from_nanos(250_000_000), "a")
                .arrive(Time::from_nanos(300_000_000), "c", light("c"))
        };
        let run = || manager(4).run_with_churn(&plan());
        let x = run();
        let y = run();
        assert_eq!(x.outcome.trace, y.outcome.trace);
        assert_eq!(x.outcome.qos, y.outcome.qos);
        assert_eq!(x.counters, y.counters);
        assert_eq!(x.counters.churn_events, 4);
        assert_eq!(x.counters.admissions, 3);
        assert_eq!(x.counters.departures, 1);
        // "a" departed mid-run: it ran fewer jobs than its quota.
        let a = x.tenant("a").unwrap();
        assert_eq!(a.state, TenantState::Departed);
        assert!(a.qos.jobs() < 4, "departed early: {}", a.qos.jobs());
    }

    #[test]
    fn empty_session_with_no_churn_finishes_immediately() {
        let out = manager(5).run();
        assert_eq!(out.outcome.qos.jobs(), 0);
        assert!(out.tenants.is_empty());
        assert_eq!(out.counters, ServeCounters::default());
    }

    #[test]
    fn depart_reports_why_it_did_nothing() {
        let mut mgr = manager(2);
        mgr.submit(Submission::new("t0", light("a"))).unwrap();
        assert_eq!(mgr.depart("nobody"), Err(ServeError::UnknownTenant));
        assert!(mgr.depart("t0").is_ok());
        assert_eq!(
            mgr.depart("t0"),
            Err(ServeError::NotResident {
                state: TenantState::Departed
            })
        );
        assert_eq!(mgr.counters().departures, 1);
        let out = mgr.run();
        assert_eq!(
            out.tenant_trace(TenantId(0))
                .count(|e| matches!(e, TraceEvent::TenantDepartIgnored { .. })),
            1
        );
    }

    fn graceful_manager(jobs: u64, graceful: GracefulConfig) -> SessionManager {
        SessionManager::with_graceful(
            Topology::quad_core_smt2(),
            PartitionHeuristic::WorstFitDecreasing,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs,
                trace: TraceConfig::enabled(),
                ..Default::default()
            },
            graceful,
        )
    }

    #[test]
    fn queued_burst_is_decided_in_one_round() {
        let mut mgr = graceful_manager(3, GracefulConfig::default());
        mgr.submit(Submission::new("qa", light("a")).queued(Span::from_secs(10)))
            .unwrap();
        mgr.submit(Submission::new("qb", light("b")).queued(Span::from_secs(10)))
            .unwrap();
        assert_eq!(mgr.queued(), 2);
        assert_eq!(mgr.state_of("qa"), Some(TenantState::Pending));
        let out = mgr.run();
        assert_eq!(out.counters.enqueued, 2);
        assert_eq!(out.counters.admissions, 2);
        assert_eq!(out.counters.retries, 0);
        assert_eq!(out.tenant("qa").unwrap().state, TenantState::Admitted);
        assert_eq!(out.tenant("qb").unwrap().qos.jobs(), 3);
        assert_eq!(
            out.tenant_trace(TenantId(0))
                .count(|e| matches!(e, TraceEvent::SubmissionQueued { .. })),
            1
        );
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let graceful = GracefulConfig {
            queue: QueueConfig {
                capacity: 1,
                ..QueueConfig::default()
            },
            ..GracefulConfig::default()
        };
        let mut mgr = graceful_manager(2, graceful);
        mgr.submit(Submission::new("first", light("a")).queued(Span::from_secs(1)))
            .unwrap();
        let err = mgr
            .submit(Submission::new("second", light("b")).queued(Span::from_secs(1)))
            .unwrap_err();
        assert_eq!(err, ServeError::QueueFull { capacity: 1 });
        assert_eq!(mgr.counters().queue_rejected_full, 1);
        // The refused submission created no tenant record.
        assert_eq!(mgr.state_of("second"), None);
    }

    #[test]
    fn blocked_request_retries_and_admits_when_capacity_frees() {
        let mut mgr = graceful_manager(4, GracefulConfig::default());
        for i in 0..8 {
            mgr.submit(Submission::new(format!("t{i}"), heavy(&format!("h{i}"))))
                .unwrap();
        }
        mgr.submit(Submission::new("late", heavy("h8")).queued(Span::from_secs(10)))
            .unwrap();
        let plan = ChurnPlan::new().depart(Time::from_nanos(150_000_000), "t0");
        let out = mgr.run_with_churn(&plan);
        assert!(out.counters.retries >= 1, "blocked rounds backed off");
        assert_eq!(out.counters.expired, 0);
        assert_eq!(out.tenant("late").unwrap().state, TenantState::Admitted);
        assert!(out.tenant("late").unwrap().qos.jobs() > 0);
        let tr = out.tenant_trace(out.tenant("late").unwrap().tenant);
        assert!(tr.count(|e| matches!(e, TraceEvent::SubmissionRetried { .. })) >= 1);
    }

    #[test]
    fn blocked_request_expires_at_its_deadline() {
        let mut mgr = graceful_manager(2, GracefulConfig::default());
        for i in 0..8 {
            mgr.submit(Submission::new(format!("t{i}"), heavy(&format!("h{i}"))))
                .unwrap();
        }
        mgr.submit(Submission::new("doomed", heavy("h8")).queued(Span::from_millis(120)))
            .unwrap();
        let out = mgr.run();
        assert_eq!(out.counters.expired, 1);
        assert_eq!(out.tenant("doomed").unwrap().state, TenantState::Rejected);
        assert_eq!(
            out.tenant_trace(out.tenant("doomed").unwrap().tenant)
                .count(|e| matches!(e, TraceEvent::SubmissionExpired { .. })),
            1
        );
    }

    #[test]
    fn infeasible_queued_set_is_rejected_permanently() {
        // Two heavies in one submission jointly over-utilize any single
        // thread; on a uniprocessor the set fits nowhere even alone.
        let mut mgr = SessionManager::with_graceful(
            Topology::uniprocessor(),
            PartitionHeuristic::FirstFitDecreasing,
            AssignmentPolicy::OneByOne,
            RunConfig::default(),
            GracefulConfig::default(),
        );
        let set: Vec<TaskSpec> = heavy("h0").into_iter().chain(heavy("h1")).collect();
        mgr.submit(Submission::new("hopeless", set).queued(Span::from_secs(10)))
            .unwrap();
        let out = mgr.run();
        assert_eq!(out.counters.rejections, 1);
        assert_eq!(out.counters.retries, 0, "permanent, not retried");
        assert_eq!(out.counters.expired, 0);
        assert_eq!(out.tenant("hopeless").unwrap().state, TenantState::Rejected);
    }

    /// Uniprocessor pair from the analysis admission tests: "lo" alone
    /// gets OD 900 ms; admitting "hi" shrinks it to 860 ms.
    fn lo_set() -> Vec<TaskSpec> {
        vec![TaskSpec::builder("lo")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(100))
            .windup(Span::from_millis(100))
            .optional_parts(1, Span::from_millis(50))
            .build()
            .unwrap()]
    }

    fn hi_set() -> Vec<TaskSpec> {
        vec![TaskSpec::builder("hi")
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(10))
            .windup(Span::from_millis(10))
            .build()
            .unwrap()]
    }

    fn uni_manager(graceful: GracefulConfig) -> SessionManager {
        SessionManager::with_graceful(
            Topology::uniprocessor(),
            PartitionHeuristic::FirstFitDecreasing,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 2,
                trace: TraceConfig::enabled(),
                ..Default::default()
            },
            graceful,
        )
    }

    #[test]
    fn floor_blocks_admissions_that_would_shed_too_deep() {
        // Floor at 99% of the 900 ms grant (891 ms): "hi" would need
        // lo's OD down at 860 ms, below the floor — every ladder stage
        // fails and the newcomer is rejected, the resident untouched.
        let mut mgr = uni_manager(GracefulConfig::default());
        mgr.submit(Submission::new("lo", lo_set()).floor(QosFloor::fraction(0.99)))
            .unwrap();
        let err = mgr.submit(Submission::new("hi", hi_set())).unwrap_err();
        assert!(matches!(err, ServeError::Unschedulable { .. }));
        assert_eq!(mgr.counters().qos_sheds, 0);
        assert_eq!(mgr.deployed_ods("lo"), vec![Span::from_millis(900)]);
    }

    #[test]
    fn shedding_ladder_admits_down_to_the_floor_and_traces_it() {
        // Floor at 50% (450 ms): the 860 ms placement is allowed; the
        // shed is applied, counted, and traced — and stays above floor.
        let mut mgr = uni_manager(GracefulConfig::default());
        mgr.submit(Submission::new("lo", lo_set()).floor(QosFloor::fraction(0.5)))
            .unwrap();
        mgr.submit(Submission::new("hi", hi_set())).unwrap();
        assert_eq!(mgr.counters().qos_sheds, 1);
        assert_eq!(mgr.deployed_ods("lo"), vec![Span::from_millis(860)]);
        let out = mgr.run();
        let tr = out.tenant_trace(TenantId(0));
        assert_eq!(tr.count(|e| matches!(e, TraceEvent::QosShed { .. })), 1);
        assert_eq!(
            tr.first_time(|e| matches!(
                e,
                TraceEvent::QosShed { od, floor, .. }
                    if *od == Span::from_millis(860) && *floor == Span::from_millis(450)
            )),
            Some(Time::ZERO)
        );
    }

    #[test]
    fn restores_wait_out_the_hysteresis_window() {
        let graceful = GracefulConfig {
            restore_hysteresis: Span::from_millis(500),
            ..GracefulConfig::default()
        };
        let mut mgr = uni_manager(graceful);
        mgr.submit(Submission::new("lo", lo_set()).floor(QosFloor::fraction(0.5)))
            .unwrap();
        mgr.submit(Submission::new("hi", hi_set())).unwrap();
        assert_eq!(mgr.counters().od_updates_applied, 1, "shed applied");
        assert!(mgr.depart("hi").is_ok());
        // The growth is pending, not applied: lo still runs at 860 ms.
        assert_eq!(mgr.counters().od_updates_applied, 1);
        assert_eq!(mgr.deployed_ods("lo"), vec![Span::from_millis(860)]);
        let out = mgr.run();
        assert_eq!(out.counters.od_updates_applied, 2, "restored after 500 ms");
        assert_eq!(out.counters.qos_restores, 1);
        let tr = out.tenant_trace(TenantId(0));
        assert_eq!(
            tr.first_time(|e| matches!(e, TraceEvent::QosRestored { .. })),
            Some(Time::from_nanos(500_000_000))
        );
    }

    #[test]
    fn health_enforcement_quarantines_then_evicts_a_rogue_tenant() {
        use rtseed_sim::{FaultPlan, FaultTarget, JobWindow, WcetFault};
        // The rogue's mandatory part overruns 30× on every job: every
        // deadline misses. Aggressive budgets (1 violation per rung)
        // walk it Healthy → Degraded → Quarantined → Evicted in three
        // jobs. The healthy neighbour on its own hardware thread is
        // untouched.
        let graceful = GracefulConfig {
            health: HealthPolicy {
                enabled: true,
                degrade_after: 1,
                quarantine_after: 1,
                evict_after: 1,
                recover_after: 4,
            },
            ..GracefulConfig::default()
        };
        let mut mgr = SessionManager::with_graceful(
            Topology::quad_core_smt2(),
            PartitionHeuristic::WorstFitDecreasing,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 8,
                trace: TraceConfig::enabled(),
                fault_plan: FaultPlan::new(7).with_wcet_fault(WcetFault {
                    task: Some(0),
                    jobs: JobWindow::new(0, u64::MAX),
                    target: FaultTarget::Mandatory,
                    factor: 30.0,
                }),
                ..Default::default()
            },
            graceful,
        );
        mgr.submit(Submission::new("rogue", heavy("r"))).unwrap();
        mgr.submit(Submission::new("steady", light("s"))).unwrap();
        let out = mgr.run();
        assert_eq!(out.counters.evictions, 1);
        assert_eq!(out.tenant("rogue").unwrap().state, TenantState::Evicted);
        assert_eq!(out.tenant("steady").unwrap().state, TenantState::Admitted);
        assert_eq!(out.tenant("steady").unwrap().qos.jobs(), 8);
        assert_eq!(out.tenant("steady").unwrap().qos.deadline_misses(), 0);
        let tr = out.tenant_trace(TenantId(0));
        assert_eq!(
            tr.count(|e| matches!(e, TraceEvent::TenantHealthChanged { .. })),
            3,
            "one transition per rung"
        );
        assert_eq!(
            tr.count(|e| matches!(e, TraceEvent::TenantEvicted { .. })),
            1
        );
        assert_eq!(
            tr.count(|e| matches!(e, TraceEvent::TenantDeparted { .. })),
            0,
            "eviction is not a departure"
        );
    }

    #[test]
    fn graceful_defaults_do_not_change_a_plain_run() {
        let plan = || {
            ChurnPlan::new()
                .arrive(Time::ZERO, "a", light("a"))
                .arrive(Time::from_nanos(50_000_000), "b", heavy("b"))
                .depart(Time::from_nanos(250_000_000), "a")
        };
        let x = manager(4).run_with_churn(&plan());
        let y = graceful_manager(4, GracefulConfig::default()).run_with_churn(&plan());
        assert_eq!(x.outcome.trace, y.outcome.trace);
        assert_eq!(x.outcome.qos, y.outcome.qos);
        assert_eq!(x.counters, y.counters);
    }

    #[test]
    fn mid_run_arrival_starts_fresh_job_stream() {
        // "b" arrives at 150 ms into "a"'s run; both finish their quotas.
        let plan = ChurnPlan::new()
            .arrive(Time::ZERO, "a", light("a"))
            .arrive(Time::from_nanos(150_000_000), "b", light("b"));
        let out = manager(3).run_with_churn(&plan);
        assert_eq!(out.tenant("a").unwrap().qos.jobs(), 3);
        assert_eq!(out.tenant("b").unwrap().qos.jobs(), 3);
        assert_eq!(out.outcome.qos.deadline_misses(), 0);
        // b's first release is at its arrival instant.
        let b = out.tenant("b").unwrap();
        let tr = out.tenant_trace(b.tenant);
        let first = tr
            .first_time(|e| matches!(e, TraceEvent::JobReleased { .. }))
            .unwrap();
        assert_eq!(first, Time::from_nanos(150_000_000));
    }

    /// The RTA cache counters are live telemetry, not decisions: blank
    /// them before comparing runs whose analysis *cost* may differ.
    fn sans_cache(mut c: ServeCounters) -> ServeCounters {
        c.rta_cache_hits = 0;
        c.rta_cache_misses = 0;
        c
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_submit() {
        let mut a = uni_manager(GracefulConfig::default());
        a.submit_with_floor("lo", &lo_set(), QosFloor::fraction(0.5))
            .unwrap();
        a.submit_tasks("hi", &hi_set()).unwrap();
        a.enqueue("q", &hi_set(), QosFloor::none(), Span::from_secs(1))
            .unwrap();
        let mut b = uni_manager(GracefulConfig::default());
        b.submit(Submission::new("lo", lo_set()).floor(QosFloor::fraction(0.5)))
            .unwrap();
        b.submit(Submission::new("hi", hi_set())).unwrap();
        b.submit(Submission::new("q", hi_set()).queued(Span::from_secs(1)))
            .unwrap();
        let x = a.run();
        let y = b.run();
        assert_eq!(x.outcome.trace, y.outcome.trace);
        assert_eq!(x.counters, y.counters);
    }

    #[test]
    fn parallel_rounds_produce_identical_runs() {
        // A same-instant queued burst decided in one round: planning in
        // parallel across 8 single-thread shards must yield the exact
        // trace and decisions of the sequential sweep.
        let run = |parallel: bool| {
            let graceful = GracefulConfig {
                admission: AdmissionConfig {
                    shards: 8,
                    parallel_rounds: parallel,
                    ..AdmissionConfig::default()
                },
                ..GracefulConfig::default()
            };
            let mut mgr = graceful_manager(2, graceful);
            for i in 0..6 {
                mgr.submit(
                    Submission::new(format!("q{i}"), light(&format!("l{i}")))
                        .queued(Span::from_secs(5)),
                )
                .unwrap();
            }
            for i in 0..3 {
                mgr.submit(
                    Submission::new(format!("h{i}"), heavy(&format!("H{i}")))
                        .queued(Span::from_secs(5)),
                )
                .unwrap();
            }
            mgr.run()
        };
        let seq = run(false);
        let par = run(true);
        assert_eq!(seq.outcome.trace, par.outcome.trace);
        assert_eq!(seq.outcome.qos, par.outcome.qos);
        // Speculative replans may re-run analyses the sequential sweep
        // ran once — every *decision* counter must still agree.
        assert_eq!(sans_cache(seq.counters), sans_cache(par.counters));
        assert_eq!(seq.counters.admissions, 8, "one heavy tenant does not fit");
    }

    #[test]
    fn full_rta_oracle_run_is_byte_identical() {
        let plan = || {
            ChurnPlan::new()
                .arrive(Time::ZERO, "a", light("a"))
                .arrive(Time::from_nanos(50_000_000), "b", heavy("b"))
                .depart(Time::from_nanos(250_000_000), "a")
                .arrive(Time::from_nanos(300_000_000), "c", light("c"))
        };
        let run = |full_rta: bool| {
            let graceful = GracefulConfig {
                admission: AdmissionConfig {
                    full_rta,
                    ..AdmissionConfig::default()
                },
                ..GracefulConfig::default()
            };
            graceful_manager(4, graceful).run_with_churn(&plan())
        };
        let inc = run(false);
        let full = run(true);
        assert_eq!(inc.outcome.trace, full.outcome.trace);
        assert_eq!(inc.outcome.qos, full.outcome.qos);
        assert_eq!(sans_cache(inc.counters), sans_cache(full.counters));
        assert_eq!(full.counters.rta_cache_hits, 0, "the oracle never caches");
    }

    #[test]
    fn rta_cache_counters_surface_in_serve_counters() {
        let mut mgr = uni_manager(GracefulConfig::default());
        mgr.submit(Submission::new("lo", lo_set())).unwrap();
        mgr.submit(Submission::new("hi", hi_set())).unwrap();
        let c = mgr.counters();
        assert!(c.rta_cache_misses > 0);
        assert!(
            c.rta_cache_hits > 0,
            "the second admission reads the first commit's cached bin ODs"
        );
        let out = mgr.run();
        assert!(out.counters.rta_cache_misses >= c.rta_cache_misses);
    }
}
