//! Multi-tenant serving layer: admission-controlled sessions over the
//! shared P-RMWP [`Engine`].
//!
//! The one-shot executors answer "run this fixed task set to completion".
//! A serving middleware instead stays up while **tenants** come and go:
//! each tenant submits a task set at runtime, the [`SessionManager`] runs
//! the online RMWP admission test
//! ([`AdmissionController`] — the
//! same response-time analysis and bin-packing heuristics as the offline
//! partitioner), and either
//!
//! * **admits** the tenant — binding its mandatory/wind-up threads to the
//!   hardware threads the admission chose, granting the optional deadlines
//!   the per-thread analysis computed, and shrinking co-located residents'
//!   ODs per the returned [`OdUpdate`]s — or
//! * **rejects** it outright, leaving the running system untouched: an
//!   overload submission is turned away by analysis, not discovered as a
//!   deadline miss.
//!
//! Departures evict the tenant's tasks (aborting any job in flight exactly
//! as a hard deadline miss would), free its utilization, and *grow* the
//! survivors' optional deadlines. The run-scoped
//! [`OverloadSupervisor`](crate::supervisor::OverloadSupervisor) keeps
//! working across tenants, so a misbehaving tenant degrades into
//! optional-part shedding rather than taking down its neighbours.
//!
//! The scheduling substrate is the *same* discrete-event mechanism as
//! [`SimExecutor`](crate::exec_sim::SimExecutor) — per-CPU SCHED_FIFO
//! ready queues, the deterministic event queue, and the calibrated
//! [`OverheadModel`] sampled in protocol order — driving the shared
//! sans-IO [`Engine`] with dynamic task arrival
//! ([`Engine::add_task`]) and departure ([`Engine::remove_task`]).
//!
//! ## Priorities across tenants
//!
//! The offline [`PriorityMap`](crate::PriorityMap) ranks a *closed* task
//! set. Tenants arrive one at a time, so the serving layer instead maps
//! each task's period onto a stable RTQ level by period magnitude
//! ([`mandatory_priority_for_period`]): shorter periods get strictly
//! higher levels, which agrees with the Rate Monotonic order the
//! admission test analyzes. Tasks whose periods fall into the same
//! power-of-two bucket share a level and serialize FIFO there — bounded
//! level inversion the test does not model, mirroring RT-Seed's own
//! finite RTQ band.
//!
//! ## Determinism
//!
//! A run is a pure function of the submissions (or the
//! [`ChurnPlan`]) and the [`RunConfig`]: same seed, same plan, same
//! trace — byte for byte. When a churn event and a scheduling event fall
//! on the same instant, the churn event applies first.
//!
//! # Examples
//!
//! ```
//! use rtseed::serve::SessionManager;
//! use rtseed::{AssignmentPolicy, RunConfig};
//! use rtseed_analysis::PartitionHeuristic;
//! use rtseed_model::{Span, TaskSpec, Topology};
//!
//! let tenant_set = |name: &str| {
//!     vec![TaskSpec::builder(name)
//!         .period(Span::from_millis(100))
//!         .mandatory(Span::from_millis(10))
//!         .windup(Span::from_millis(10))
//!         .optional_parts(2, Span::from_millis(20))
//!         .build()
//!         .unwrap()]
//! };
//! let run = RunConfig::builder().jobs(3).build()?;
//! let mut mgr = SessionManager::new(
//!     Topology::quad_core_smt2(),
//!     PartitionHeuristic::WorstFitDecreasing,
//!     AssignmentPolicy::OneByOne,
//!     run,
//! );
//! mgr.submit("alpha", &tenant_set("α"))?;
//! mgr.submit("beta", &tenant_set("β"))?;
//! let out = mgr.run();
//! assert_eq!(out.tenants.len(), 2);
//! assert_eq!(out.outcome.qos.jobs(), 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use rtseed_analysis::{AdmissionController, AdmissionError, OdUpdate, PartitionHeuristic, TaskKey};
use rtseed_model::{
    HwThreadId, Priority, QosSummary, SessionId, Span, TaskId, TaskSpec, TenantId, TenantState,
    Time, Topology,
};
use rtseed_sim::{ChurnAction, ChurnPlan, EventQueue, FifoReadyQueue, OverheadKind, OverheadModel};

use crate::engine::{AfterMandatory, Cursor, Engine, OdAction, TaskParams, WindupCommand};
use crate::executor::{Outcome, RunConfig};
use crate::obs::{QueueBand, QueueOp, Trace, TraceEvent};
use crate::policy::AssignmentPolicy;

/// The stable RTQ level for a task of the given period.
///
/// Levels are bucketed by the period's power-of-two magnitude, anchored so
/// that periods at or below ~0.5 ms reach [`Priority::RTQ_MAX`] and each
/// doubling of the period drops one level (floored at
/// [`Priority::RTQ_MIN`]). The mapping is monotone — a strictly shorter
/// period never gets a lower level — so runtime preemption agrees with the
/// within-thread Rate Monotonic order the admission test analyzes,
/// without ever re-ranking tasks that are already running.
pub fn mandatory_priority_for_period(period: Span) -> Priority {
    let ns = period.as_nanos().max(1);
    let log2 = 63 - u64::leading_zeros(ns) as i64;
    // 2^19 ns ≈ 0.5 ms maps to RTQ_MAX; each doubling costs one level.
    let level = (98 - (log2 - 19)).clamp(50, 98) as u8;
    Priority::new(level).expect("level was clamped into the RTQ band")
}

// ----- discrete-event mechanism (mirrors exec_sim) ------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Work {
    task: usize,
    cursor: Cursor,
}

#[derive(Debug)]
enum Event {
    Release { task: usize, retried: bool },
    Ready { work: Work },
    Complete { hw: usize, gen: u64 },
    OdExpire { task: usize, seq: u64 },
    WindupReady { task: usize, seq: u64 },
    StallStart { hw: usize, duration: Span },
    StallEnd { hw: usize },
}

#[derive(Debug, Clone, Copy)]
struct Running {
    work: Work,
    prio: Priority,
    since: Time,
    gen: u64,
}

#[derive(Debug, Default)]
struct Cpu {
    queue: FifoReadyQueue<Work>,
    running: Option<Running>,
    stalled: u32,
}

/// One admitted task: the admission controller's handle and the engine
/// slot it was bound to.
#[derive(Debug, Clone, Copy)]
struct Binding {
    key: TaskKey,
    engine_idx: usize,
}

#[derive(Debug)]
struct Tenant {
    id: TenantId,
    session: SessionId,
    name: String,
    state: TenantState,
    tasks: Vec<Binding>,
}

/// Counters of serving-layer decisions over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Tenant submissions received ([`SessionManager::submit`] calls plus
    /// churn arrivals).
    pub submissions: u64,
    /// Submissions that passed the admission test.
    pub admissions: u64,
    /// Submissions turned away by the admission test.
    pub rejections: u64,
    /// Admitted tenants that departed (voluntarily or via churn).
    pub departures: u64,
    /// Optional-deadline updates applied to running tasks (shrinks on
    /// admission, growths on departure).
    pub od_updates_applied: u64,
    /// Churn-plan events replayed.
    pub churn_events: u64,
}

/// Per-tenant results of a serving run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// The tenant's identity (submission order).
    pub tenant: TenantId,
    /// The session under which it was served.
    pub session: SessionId,
    /// The name it submitted under.
    pub name: String,
    /// Terminal lifecycle state (`Rejected`, `Departed`, or — for tenants
    /// still resident at the end of the run — `Admitted`).
    pub state: TenantState,
    /// Engine task ids bound to this tenant (empty if rejected); keys for
    /// scoping the shared trace via [`ServeOutcome::tenant_trace`].
    pub tasks: Vec<TaskId>,
    /// QoS accounting over this tenant's jobs only.
    pub qos: QosSummary,
}

/// Everything a serving run produced: the aggregate [`Outcome`] (same
/// shape as the one-shot executors), per-tenant outcomes, and the
/// admission/churn counters.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Aggregate measurements across all tenants.
    pub outcome: Outcome,
    /// Per-tenant outcomes in submission order (including rejected
    /// tenants, with empty QoS).
    pub tenants: Vec<TenantOutcome>,
    /// Serving-layer decision counters.
    pub counters: ServeCounters,
}

impl ServeOutcome {
    /// The outcome of the most recent tenant submitted under `name`.
    pub fn tenant(&self, name: &str) -> Option<&TenantOutcome> {
        self.tenants.iter().rev().find(|t| t.name == name)
    }

    /// The slice of the shared trace concerning `tenant`: its lifecycle
    /// events plus every event of its tasks' jobs. Empty when tracing was
    /// disabled for the run.
    pub fn tenant_trace(&self, tenant: TenantId) -> Trace {
        let tasks: &[TaskId] = self
            .tenants
            .iter()
            .find(|t| t.tenant == tenant)
            .map(|t| t.tasks.as_slice())
            .unwrap_or(&[]);
        let mut out = Trace::new();
        for (at, ev) in self.outcome.trace.events() {
            let ours = match ev {
                TraceEvent::TenantAdmitted { tenant: t, .. }
                | TraceEvent::TenantRejected { tenant: t }
                | TraceEvent::TenantDeparted { tenant: t } => *t == tenant,
                TraceEvent::PolicyDecision { task, .. } => tasks.contains(task),
                _ => ev.job().is_some_and(|j| tasks.contains(&j.task)),
            };
            if ours {
                out.record(*at, ev.clone());
            }
        }
        out
    }
}

/// The serving layer: accepts tenant task-set submissions at runtime,
/// admission-tests them, and drives the admitted population through the
/// shared P-RMWP engine on the discrete-event substrate (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct SessionManager {
    topology: Topology,
    policy: AssignmentPolicy,
    run: RunConfig,
    now: Time,
    events: EventQueue<Event>,
    cpus: Vec<Cpu>,
    eng: Engine,
    model: OverheadModel,
    ctl: AdmissionController,
    gen_counter: u64,
    events_processed: u64,
    signal_scratch: Vec<Time>,
    tenants: Vec<Tenant>,
    /// Live (admitted, not departed) task bindings: admission key →
    /// engine slot, for applying OD deltas.
    bindings: Vec<Binding>,
    counters: ServeCounters,
}

impl SessionManager {
    /// Creates an empty serving session on `topology`: no tenants, no
    /// tasks. Admission packs mandatory threads with `heuristic`; optional
    /// parts are placed by `policy`; `run` supplies the run-scoped knobs
    /// (per-task job quota, seed, calibration, fault plan, supervisor,
    /// trace sink).
    pub fn new(
        topology: Topology,
        heuristic: PartitionHeuristic,
        policy: AssignmentPolicy,
        run: RunConfig,
    ) -> SessionManager {
        let cpus = (0..topology.hw_threads()).map(|_| Cpu::default()).collect();
        let eng = Engine::empty(topology, &run);
        let model = OverheadModel::new(run.calibration, topology, run.load, run.seed);
        let mut events = EventQueue::new();
        // Planned CPU stall windows enter the queue up front, exactly as in
        // the one-shot simulator.
        for stall in run.fault_plan.stalls() {
            let hw = stall.hw as usize;
            if hw >= topology.hw_threads() as usize {
                continue;
            }
            events.push(
                stall.at,
                Event::StallStart {
                    hw,
                    duration: stall.duration,
                },
            );
            events.push(stall.at + stall.duration, Event::StallEnd { hw });
        }
        SessionManager {
            topology,
            policy,
            ctl: AdmissionController::new(topology.hw_threads() as usize, heuristic),
            run,
            now: Time::ZERO,
            events,
            cpus,
            eng,
            model,
            gen_counter: 0,
            events_processed: 0,
            signal_scratch: Vec::new(),
            tenants: Vec::new(),
            bindings: Vec::new(),
            counters: ServeCounters::default(),
        }
    }

    /// The current simulated time (advances during [`SessionManager::run`]).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of tenants currently admitted (not departed).
    pub fn admitted_tenants(&self) -> usize {
        self.tenants
            .iter()
            .filter(|t| t.state == TenantState::Admitted)
            .count()
    }

    /// Total mandatory+wind-up utilization of the resident tasks.
    pub fn total_utilization(&self) -> f64 {
        self.ctl.total_utilization()
    }

    /// The lifecycle state of the most recent tenant submitted under
    /// `name`, if any.
    pub fn state_of(&self, name: &str) -> Option<TenantState> {
        self.tenants
            .iter()
            .rev()
            .find(|t| t.name == name)
            .map(|t| t.state)
    }

    /// The decision counters so far.
    pub fn counters(&self) -> ServeCounters {
        self.counters
    }

    /// Submits a tenant task set for admission at the current instant.
    ///
    /// On admission the tenant's tasks release their first jobs
    /// immediately; co-located residents' optional deadlines shrink per
    /// the analysis (taking effect at their next release). On rejection
    /// the running system is untouched — the tenant is recorded as
    /// [`TenantState::Rejected`] and appears in the final
    /// [`ServeOutcome::tenants`] with empty QoS.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Unschedulable`] when some submitted task fits on
    /// no hardware thread under the exact RMWP test;
    /// [`AdmissionError::EmptySubmission`] for an empty slice.
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        tasks: &[TaskSpec],
    ) -> Result<TenantId, AdmissionError> {
        let name = name.into();
        self.counters.submissions += 1;
        let tenant = TenantId(self.tenants.len() as u32);
        let session = SessionId(tenant.0 as u64);
        let admission = match self.ctl.try_admit(tasks) {
            Err(e) => {
                self.counters.rejections += 1;
                self.eng.trace(self.now, TraceEvent::TenantRejected { tenant });
                self.tenants.push(Tenant {
                    id: tenant,
                    session,
                    name,
                    state: TenantState::Rejected,
                    tasks: Vec::new(),
                });
                return Err(e);
            }
            Ok(a) => a,
        };
        self.counters.admissions += 1;
        self.eng.trace(
            self.now,
            TraceEvent::TenantAdmitted {
                tenant,
                tasks: tasks.len() as u32,
            },
        );
        let mut bound = Vec::with_capacity(tasks.len());
        for (spec, admitted) in tasks.iter().zip(&admission.tasks) {
            let mand_prio = mandatory_priority_for_period(spec.period());
            let opt_prio = mand_prio
                .optional_counterpart()
                .expect("every RTQ level has an NRTQ counterpart");
            let np = spec.optional_count();
            let placements: Vec<usize> = self
                .policy
                .placements(&self.topology, np)
                .iter()
                .map(|h| h.index())
                .collect();
            let id = TaskId(self.eng.task_count() as u32);
            let idx = self.eng.add_task(TaskParams {
                id,
                tenant: Some(tenant),
                mandatory_hw: admitted.hw_thread.index(),
                placements,
                mand_prio,
                opt_prio,
                period: spec.period(),
                deadline: spec.deadline(),
                mandatory: spec.mandatory(),
                windup: spec.windup(),
                optional: spec.optional_parts().to_vec(),
                od: admitted.optional_deadline,
            });
            if np > 0 && self.eng.tracing() {
                self.eng.trace(
                    self.now,
                    TraceEvent::PolicyDecision {
                        task: id,
                        policy: self.policy.label(),
                        parts: np as u32,
                        distinct_cores: self.policy.distinct_cores(&self.topology, np),
                    },
                );
            }
            bound.push(Binding {
                key: admitted.key,
                engine_idx: idx,
            });
            if self.run.jobs > 0 {
                self.events.push(
                    self.now,
                    Event::Release {
                        task: idx,
                        retried: false,
                    },
                );
            }
        }
        self.apply_od_updates(&admission.od_updates);
        self.bindings.extend(bound.iter().copied());
        self.tenants.push(Tenant {
            id: tenant,
            session,
            name,
            state: TenantState::Admitted,
            tasks: bound,
        });
        Ok(tenant)
    }

    /// Departs the most recent admitted tenant named `name`: aborts its
    /// in-flight jobs (exactly as a hard deadline miss would), removes its
    /// tasks from scheduling, frees its utilization, and grows the
    /// survivors' optional deadlines. Returns `false` when no admitted
    /// tenant has that name.
    pub fn depart(&mut self, name: &str) -> bool {
        let Some(pos) = self
            .tenants
            .iter()
            .rposition(|t| t.name == name && t.state == TenantState::Admitted)
        else {
            return false;
        };
        let bound = self.tenants[pos].tasks.clone();
        let tenant = self.tenants[pos].id;
        for b in &bound {
            if self.eng.job_in_flight(b.engine_idx) {
                self.abort_job(b.engine_idx);
            }
            self.eng.remove_task(b.engine_idx);
        }
        let keys: Vec<TaskKey> = bound.iter().map(|b| b.key).collect();
        let updates = self.ctl.evict(&keys);
        self.bindings.retain(|b| !keys.contains(&b.key));
        self.apply_od_updates(&updates);
        self.eng.trace(self.now, TraceEvent::TenantDeparted { tenant });
        self.tenants[pos].state = TenantState::Departed;
        self.counters.departures += 1;
        true
    }

    fn apply_od_updates(&mut self, updates: &[OdUpdate]) {
        for u in updates {
            if let Some(b) = self.bindings.iter().find(|b| b.key == u.key) {
                self.eng.set_od(b.engine_idx, u.optional_deadline);
                self.counters.od_updates_applied += 1;
            }
        }
    }

    /// Runs the already-submitted tenants to completion (each admitted
    /// task executes the run's per-task job quota) and returns the
    /// per-tenant and aggregate measurements.
    pub fn run(self) -> ServeOutcome {
        self.run_with_churn(&ChurnPlan::new())
    }

    /// Runs to completion while replaying `plan`: scripted tenant
    /// arrivals are submitted (and possibly rejected) and departures
    /// applied at their scripted instants, interleaved deterministically
    /// with scheduling — a churn event at time `t` applies before
    /// scheduling events at `t`.
    pub fn run_with_churn(mut self, plan: &ChurnPlan) -> ServeOutcome {
        let mut next_churn = 0;
        while next_churn < plan.len() || self.eng.has_live_tasks() {
            let churn_at = plan.events().get(next_churn).map(|e| e.at);
            let take_churn = match (churn_at, self.events.peek_time()) {
                (Some(c), Some(s)) => c <= s,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_churn {
                let ev = plan.events()[next_churn].clone();
                next_churn += 1;
                self.counters.churn_events += 1;
                if ev.at > self.now {
                    self.now = ev.at;
                }
                match ev.action {
                    ChurnAction::Arrive { name, tasks } => {
                        // A rejection is a recorded outcome, not a run
                        // failure.
                        let _ = self.submit(name, &tasks);
                    }
                    ChurnAction::Depart { name } => {
                        let _ = self.depart(&name);
                    }
                }
                continue;
            }
            let Some((at, event)) = self.events.pop() else {
                break;
            };
            debug_assert!(at >= self.now, "event time went backwards");
            self.now = at;
            self.events_processed += 1;
            match event {
                Event::Release { task, retried } => self.on_release(task, retried),
                Event::Ready { work } => self.on_ready(work),
                Event::Complete { hw, gen } => self.on_complete(hw, gen),
                Event::OdExpire { task, seq } => self.on_od_expire(task, seq),
                Event::WindupReady { task, seq } => self.on_windup_ready(task, seq),
                Event::StallStart { hw, duration } => self.on_stall_start(hw, duration),
                Event::StallEnd { hw } => self.on_stall_end(hw),
            }
        }
        self.finish()
    }

    fn finish(self) -> ServeOutcome {
        let SessionManager {
            eng,
            now,
            events_processed,
            tenants,
            counters,
            ..
        } = self;
        let out = eng.finish(now);
        let tenant_outcomes = tenants
            .into_iter()
            .map(|t| TenantOutcome {
                tenant: t.id,
                session: t.session,
                name: t.name,
                state: t.state,
                tasks: t
                    .tasks
                    .iter()
                    .map(|b| TaskId(b.engine_idx as u32))
                    .collect(),
                qos: out
                    .tenant_qos
                    .iter()
                    .find(|(id, _)| *id == t.id)
                    .map(|(_, q)| q.clone())
                    .unwrap_or_default(),
            })
            .collect();
        ServeOutcome {
            outcome: Outcome {
                qos: out.qos,
                overheads: out.overheads,
                faults: out.faults,
                metrics: out.metrics,
                trace: out.trace,
                events_processed,
                ..Default::default()
            },
            tenants: tenant_outcomes,
            counters,
        }
    }

    // ----- event handlers (the exec_sim mechanism, verbatim) --------------

    fn on_release(&mut self, task: usize, retried: bool) {
        if self.eng.job_in_flight(task) && !retried {
            self.events.push(
                self.now,
                Event::Release {
                    task,
                    retried: true,
                },
            );
            return;
        }
        if self.eng.jobs_done(task) > 0 || self.eng.job_in_flight(task) {
            if self.eng.job_in_flight(task) {
                self.abort_job(task);
            }
            if self.eng.task_retired(task) {
                return; // quota exhausted or the tenant departed
            }
        }

        let release = self.now;
        let rel = self.eng.release(task, release);

        let dm = self.model.begin_mandatory();
        self.eng.sample(OverheadKind::BeginMandatory, dm);
        self.events.push(
            release + dm,
            Event::Ready {
                work: Work {
                    task,
                    cursor: Cursor::Mandatory,
                },
            },
        );

        if rel.has_parts {
            if let Some(at) = self.eng.arm_timer(task, release) {
                self.events.push(at, Event::OdExpire { task, seq: rel.seq });
            }
        }

        if let Some(at) = rel.next_release {
            self.events.push(
                at,
                Event::Release {
                    task,
                    retried: false,
                },
            );
        }
    }

    fn on_ready(&mut self, work: Work) {
        // The tenant may have departed between signalling and readiness.
        if self.eng.task_retired(work.task) && !self.eng.job_in_flight(work.task) {
            return;
        }
        let (hw, prio) = match work.cursor {
            Cursor::Mandatory | Cursor::Windup => (
                self.eng.mandatory_hw(work.task),
                self.eng.mand_prio(work.task),
            ),
            Cursor::Optional(k) => (
                self.eng.placement(work.task, k as usize),
                self.eng.opt_prio(work.task),
            ),
        };
        if self.eng.tracing() {
            let job = self.eng.job(work.task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Enqueue,
                    job,
                    hw: Some(HwThreadId(hw as u32)),
                },
            );
        }
        self.cpus[hw].queue.enqueue(prio, work);
        self.resched(hw);
    }

    fn on_complete(&mut self, hw: usize, gen: u64) {
        let Some(running) = self.cpus[hw].running else {
            return;
        };
        if running.gen != gen {
            return; // stale completion (preempted or terminated meanwhile)
        }
        self.cpus[hw].running = None;
        let work = running.work;
        if matches!(work.cursor, Cursor::Mandatory | Cursor::Windup) {
            let ran = self.now.saturating_elapsed_since(running.since);
            self.eng.bank(work.task, work.cursor, ran);
            self.eng.cut_if_over_budget(work.task, work.cursor, self.now);
        }
        match work.cursor {
            Cursor::Mandatory => {
                let after = self.eng.mandatory_completed(work.task, self.now);
                self.after_mandatory(work.task, after);
            }
            Cursor::Optional(k) => {
                if let Some(cmd) = self.eng.optional_completed(work.task, k, self.now) {
                    self.apply_windup(work.task, cmd);
                }
            }
            Cursor::Windup => {
                self.eng.windup_completed(work.task, self.now);
            }
        }
        self.resched(hw);
    }

    fn after_mandatory(&mut self, task: usize, after: AfterMandatory) {
        match after {
            AfterMandatory::Windup(cmd) => self.apply_windup(task, cmd),
            AfterMandatory::Signal { np } => {
                let mut ready_times = std::mem::take(&mut self.signal_scratch);
                ready_times.clear();
                let mut cum = Span::ZERO;
                for _ in 0..np {
                    cum += self.model.signal_one_optional();
                    ready_times.push(self.now + cum);
                }
                self.eng.sample(OverheadKind::BeginOptional, cum);

                let ds = self.model.switch_to_optional(np);
                self.eng.sample(OverheadKind::SwitchToOptional, ds);

                let mandatory_hw = self.eng.mandatory_hw(task);
                for (k, &base) in ready_times.iter().enumerate() {
                    let at = if self.eng.placement(task, k) == mandatory_hw {
                        base + ds
                    } else {
                        base
                    };
                    self.events.push(
                        at,
                        Event::Ready {
                            work: Work {
                                task,
                                cursor: Cursor::Optional(k as u32),
                            },
                        },
                    );
                }
                self.signal_scratch = ready_times;
            }
        }
    }

    fn apply_windup(&mut self, task: usize, cmd: WindupCommand) {
        if let WindupCommand::At { at, seq } = cmd {
            self.events.push(at, Event::WindupReady { task, seq });
        }
    }

    fn on_od_expire(&mut self, task: usize, seq: u64) {
        match self.eng.od_expired(task, seq, self.now) {
            OdAction::Stale | OdAction::Handled => {}
            OdAction::Terminate { np } => {
                for k in 0..np {
                    let Some(target) = self.eng.plan_terminate(task, k) else {
                        continue;
                    };
                    let cost = self.model.end_one_part(target.cross_core);
                    self.eng.note_termination_cost(cost);
                    self.stop_work(
                        target.hw,
                        Work {
                            task,
                            cursor: Cursor::Optional(k as u32),
                        },
                        target.prio,
                    );
                    self.eng.commit_terminate(task, k, self.now);
                }
                let cmd = self.eng.finish_termination(task, self.now);
                self.apply_windup(task, cmd);
            }
        }
    }

    fn on_windup_ready(&mut self, task: usize, seq: u64) {
        if self.eng.windup_ready(task, seq, self.now) {
            self.on_ready(Work {
                task,
                cursor: Cursor::Windup,
            });
        }
    }

    fn on_stall_start(&mut self, hw: usize, duration: Span) {
        self.eng.stall_started(hw, duration, self.now);
        self.cpus[hw].stalled += 1;
        if let Some(r) = self.cpus[hw].running.take() {
            let ran = self.now.saturating_elapsed_since(r.since);
            self.eng.bank(r.work.task, r.work.cursor, ran);
            self.cpus[hw].queue.enqueue_front(r.prio, r.work);
        }
    }

    fn on_stall_end(&mut self, hw: usize) {
        self.cpus[hw].stalled = self.cpus[hw].stalled.saturating_sub(1);
        if self.cpus[hw].stalled == 0 {
            self.resched(hw);
        }
    }

    fn abort_job(&mut self, task: usize) {
        let mand_hw = self.eng.mandatory_hw(task);
        let mand_prio = self.eng.mand_prio(task);
        for cursor in [Cursor::Mandatory, Cursor::Windup] {
            self.stop_work(mand_hw, Work { task, cursor }, mand_prio);
        }
        for k in 0..self.eng.part_count(task) {
            if self.eng.part_ended(task, k) {
                continue;
            }
            let hw = self.eng.placement(task, k);
            let opt_prio = self.eng.opt_prio(task);
            self.stop_work(
                hw,
                Work {
                    task,
                    cursor: Cursor::Optional(k as u32),
                },
                opt_prio,
            );
            self.eng.abort_part(task, k, self.now);
        }
        self.eng.finish_abort(task, self.now);
    }

    fn stop_work(&mut self, hw: usize, work: Work, prio: Priority) {
        let cpu = &mut self.cpus[hw];
        if cpu.running.is_some_and(|r| r.work == work) {
            let r = cpu.running.take().expect("checked");
            let ran = self.now.saturating_elapsed_since(r.since);
            self.eng.bank(work.task, work.cursor, ran);
            self.resched(hw);
        } else if self.cpus[hw].queue.remove(prio, &work) && self.eng.tracing() {
            let job = self.eng.job(work.task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Remove,
                    job,
                    hw: Some(HwThreadId(hw as u32)),
                },
            );
        }
    }

    fn resched(&mut self, hw: usize) {
        if self.cpus[hw].stalled > 0 {
            return;
        }
        if let Some(running) = self.cpus[hw].running {
            let waiting = self.cpus[hw].queue.peek_highest_priority();
            if waiting.is_some_and(|p| p > running.prio) {
                self.cpus[hw].running = None;
                let ran = self.now.saturating_elapsed_since(running.since);
                self.eng.bank(running.work.task, running.work.cursor, ran);
                self.cpus[hw]
                    .queue
                    .enqueue_front(running.prio, running.work);
            } else {
                return;
            }
        }
        let Some((prio, work)) = self.cpus[hw].queue.dequeue_highest() else {
            return;
        };
        if self.eng.tracing() {
            let job = self.eng.job(work.task);
            self.eng.trace(
                self.now,
                TraceEvent::Queue {
                    band: QueueBand::of(prio),
                    op: QueueOp::Dispatch,
                    job,
                    hw: Some(HwThreadId(hw as u32)),
                },
            );
        }
        let remaining = self.eng.on_dispatch(work.task, work.cursor, hw, self.now);
        self.gen_counter += 1;
        let gen = self.gen_counter;
        self.cpus[hw].running = Some(Running {
            work,
            prio,
            since: self.now,
            gen,
        });
        self.events.push(self.now + remaining, Event::Complete { hw, gen });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::TraceConfig;

    fn light(name: &str) -> Vec<TaskSpec> {
        vec![TaskSpec::builder(name)
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(10))
            .windup(Span::from_millis(10))
            .optional_parts(2, Span::from_millis(20))
            .build()
            .unwrap()]
    }

    /// Utilization 0.6 — at most one per hardware thread.
    fn heavy(name: &str) -> Vec<TaskSpec> {
        vec![TaskSpec::builder(name)
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(30))
            .windup(Span::from_millis(30))
            .optional_parts(1, Span::from_millis(10))
            .build()
            .unwrap()]
    }

    fn manager(jobs: u64) -> SessionManager {
        SessionManager::new(
            Topology::quad_core_smt2(),
            PartitionHeuristic::WorstFitDecreasing,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs,
                trace: TraceConfig::enabled(),
                ..Default::default()
            },
        )
    }

    #[test]
    fn priority_mapping_is_monotone_and_in_band() {
        let mut last = Priority::RTQ_MAX.level();
        for exp in 0..12 {
            let p = mandatory_priority_for_period(Span::from_micros(100 << exp));
            assert!(p.is_mandatory_band() && !p.is_hpq(), "{p:?}");
            assert!(p.level() <= last, "longer period may not gain priority");
            last = p.level();
        }
        assert_eq!(
            mandatory_priority_for_period(Span::from_nanos(1)),
            Priority::RTQ_MAX
        );
        // Even an absurdly long period stays inside the RTQ band.
        let floor = mandatory_priority_for_period(Span::from_nanos(u64::MAX));
        assert!(floor.is_mandatory_band() && !floor.is_hpq(), "{floor:?}");
    }

    #[test]
    fn eight_tenants_served_concurrently_with_per_tenant_qos() {
        let mut mgr = manager(4);
        for i in 0..8 {
            mgr.submit(format!("tenant{i}"), &light(&format!("τ{i}")))
                .unwrap();
        }
        assert_eq!(mgr.admitted_tenants(), 8);
        let out = mgr.run();
        assert_eq!(out.counters.admissions, 8);
        assert_eq!(out.outcome.qos.jobs(), 8 * 4);
        assert_eq!(out.outcome.qos.deadline_misses(), 0);
        for i in 0..8 {
            let t = out.tenant(&format!("tenant{i}")).unwrap();
            assert_eq!(t.state, TenantState::Admitted);
            assert_eq!(t.qos.jobs(), 4, "tenant{i}");
            assert_eq!(t.qos.deadline_misses(), 0);
            // The scoped trace sees this tenant's lifecycle and jobs only.
            let tr = out.tenant_trace(t.tenant);
            assert_eq!(
                tr.count(|e| matches!(e, TraceEvent::TenantAdmitted { .. })),
                1
            );
            assert_eq!(
                tr.count(|e| matches!(e, TraceEvent::JobReleased { .. })),
                4
            );
        }
    }

    #[test]
    fn overload_is_rejected_by_admission_not_by_misses() {
        let mut mgr = manager(3);
        for i in 0..8 {
            mgr.submit(format!("t{i}"), &heavy(&format!("h{i}"))).unwrap();
        }
        // The 9th heavy tenant fits on no thread: rejected up front.
        let err = mgr.submit("straw", &heavy("h8")).unwrap_err();
        assert!(matches!(err, AdmissionError::Unschedulable { .. }));
        assert_eq!(mgr.state_of("straw"), Some(TenantState::Rejected));
        assert_eq!(mgr.admitted_tenants(), 8);
        let out = mgr.run();
        assert_eq!(out.counters.rejections, 1);
        // The admitted population still runs clean: the overload never
        // reached the schedule.
        assert_eq!(out.outcome.qos.deadline_misses(), 0);
        let straw = out.tenant("straw").unwrap();
        assert_eq!(straw.state, TenantState::Rejected);
        assert_eq!(straw.qos.jobs(), 0);
        assert_eq!(
            out.tenant_trace(straw.tenant)
                .count(|e| matches!(e, TraceEvent::TenantRejected { .. })),
            1
        );
    }

    #[test]
    fn departure_frees_capacity_for_the_next_tenant() {
        let mut mgr = manager(2);
        for i in 0..8 {
            mgr.submit(format!("t{i}"), &heavy(&format!("h{i}"))).unwrap();
        }
        assert!(mgr.submit("late", &heavy("h8")).is_err());
        assert!(mgr.depart("t3"));
        assert_eq!(mgr.state_of("t3"), Some(TenantState::Departed));
        assert!(mgr.submit("late", &heavy("h8")).is_ok());
        assert_eq!(mgr.admitted_tenants(), 8);
        let out = mgr.run();
        assert_eq!(out.counters.departures, 1);
        // "late" appears twice: first rejected, then admitted — the name
        // lookup returns the latest.
        assert_eq!(out.tenant("late").unwrap().state, TenantState::Admitted);
        assert_eq!(out.tenant("late").unwrap().qos.jobs(), 2);
        // The departed tenant ran no jobs (departed before the run).
        assert_eq!(out.tenant("t3").unwrap().qos.jobs(), 0);
    }

    #[test]
    fn admission_od_deltas_reach_the_running_engine() {
        // Uniprocessor: "lo" alone gets OD 900 ms; admitting "hi" shrinks
        // it to 860 ms, and hi's departure restores it (same numbers as
        // the rtseed-analysis admission tests).
        let lo = vec![TaskSpec::builder("lo")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(100))
            .windup(Span::from_millis(100))
            .optional_parts(1, Span::from_millis(50))
            .build()
            .unwrap()];
        let hi = vec![TaskSpec::builder("hi")
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(10))
            .windup(Span::from_millis(10))
            .build()
            .unwrap()];
        let mut mgr = SessionManager::new(
            Topology::uniprocessor(),
            PartitionHeuristic::FirstFitDecreasing,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 2,
                ..Default::default()
            },
        );
        mgr.submit("lo", &lo).unwrap();
        assert_eq!(mgr.counters().od_updates_applied, 0);
        mgr.submit("hi", &hi).unwrap();
        assert_eq!(mgr.counters().od_updates_applied, 1, "lo's OD shrank");
        assert!(mgr.depart("hi"));
        assert_eq!(mgr.counters().od_updates_applied, 2, "lo's OD grew back");
        let out = mgr.run();
        assert_eq!(out.outcome.qos.deadline_misses(), 0);
    }

    #[test]
    fn churn_replay_is_deterministic() {
        let plan = || {
            ChurnPlan::new()
                .arrive(Time::ZERO, "a", light("a"))
                .arrive(Time::from_nanos(50_000_000), "b", heavy("b"))
                .depart(Time::from_nanos(250_000_000), "a")
                .arrive(Time::from_nanos(300_000_000), "c", light("c"))
        };
        let run = || manager(4).run_with_churn(&plan());
        let x = run();
        let y = run();
        assert_eq!(x.outcome.trace, y.outcome.trace);
        assert_eq!(x.outcome.qos, y.outcome.qos);
        assert_eq!(x.counters, y.counters);
        assert_eq!(x.counters.churn_events, 4);
        assert_eq!(x.counters.admissions, 3);
        assert_eq!(x.counters.departures, 1);
        // "a" departed mid-run: it ran fewer jobs than its quota.
        let a = x.tenant("a").unwrap();
        assert_eq!(a.state, TenantState::Departed);
        assert!(a.qos.jobs() < 4, "departed early: {}", a.qos.jobs());
    }

    #[test]
    fn empty_session_with_no_churn_finishes_immediately() {
        let out = manager(5).run();
        assert_eq!(out.outcome.qos.jobs(), 0);
        assert!(out.tenants.is_empty());
        assert_eq!(out.counters, ServeCounters::default());
    }

    #[test]
    fn mid_run_arrival_starts_fresh_job_stream() {
        // "b" arrives at 150 ms into "a"'s run; both finish their quotas.
        let plan = ChurnPlan::new()
            .arrive(Time::ZERO, "a", light("a"))
            .arrive(Time::from_nanos(150_000_000), "b", light("b"));
        let out = manager(3).run_with_churn(&plan);
        assert_eq!(out.tenant("a").unwrap().qos.jobs(), 3);
        assert_eq!(out.tenant("b").unwrap().qos.jobs(), 3);
        assert_eq!(out.outcome.qos.deadline_misses(), 0);
        // b's first release is at its arrival instant.
        let b = out.tenant("b").unwrap();
        let tr = out.tenant_trace(b.tenant);
        let first = tr
            .first_time(|e| matches!(e, TraceEvent::JobReleased { .. }))
            .unwrap();
        assert_eq!(first, Time::from_nanos(150_000_000));
    }
}
