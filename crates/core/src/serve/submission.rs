//! The unified submission request: one builder-validated type for every
//! way work enters the serving layer.
//!
//! Historically the [`SessionManager`](super::SessionManager) grew three
//! parallel entry points — `submit` (synchronous, no floor),
//! `submit_with_floor`, and `enqueue` (queued with a timeout) — whose
//! argument lists drifted apart as features landed. [`Submission`]
//! collapses them into one request value:
//!
//! ```
//! use rtseed::serve::Submission;
//! use rtseed_model::{QosFloor, Span, TaskSpec};
//!
//! let tasks = vec![TaskSpec::builder("τ")
//!     .period(Span::from_millis(100))
//!     .mandatory(Span::from_millis(10))
//!     .windup(Span::from_millis(10))
//!     .build()?];
//! // Synchronous admission, best-effort QoS:
//! let plain = Submission::new("alpha", tasks.clone());
//! // Queued admission with an SLA floor and a 2 s decision deadline:
//! let queued = Submission::new("beta", tasks)
//!     .floor(QosFloor::fraction(0.5))
//!     .queued(Span::from_secs(2));
//! assert!(plain.queue_timeout().is_none());
//! assert_eq!(queued.queue_timeout(), Some(Span::from_secs(2)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! and [`SessionManager::submit`](super::SessionManager::submit) is the
//! single entry point that consumes it.

use rtseed_model::{QosFloor, Span, TaskSpec};

/// One tenant submission request: the task set plus how it should be
/// admitted. Built with [`Submission::new`] and the chainable
/// [`Submission::floor`] / [`Submission::queued`] modifiers; consumed by
/// [`SessionManager::submit`](super::SessionManager::submit).
#[derive(Debug, Clone)]
pub struct Submission {
    pub(crate) name: String,
    pub(crate) tasks: Vec<TaskSpec>,
    pub(crate) floor: QosFloor,
    pub(crate) queued: Option<Span>,
}

impl Submission {
    /// A synchronous, best-effort submission of `tasks` under `name`:
    /// admission-tested on the spot, no QoS floor (the shedding ladder
    /// may later shrink the tenant's optional deadlines arbitrarily).
    pub fn new(name: impl Into<String>, tasks: impl Into<Vec<TaskSpec>>) -> Submission {
        Submission {
            name: name.into(),
            tasks: tasks.into(),
            floor: QosFloor::none(),
            queued: None,
        }
    }

    /// Declares the tenant's SLA floor: the shedding ladder may shrink
    /// this tenant's optional deadlines to admit newcomers, but never
    /// below `floor` of the admission-time grant.
    pub fn floor(mut self, floor: QosFloor) -> Submission {
        self.floor = floor;
        self
    }

    /// Routes the submission through the bounded submit queue instead of
    /// synchronous admission: batched admission rounds retry retryable
    /// failures with exponential backoff until `timeout` (measured from
    /// the submit instant) expires.
    pub fn queued(mut self, timeout: Span) -> Submission {
        self.queued = Some(timeout);
        self
    }

    /// The tenant name the submission will be recorded under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The submitted task set.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// The declared SLA floor ([`QosFloor::none`] unless
    /// [`Submission::floor`] was called).
    pub fn qos_floor(&self) -> QosFloor {
        self.floor
    }

    /// The queue timeout, or `None` for synchronous admission.
    pub fn queue_timeout(&self) -> Option<Span> {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> TaskSpec {
        let mut b = TaskSpec::builder(name);
        b.period(Span::from_millis(100))
            .mandatory(Span::from_millis(10))
            .windup(Span::from_millis(10));
        b.build().unwrap()
    }

    #[test]
    fn builder_defaults_are_synchronous_best_effort() {
        let s = Submission::new("t", vec![spec("a")]);
        assert_eq!(s.name(), "t");
        assert_eq!(s.tasks().len(), 1);
        assert_eq!(s.qos_floor(), QosFloor::none());
        assert_eq!(s.queue_timeout(), None);
    }

    #[test]
    fn modifiers_chain_and_accept_slices() {
        let tasks = [spec("a"), spec("b")];
        let s = Submission::new("t", &tasks[..])
            .floor(QosFloor::fraction(0.75))
            .queued(Span::from_millis(250));
        assert_eq!(s.tasks().len(), 2);
        assert_eq!(s.qos_floor(), QosFloor::fraction(0.75));
        assert_eq!(s.queue_timeout(), Some(Span::from_millis(250)));
    }
}
