//! Tenant health enforcement: per-tenant violation budgets.
//!
//! The engine reports every job completion of every tenant task as a
//! [`JobSignal`](crate::engine::JobSignal) (deadline met? real-time part
//! overran?). The `HealthTracker` folds that stream into a per-tenant
//! state machine over [`TenantHealth`]:
//!
//! ```text
//! Healthy ─▶ Degraded ─▶ Quarantined ─▶ Evicted
//!    ◀──────────  ◀──────────              (terminal)
//! ```
//!
//! Each **consecutive-violation** budget steps the tenant one rung
//! down; a run of clean jobs ([`HealthPolicy::recover_after`]) steps it
//! one rung up. Quarantine forcibly sheds the tenant's optional parts
//! (its jobs run mandatory + wind-up only, so a misbehaving tenant
//! stops stealing optional bandwidth while keeping its real-time
//! contract); eviction removes the tenant entirely. Every transition is
//! traced as
//! [`TenantHealthChanged`](crate::obs::TraceEvent::TenantHealthChanged).
//!
//! Enforcement is **off by default** ([`HealthPolicy::enabled`]) — a
//! plain serving run behaves exactly as before.

use rtseed_model::{TenantHealth, TenantId};

/// Violation budgets for tenant health enforcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Master switch; `false` (the default) disables the tracker and
    /// the engine's signal collection entirely.
    pub enabled: bool,
    /// Consecutive violations that move `Healthy → Degraded`.
    pub degrade_after: u32,
    /// Further consecutive violations that move `Degraded → Quarantined`.
    pub quarantine_after: u32,
    /// Further consecutive violations that move `Quarantined → Evicted`.
    pub evict_after: u32,
    /// Consecutive clean jobs that move one rung back up
    /// (`Quarantined → Degraded → Healthy`).
    pub recover_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            enabled: false,
            degrade_after: 3,
            quarantine_after: 3,
            evict_after: 3,
            recover_after: 4,
        }
    }
}

impl HealthPolicy {
    /// An enabled policy with the default budgets.
    pub fn enforcing() -> HealthPolicy {
        HealthPolicy {
            enabled: true,
            ..HealthPolicy::default()
        }
    }

    /// The consecutive-violation budget at `rung` (how many more
    /// violations demote from there).
    fn budget(&self, rung: TenantHealth) -> u32 {
        match rung {
            TenantHealth::Healthy => self.degrade_after,
            TenantHealth::Degraded => self.quarantine_after,
            TenantHealth::Quarantined => self.evict_after,
            TenantHealth::Evicted => u32::MAX,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TenantHealthState {
    health: TenantHealth,
    bad_streak: u32,
    clean_streak: u32,
}

impl Default for TenantHealthState {
    fn default() -> TenantHealthState {
        TenantHealthState {
            health: TenantHealth::Healthy,
            bad_streak: 0,
            clean_streak: 0,
        }
    }
}

/// Folds the engine's per-job signals into per-tenant health rungs.
#[derive(Debug, Default)]
pub(crate) struct HealthTracker {
    states: Vec<TenantHealthState>,
}

impl HealthTracker {
    fn state(&mut self, tenant: TenantId) -> &mut TenantHealthState {
        let idx = tenant.0 as usize;
        if idx >= self.states.len() {
            self.states.resize_with(idx + 1, TenantHealthState::default);
        }
        &mut self.states[idx]
    }

    /// The tenant's current rung (`Healthy` if never observed).
    pub(crate) fn health_of(&self, tenant: TenantId) -> TenantHealth {
        self.states
            .get(tenant.0 as usize)
            .map_or(TenantHealth::Healthy, |s| s.health)
    }

    /// Accounts one job completion; returns the `(from, to)` transition
    /// when a budget was crossed. A violation is a missed deadline or a
    /// real-time-part overrun.
    pub(crate) fn note_job(
        &mut self,
        policy: &HealthPolicy,
        tenant: TenantId,
        violation: bool,
    ) -> Option<(TenantHealth, TenantHealth)> {
        let budget = policy.budget(self.health_of(tenant));
        let recover = policy.recover_after.max(1);
        let s = self.state(tenant);
        if s.health.is_terminal() {
            return None;
        }
        if violation {
            s.clean_streak = 0;
            s.bad_streak += 1;
            if s.bad_streak >= budget.max(1) {
                let from = s.health;
                s.health = from.worse();
                s.bad_streak = 0;
                return Some((from, s.health));
            }
        } else {
            s.bad_streak = 0;
            s.clean_streak += 1;
            if s.clean_streak >= recover && s.health != TenantHealth::Healthy {
                let from = s.health;
                s.health = from.better();
                s.clean_streak = 0;
                return Some((from, s.health));
            }
        }
        None
    }

    /// Marks the tenant evicted without a transition report (used when
    /// the serving layer evicts for a non-health reason).
    pub(crate) fn mark_evicted(&mut self, tenant: TenantId) {
        self.state(tenant).health = TenantHealth::Evicted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_down_the_ladder_on_consecutive_violations() {
        let policy = HealthPolicy::enforcing();
        let mut hx = HealthTracker::default();
        let t = TenantId(0);
        let mut transitions = Vec::new();
        for _ in 0..9 {
            if let Some(tr) = hx.note_job(&policy, t, true) {
                transitions.push(tr);
            }
        }
        assert_eq!(
            transitions,
            vec![
                (TenantHealth::Healthy, TenantHealth::Degraded),
                (TenantHealth::Degraded, TenantHealth::Quarantined),
                (TenantHealth::Quarantined, TenantHealth::Evicted),
            ]
        );
        assert_eq!(hx.health_of(t), TenantHealth::Evicted);
        // Terminal: further signals change nothing.
        assert_eq!(hx.note_job(&policy, t, true), None);
        assert_eq!(hx.note_job(&policy, t, false), None);
    }

    #[test]
    fn clean_jobs_recover_one_rung_at_a_time() {
        let policy = HealthPolicy::enforcing();
        let mut hx = HealthTracker::default();
        let t = TenantId(1);
        for _ in 0..6 {
            hx.note_job(&policy, t, true);
        }
        assert_eq!(hx.health_of(t), TenantHealth::Quarantined);
        let mut ups = Vec::new();
        for _ in 0..8 {
            if let Some(tr) = hx.note_job(&policy, t, false) {
                ups.push(tr);
            }
        }
        assert_eq!(
            ups,
            vec![
                (TenantHealth::Quarantined, TenantHealth::Degraded),
                (TenantHealth::Degraded, TenantHealth::Healthy),
            ]
        );
    }

    #[test]
    fn a_clean_job_resets_the_violation_streak() {
        let policy = HealthPolicy::enforcing();
        let mut hx = HealthTracker::default();
        let t = TenantId(2);
        for _ in 0..2 {
            hx.note_job(&policy, t, true);
        }
        hx.note_job(&policy, t, false);
        for _ in 0..2 {
            assert_eq!(hx.note_job(&policy, t, true), None);
        }
        assert_eq!(hx.health_of(t), TenantHealth::Healthy, "streak was reset");
    }
}
