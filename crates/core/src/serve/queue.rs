//! Admission backpressure: the bounded submit queue.
//!
//! Direct [`SessionManager::submit`](super::SessionManager::submit) is
//! synchronous — an infeasible submission is rejected on the spot. Under
//! churn that wastes arrivals: a submission that fails *now* may fit a
//! few hundred milliseconds later once a resident departs. The
//! `SubmitQueue` decouples arrival from admission:
//!
//! * submissions enter a **bounded** FIFO queue (over capacity ⇒
//!   [`ServeError::QueueFull`](super::ServeError::QueueFull) — the
//!   caller sheds load, the queue never grows without bound);
//! * the serving layer drains the queue in **batched admission rounds**
//!   at discrete instants, so same-instant bursts are admitted in one
//!   deterministic sweep;
//! * each request carries an absolute **deadline**; a request that
//!   cannot be admitted in time is dropped, never admitted late;
//! * a failed attempt gets a typed verdict ([`Rejected`]):
//!   `Permanent` failures (the set fits no thread even on an idle
//!   system) are rejected immediately, `Retryable` failures (blocked
//!   only by current residents) re-queue with exponential backoff.

use rtseed_model::{QosFloor, Span, TaskSpec, TenantId, Time};

/// Why an admission attempt for a queued request failed, and what the
/// queue does about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The task set fits no hardware thread even on an otherwise idle
    /// system — waiting cannot help, the request is rejected now.
    Permanent,
    /// The set is feasible in isolation but not against the current
    /// residents; the request retries after the backoff delay.
    Retryable {
        /// How long the request backs off before its next attempt.
        after: Span,
    },
}

/// Tuning for the bounded submit queue (admission backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum queued requests; submissions over this are refused with
    /// [`ServeError::QueueFull`](super::ServeError::QueueFull).
    pub capacity: usize,
    /// Backoff after the first failed attempt; attempt `n` waits
    /// `retry_base × 2^(n−1)`, capped at [`QueueConfig::retry_cap`].
    pub retry_base: Span,
    /// Upper bound on the exponential backoff.
    pub retry_cap: Span,
    /// Attempts after which a still-blocked request expires.
    pub max_retries: u32,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            capacity: 64,
            retry_base: Span::from_millis(50),
            retry_cap: Span::from_millis(800),
            max_retries: 8,
        }
    }
}

impl QueueConfig {
    /// The backoff before attempt `attempts + 1`, i.e. after `attempts`
    /// failed attempts: `retry_base × 2^(attempts−1)` capped at
    /// `retry_cap`.
    pub fn backoff(&self, attempts: u32) -> Span {
        let shift = attempts.saturating_sub(1).min(20);
        self.retry_base
            .checked_mul(1u64 << shift)
            .unwrap_or(self.retry_cap)
            .min(self.retry_cap)
    }
}

/// One queued submission awaiting an admission round.
#[derive(Debug, Clone)]
pub(crate) struct QueuedRequest {
    /// The tenant record created at enqueue time (state `Pending`).
    pub tenant: TenantId,
    /// The submitted task set.
    pub tasks: Vec<TaskSpec>,
    /// The tenant's SLA floor, applied to every task in the set.
    pub floor: QosFloor,
    /// Absolute expiry: past this instant the request is dropped.
    pub deadline: Time,
    /// Admission attempts consumed so far.
    pub attempts: u32,
    /// Backoff gate: the request is not retried before this instant.
    pub not_before: Time,
}

/// The bounded FIFO of pending submissions.
#[derive(Debug, Default)]
pub(crate) struct SubmitQueue {
    items: Vec<QueuedRequest>,
}

impl SubmitQueue {
    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    /// Appends a request; `false` when the queue is at `capacity`.
    pub(crate) fn push(&mut self, cfg: &QueueConfig, req: QueuedRequest) -> bool {
        if self.items.len() >= cfg.capacity {
            return false;
        }
        self.items.push(req);
        true
    }

    /// Removes and returns the requests eligible at `now` (backoff gate
    /// passed), preserving FIFO order. Ineligible requests stay queued.
    pub(crate) fn take_ready(&mut self, now: Time) -> Vec<QueuedRequest> {
        let mut ready = Vec::new();
        self.items.retain(|r| {
            if r.not_before <= now {
                ready.push(r.clone());
                false
            } else {
                true
            }
        });
        ready
    }

    /// Re-queues a retryable request (attempt count and backoff gate
    /// already updated by the caller).
    pub(crate) fn requeue(&mut self, req: QueuedRequest) {
        self.items.push(req);
    }

    /// The earliest backoff gate among queued requests, if any.
    pub(crate) fn next_eligible(&self) -> Option<Time> {
        self.items.iter().map(|r| r.not_before).min()
    }

    /// Lifts every backoff gate to `now` — used when a departure frees
    /// capacity, which is new information worth retrying for
    /// immediately.
    pub(crate) fn wake(&mut self, now: Time) {
        for r in &mut self.items {
            r.not_before = r.not_before.min(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = QueueConfig::default();
        assert_eq!(cfg.backoff(1), Span::from_millis(50));
        assert_eq!(cfg.backoff(2), Span::from_millis(100));
        assert_eq!(cfg.backoff(3), Span::from_millis(200));
        assert_eq!(cfg.backoff(4), Span::from_millis(400));
        assert_eq!(cfg.backoff(5), Span::from_millis(800));
        assert_eq!(cfg.backoff(6), Span::from_millis(800), "capped");
        assert_eq!(cfg.backoff(60), Span::from_millis(800), "shift clamped");
    }

    #[test]
    fn queue_is_bounded_and_fifo() {
        let cfg = QueueConfig {
            capacity: 2,
            ..QueueConfig::default()
        };
        let req = |tenant: u32, not_before: u64| QueuedRequest {
            tenant: TenantId(tenant),
            tasks: Vec::new(),
            floor: QosFloor::none(),
            deadline: Time::MAX,
            attempts: 0,
            not_before: Time::from_nanos(not_before),
        };
        let mut q = SubmitQueue::default();
        assert!(q.push(&cfg, req(0, 0)));
        assert!(q.push(&cfg, req(1, 500)));
        assert!(!q.push(&cfg, req(2, 0)), "over capacity");
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_eligible(), Some(Time::ZERO));

        let ready = q.take_ready(Time::from_nanos(100));
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].tenant, TenantId(0));
        assert_eq!(q.len(), 1, "backoff-gated request stays queued");
        assert_eq!(q.next_eligible(), Some(Time::from_nanos(500)));
    }
}
