//! The QoS shedding ladder: staged admission against per-tenant floors.
//!
//! Under RMWP the optional deadline is an *output* of the response-time
//! analysis (`OD = D − R^w`), so "shedding a resident's QoS" cannot make
//! an infeasible newcomer feasible by itself — feasibility depends only
//! on mandatory/wind-up interference. What shedding *can* do is widen
//! the placement search: a bin whose residents' analyzed ODs would
//! shrink is normally unattractive, and the serving layer refuses any
//! placement that would push a resident below its contractual
//! [`QosFloor`](rtseed_model::QosFloor).
//!
//! The ladder stages that refusal. Stage `0` of `S` demands that no
//! resident's analyzed OD drop below its currently **deployed** OD (no
//! shedding at all); the final stage `S` relaxes each resident's bound
//! all the way to its **floor**; intermediate stages interpolate
//! linearly. Admission tries stage 0 first and walks down, so the first
//! feasible stage is the one that sheds the *least* — and by
//! construction no resident is ever pushed below its floor.
//!
//! Restores ride the same bookkeeping in the opposite direction: a
//! departure grows survivors' analyzed ODs, and the ladder re-deploys
//! the larger OD only after a hysteresis window (see
//! `PendingRestore`), so an arrive/depart flap does not thrash the
//! engine's timers.

use rtseed_analysis::TaskKey;
use rtseed_model::{Span, Time};

/// A resident's OD bookkeeping as the ladder sees it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LadderEntry {
    /// Admission-controller handle of the resident task.
    pub key: TaskKey,
    /// The OD currently programmed into the engine.
    pub deployed: Span,
    /// The tenant's contractual floor for this task (absolute OD).
    pub floor: Span,
}

/// The per-resident OD lower bounds for ladder stage `stage` of
/// `stages`: stage 0 bounds each resident at its deployed OD (no shed),
/// the final stage bounds it at its floor, intermediate stages
/// interpolate. `deployed < floor` never arises (deployed ODs are
/// floor-checked at shed time) but is clamped defensively.
pub(crate) fn stage_bounds(
    entries: &[LadderEntry],
    stage: u32,
    stages: u32,
) -> Vec<(TaskKey, Span)> {
    let stages = stages.max(1);
    let stage = stage.min(stages);
    entries
        .iter()
        .map(|e| {
            let headroom = e.deployed.saturating_sub(e.floor);
            let give = headroom.mul_f64(stage as f64 / stages as f64);
            let bound = e.deployed.saturating_sub(give).max(e.floor);
            (e.key, bound)
        })
        .collect()
}

/// A deferred OD growth: the analysis granted a resident a larger OD
/// (after a departure), to be deployed once the hysteresis window
/// passes — unless a later shrink supersedes it first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingRestore {
    /// The resident to restore.
    pub key: TaskKey,
    /// When the restore becomes applicable.
    pub due: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> TaskKey {
        TaskKey(i)
    }

    #[test]
    fn stage_zero_bounds_at_deployed_final_at_floor() {
        let entries = [LadderEntry {
            key: key(0),
            deployed: Span::from_millis(900),
            floor: Span::from_millis(500),
        }];
        let s0 = stage_bounds(&entries, 0, 4);
        assert_eq!(s0[0].1, Span::from_millis(900));
        let s4 = stage_bounds(&entries, 4, 4);
        assert_eq!(s4[0].1, Span::from_millis(500));
        // Linear in between: stage 2 of 4 gives half the headroom.
        let s2 = stage_bounds(&entries, 2, 4);
        assert_eq!(s2[0].1, Span::from_millis(700));
    }

    #[test]
    fn bounds_never_cross_the_floor() {
        let entries = [LadderEntry {
            key: key(1),
            deployed: Span::from_millis(400),
            floor: Span::from_millis(600), // pathological: deployed < floor
        }];
        for stage in 0..=4 {
            let b = stage_bounds(&entries, stage, 4);
            assert!(b[0].1 >= Span::from_millis(600), "stage {stage}");
        }
    }
}
