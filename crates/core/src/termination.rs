//! Termination mechanisms for parallel optional parts (paper §IV-D,
//! Table I).
//!
//! The paper compares three user-space implementations of terminating an
//! optional part when its optional-deadline timer fires:
//!
//! | Implementation | Any-time termination | Signal-mask restoration |
//! |---|---|---|
//! | `sigsetjmp`/`siglongjmp` + one-shot timer | ✓ | ✓ |
//! | Periodic check (no timer) | ✗ | (unnecessary) |
//! | C++ `try`-`catch` + one-shot timer | ✓ | ✗ |
//!
//! The `try`-`catch` defect is subtle: the handler longjmp-less unwind does
//! not restore the signal mask, so "the timer interrupt of the next job
//! does not occur" — every later job's optional parts then run unchecked.
//!
//! **Rust substitution note (DESIGN.md).** Safe Rust cannot `siglongjmp`
//! across frames (it would skip destructors), so:
//!
//! * the **simulator** backend models `SigjmpTimer` exactly (termination at
//!   the deadline, timer always re-armed),
//! * the **native** backend offers [`TerminationMode::PeriodicCheck`]
//!   (cooperative checkpoints) and [`TerminationMode::UnwindCatch`]
//!   (a panic-unwind raised at a checkpoint, the `try`-`catch` analogue —
//!   implemented correctly, without the signal-mask defect), and
//! * the simulator can *inject* the paper's `try`-`catch` defect
//!   ([`TerminationMode::UnwindCatch`] with
//!   [`TerminationMode::models_signal_mask_defect`]) to reproduce Table I's
//!   consequences behaviorally.

use core::fmt;

use rtseed_model::{Span, Time};
use serde::{Deserialize, Serialize};

/// How optional parts are terminated at the optional deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminationMode {
    /// `sigsetjmp`/`siglongjmp` with a one-shot optional-deadline timer
    /// (the paper's recommended mechanism, Fig. 7): terminates at any
    /// time and restores the signal mask.
    SigjmpTimer,
    /// Cooperative periodic checking of the deadline without a timer:
    /// terminates only at the next checkpoint, degrading QoS-to-deadline
    /// precision by up to `interval`.
    PeriodicCheck {
        /// Worst-case distance between two checkpoints.
        interval: Span,
    },
    /// `try`-`catch` (native: `panic::catch_unwind`) with a one-shot
    /// timer: terminates at any time but — as the paper observes for C++ —
    /// does not restore the signal mask, so the *next* job's timer never
    /// fires.
    UnwindCatch,
}

impl TerminationMode {
    /// `true` if optional parts can be cut at any instruction (Table I,
    /// column "Any Time Termination").
    pub const fn any_time_termination(self) -> bool {
        matches!(
            self,
            TerminationMode::SigjmpTimer | TerminationMode::UnwindCatch
        )
    }

    /// Table I, column "Signal Mask Restoration": `Some(true)` restored,
    /// `Some(false)` *not* restored (the `try`-`catch` defect), `None`
    /// unnecessary (no timer signal is used at all).
    pub const fn restores_signal_mask(self) -> Option<bool> {
        match self {
            TerminationMode::SigjmpTimer => Some(true),
            TerminationMode::PeriodicCheck { .. } => None,
            TerminationMode::UnwindCatch => Some(false),
        }
    }

    /// `true` if the simulator should model the broken-timer consequence
    /// of a non-restored signal mask (all jobs after the first lose their
    /// optional-deadline timer).
    pub const fn models_signal_mask_defect(self) -> bool {
        matches!(self.restores_signal_mask(), Some(false))
    }

    /// The extra delay past the optional deadline before a *running*
    /// optional part that started at `started` actually terminates when
    /// the deadline fires at `od`.
    ///
    /// * any-time modes: zero;
    /// * periodic check: the remainder until the part's next checkpoint
    ///   (checkpoints every `interval` from its start).
    pub fn termination_lag(self, started: Time, od: Time) -> Span {
        match self {
            TerminationMode::SigjmpTimer | TerminationMode::UnwindCatch => Span::ZERO,
            TerminationMode::PeriodicCheck { interval } => {
                if interval.is_zero() {
                    return Span::ZERO;
                }
                let ran = od.saturating_elapsed_since(started);
                let into = ran % interval;
                if into.is_zero() {
                    Span::ZERO
                } else {
                    interval - into
                }
            }
        }
    }

    /// Short label for harness output.
    pub const fn label(self) -> &'static str {
        match self {
            TerminationMode::SigjmpTimer => "sigsetjmp/siglongjmp",
            TerminationMode::PeriodicCheck { .. } => "periodic-check",
            TerminationMode::UnwindCatch => "try-catch",
        }
    }
}

impl fmt::Display for TerminationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationMode::PeriodicCheck { interval } => {
                write!(f, "periodic-check({interval})")
            }
            other => f.write_str(other.label()),
        }
    }
}

/// Renders the paper's Table I as text (used by the `table1_termination`
/// harness).
pub fn render_table1() -> String {
    let rows = [
        TerminationMode::SigjmpTimer,
        TerminationMode::PeriodicCheck {
            interval: Span::from_millis(1),
        },
        TerminationMode::UnwindCatch,
    ];
    let mut out = String::from(
        "Implementation            | Any Time Termination | Signal Mask Restoration\n\
         --------------------------+----------------------+------------------------\n",
    );
    for mode in rows {
        let any = if mode.any_time_termination() { "X" } else { "" };
        let mask = match mode.restores_signal_mask() {
            Some(true) => "X",
            Some(false) => "",
            None => "(unnecessary)",
        };
        out.push_str(&format!("{:<26}| {:<21}| {}\n", mode.label(), any, mask));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matrix() {
        assert!(TerminationMode::SigjmpTimer.any_time_termination());
        assert_eq!(
            TerminationMode::SigjmpTimer.restores_signal_mask(),
            Some(true)
        );

        let pc = TerminationMode::PeriodicCheck {
            interval: Span::from_millis(1),
        };
        assert!(!pc.any_time_termination());
        assert_eq!(pc.restores_signal_mask(), None);

        assert!(TerminationMode::UnwindCatch.any_time_termination());
        assert_eq!(
            TerminationMode::UnwindCatch.restores_signal_mask(),
            Some(false)
        );
        assert!(TerminationMode::UnwindCatch.models_signal_mask_defect());
        assert!(!TerminationMode::SigjmpTimer.models_signal_mask_defect());
    }

    #[test]
    fn any_time_modes_have_zero_lag() {
        let s = Time::from_nanos(100);
        let od = Time::from_nanos(10_500);
        assert_eq!(
            TerminationMode::SigjmpTimer.termination_lag(s, od),
            Span::ZERO
        );
        assert_eq!(
            TerminationMode::UnwindCatch.termination_lag(s, od),
            Span::ZERO
        );
    }

    #[test]
    fn periodic_check_lag_rounds_to_next_checkpoint() {
        let mode = TerminationMode::PeriodicCheck {
            interval: Span::from_millis(10),
        };
        let start = Time::ZERO;
        // Ran 25 ms when OD fires → next checkpoint at 30 ms → lag 5 ms.
        let od = Time::ZERO + Span::from_millis(25);
        assert_eq!(mode.termination_lag(start, od), Span::from_millis(5));
        // Exactly on a checkpoint → no lag.
        let od2 = Time::ZERO + Span::from_millis(30);
        assert_eq!(mode.termination_lag(start, od2), Span::ZERO);
        // OD before the part even started → checkpoint at start: no lag.
        let late_start = Time::ZERO + Span::from_millis(100);
        assert_eq!(mode.termination_lag(late_start, od2), Span::ZERO);
    }

    #[test]
    fn zero_interval_is_continuous_checking() {
        let mode = TerminationMode::PeriodicCheck {
            interval: Span::ZERO,
        };
        assert_eq!(
            mode.termination_lag(Time::ZERO, Time::from_nanos(123)),
            Span::ZERO
        );
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(TerminationMode::SigjmpTimer.to_string(), "sigsetjmp/siglongjmp");
        assert_eq!(
            TerminationMode::PeriodicCheck {
                interval: Span::from_millis(1)
            }
            .to_string(),
            "periodic-check(1ms)"
        );
        assert_eq!(TerminationMode::UnwindCatch.to_string(), "try-catch");
    }

    #[test]
    fn table_render_matches_paper_shape() {
        let t = render_table1();
        assert!(t.contains("sigsetjmp/siglongjmp"), "{t}");
        assert!(t.contains("periodic-check"), "{t}");
        assert!(t.contains("try-catch"), "{t}");
        assert!(t.contains("(unnecessary)"), "{t}");
        // Exactly the sigsetjmp row has both check marks.
        let sig_row = t.lines().find(|l| l.starts_with("sigsetjmp")).unwrap();
        assert_eq!(sig_row.matches('X').count(), 2, "{sig_row}");
        let tc_row = t.lines().find(|l| l.starts_with("try-catch")).unwrap();
        assert_eq!(tc_row.matches('X').count(), 1, "{tc_row}");
    }
}
