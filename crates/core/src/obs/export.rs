//! Trace exporters: JSONL and Chrome trace-event format.
//!
//! Both exporters are pure functions of the trace (and metrics), built on
//! integer timestamps, so the same seed yields byte-identical output —
//! the golden-trace tests rely on this.
//!
//! * [`jsonl`] — one JSON object per line; the first line is a meta
//!   record with the event count and ring-drop count. Easy to grep and
//!   to post-process with `jq`.
//! * [`chrome_trace`] — the Chrome trace-event format (the JSON object
//!   form), loadable in Perfetto or `chrome://tracing`. Part executions
//!   become complete ("X") slices grouped by task (pid) and hardware
//!   thread (tid); everything else becomes instant ("i") events; the
//!   `otherData` section embeds the Δm/Δb/Δs/Δe, response-time, jitter
//!   and QoS histogram summaries from the [`MetricsRegistry`].

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use rtseed_model::{HwThreadId, JobId, Time};
use rtseed_sim::{OverheadKind, TimerFault};

use super::{Histogram, MetricsRegistry, Trace, TraceEvent, QOS_PPM};

/// Escapes `s` as the contents of a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_job(out: &mut String, job: JobId) {
    let _ = write!(out, "\"task\":{},\"seq\":{}", job.task.0, job.seq);
}

/// Appends the event-specific fields (without braces) to `out`.
fn push_fields(out: &mut String, event: &TraceEvent) {
    match event {
        TraceEvent::JobReleased { job }
        | TraceEvent::MandatoryCompleted { job }
        | TraceEvent::WindupStarted { job }
        | TraceEvent::OptionalDeadlineExpired { job }
        | TraceEvent::TimerCancelled { job }
        | TraceEvent::JobCancelled { job }
        | TraceEvent::TaskQuarantined { job } => push_job(out, *job),
        TraceEvent::MandatoryStarted { job, hw } => {
            push_job(out, *job);
            let _ = write!(out, ",\"hw\":{}", hw.0);
        }
        TraceEvent::OptionalStarted { job, part, hw } => {
            push_job(out, *job);
            let _ = write!(out, ",\"part\":{},\"hw\":{}", part.0, hw.0);
        }
        TraceEvent::OptionalEnded {
            job,
            part,
            outcome,
            achieved,
        } => {
            push_job(out, *job);
            let _ = write!(
                out,
                ",\"part\":{},\"outcome\":\"{:?}\",\"achieved_ns\":{}",
                part.0,
                outcome,
                achieved.as_nanos()
            );
        }
        TraceEvent::WindupCompleted { job, deadline_met } => {
            push_job(out, *job);
            let _ = write!(out, ",\"deadline_met\":{deadline_met}");
        }
        TraceEvent::Queue { band, op, job, hw } => {
            let _ = write!(out, "\"band\":\"{}\",\"op\":\"{}\",", band.name(), op.name());
            push_job(out, *job);
            if let Some(hw) = hw {
                let _ = write!(out, ",\"hw\":{}", hw.0);
            }
        }
        TraceEvent::TimerArmed { job, at } => {
            push_job(out, *job);
            let _ = write!(out, ",\"at_ns\":{}", at.as_nanos());
        }
        TraceEvent::PolicyDecision {
            task,
            policy,
            parts,
            distinct_cores,
        } => {
            let _ = write!(out, "\"task\":{},\"policy\":\"", task.0);
            escape_into(out, policy);
            let _ = write!(
                out,
                "\",\"parts\":{parts},\"distinct_cores\":{distinct_cores}"
            );
        }
        TraceEvent::Migrated { job, from, to } => {
            push_job(out, *job);
            let _ = write!(out, ",\"from\":{},\"to\":{}", from.0, to.0);
        }
        TraceEvent::WcetFaultInjected {
            job,
            target,
            factor,
        } => {
            push_job(out, *job);
            let _ = write!(out, ",\"target\":\"{target:?}\",\"factor\":{factor}");
        }
        TraceEvent::TimerFaultInjected { job, fault } => {
            push_job(out, *job);
            match fault {
                TimerFault::Delay(by) => {
                    let _ = write!(
                        out,
                        ",\"fault\":\"delay\",\"delay_ns\":{}",
                        by.as_nanos()
                    );
                }
                TimerFault::Lost => out.push_str(",\"fault\":\"lost\""),
            }
        }
        TraceEvent::CpuStallStarted { hw, duration } => {
            let _ = write!(
                out,
                "\"hw\":{},\"duration_ns\":{}",
                hw.0,
                duration.as_nanos()
            );
        }
        TraceEvent::BudgetCut { job, target } => {
            push_job(out, *job);
            let _ = write!(out, ",\"target\":\"{target:?}\"");
        }
        TraceEvent::DegradedModeEntered | TraceEvent::DegradedModeExited => {}
        TraceEvent::PipelineStage { cycle, stage, part } => {
            let _ = write!(out, "\"cycle\":{cycle},\"stage\":\"{}\"", stage.name());
            if let Some(part) = part {
                let _ = write!(out, ",\"part\":{}", part.0);
            }
        }
        TraceEvent::TenantAdmitted { tenant, tasks } => {
            let _ = write!(out, "\"tenant\":{},\"tasks\":{tasks}", tenant.0);
        }
        TraceEvent::TenantRejected { tenant }
        | TraceEvent::TenantDeparted { tenant }
        | TraceEvent::TenantDepartIgnored { tenant }
        | TraceEvent::TenantEvicted { tenant }
        | TraceEvent::SubmissionQueued { tenant }
        | TraceEvent::SubmissionExpired { tenant } => {
            let _ = write!(out, "\"tenant\":{}", tenant.0);
        }
        TraceEvent::QosShed {
            tenant,
            task,
            od,
            floor,
        } => {
            let _ = write!(
                out,
                "\"tenant\":{},\"task\":{},\"od_ns\":{},\"floor_ns\":{}",
                tenant.0,
                task.0,
                od.as_nanos(),
                floor.as_nanos()
            );
        }
        TraceEvent::QosRestored { tenant, task, od } => {
            let _ = write!(
                out,
                "\"tenant\":{},\"task\":{},\"od_ns\":{}",
                tenant.0,
                task.0,
                od.as_nanos()
            );
        }
        TraceEvent::TenantHealthChanged { tenant, from, to } => {
            let _ = write!(
                out,
                "\"tenant\":{},\"from\":\"{from}\",\"to\":\"{to}\"",
                tenant.0
            );
        }
        TraceEvent::SubmissionRetried {
            tenant,
            attempt,
            after,
        } => {
            let _ = write!(
                out,
                "\"tenant\":{},\"attempt\":{attempt},\"after_ns\":{}",
                tenant.0,
                after.as_nanos()
            );
        }
    }
}

/// Exports a trace as JSON Lines: a meta record, then one object per
/// event in time order.
pub fn jsonl(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 * (trace.len() + 1));
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"format\":\"rtseed-trace\",\"version\":1,\"events\":{},\"dropped\":{}}}",
        trace.len(),
        trace.dropped()
    );
    for (t, e) in trace.events() {
        let _ = write!(out, "{{\"t_ns\":{},\"ev\":\"{}\"", t.as_nanos(), e.name());
        let mut fields = String::new();
        push_fields(&mut fields, e);
        if !fields.is_empty() {
            out.push(',');
            out.push_str(&fields);
        }
        out.push_str("}\n");
    }
    out
}

/// Appends a Chrome ts value (microseconds with nanosecond precision).
fn push_ts(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn push_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = write!(
        out,
        "\"{name}\":{{\"count\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"p99_bound_ns\":{}}}",
        h.count(),
        h.mean(),
        h.min(),
        h.max(),
        h.quantile_bound(0.99)
    );
}

/// Chrome trace-event slice bookkeeping: one open span per (job, lane).
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum Lane {
    Mandatory,
    Optional(u32),
    Windup,
}

/// Exports a trace (plus the run's metric summaries) in the Chrome
/// trace-event format. Open the result in Perfetto (`ui.perfetto.dev`)
/// or `chrome://tracing`: rows are grouped by task, slices are part
/// executions, instants are releases/timers/faults/queue operations.
pub fn chrome_trace(trace: &Trace, metrics: &MetricsRegistry) -> String {
    let mut out = String::with_capacity(128 * (trace.len() + 8));
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut open: HashMap<(JobId, Lane), (Time, HwThreadId)> = HashMap::new();
    let mut mandatory_hw: HashMap<JobId, HwThreadId> = HashMap::new();

    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    for (t, e) in trace.events() {
        match e {
            TraceEvent::MandatoryStarted { job, hw } => {
                open.insert((*job, Lane::Mandatory), (*t, *hw));
                mandatory_hw.insert(*job, *hw);
            }
            TraceEvent::OptionalStarted { job, part, hw } => {
                open.insert((*job, Lane::Optional(part.0)), (*t, *hw));
            }
            TraceEvent::WindupStarted { job } => {
                let hw = mandatory_hw
                    .get(job)
                    .copied()
                    .unwrap_or(HwThreadId(0));
                open.insert((*job, Lane::Windup), (*t, hw));
            }
            TraceEvent::MandatoryCompleted { job }
            | TraceEvent::OptionalEnded { job, .. }
            | TraceEvent::WindupCompleted { job, .. } => {
                let (lane, name) = match e {
                    TraceEvent::MandatoryCompleted { .. } => {
                        (Lane::Mandatory, "mandatory".to_string())
                    }
                    TraceEvent::OptionalEnded { part, outcome, .. } => (
                        Lane::Optional(part.0),
                        format!("optional[{}] {:?}", part.0, outcome),
                    ),
                    _ => (Lane::Windup, "wind-up".to_string()),
                };
                if let Some((start, hw)) = open.remove(&(*job, lane)) {
                    sep(&mut out);
                    let _ = write!(out, "{{\"name\":\"");
                    escape_into(&mut out, &name);
                    let _ = write!(
                        out,
                        " {}\",\"cat\":\"part\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":",
                        job, job.task.0, hw.0
                    );
                    push_ts(&mut out, start.as_nanos());
                    out.push_str(",\"dur\":");
                    push_ts(&mut out, t.as_nanos() - start.as_nanos());
                    out.push('}');
                }
            }
            _ => {
                // Everything else is an instant with the JSONL fields as args.
                sep(&mut out);
                let pid = e.job().map_or(0, |j| j.task.0);
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":0,\"ts\":",
                    e.name()
                );
                push_ts(&mut out, t.as_nanos());
                out.push_str(",\"args\":{");
                push_fields(&mut out, e);
                out.push_str("}}");
            }
        }
    }

    out.push_str("],\"otherData\":{");
    let _ = write!(out, "\"dropped\":{},\"overheads\":{{", trace.dropped());
    for (i, kind) in OverheadKind::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_histogram(&mut out, kind.symbol(), metrics.overhead(*kind));
    }
    out.push_str("},");
    push_histogram(&mut out, "response_time", metrics.response_time());
    out.push(',');
    push_histogram(&mut out, "release_jitter", metrics.release_jitter());
    let q = metrics.qos_level();
    let _ = write!(
        out,
        ",\"qos_level\":{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
        q.count(),
        q.mean() as f64 / QOS_PPM as f64,
        q.min() as f64 / QOS_PPM as f64,
        q.max() as f64 / QOS_PPM as f64
    );
    out.push_str("}}");
    out
}

/// Writes [`jsonl`] output to `path`.
///
/// # Errors
///
/// Propagates I/O errors from writing the file.
pub fn write_jsonl(path: impl AsRef<Path>, trace: &Trace) -> io::Result<()> {
    std::fs::write(path, jsonl(trace))
}

/// Writes [`chrome_trace`] output to `path`.
///
/// # Errors
///
/// Propagates I/O errors from writing the file.
pub fn write_chrome_trace(
    path: impl AsRef<Path>,
    trace: &Trace,
    metrics: &MetricsRegistry,
) -> io::Result<()> {
    std::fs::write(path, chrome_trace(trace, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::{OptionalOutcome, PartId, Span, TaskId};

    fn job(seq: u64) -> JobId {
        JobId {
            task: TaskId(0),
            seq,
        }
    }

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    fn sample_trace() -> Trace {
        let mut tr = Trace::new();
        tr.record(t(0), TraceEvent::JobReleased { job: job(0) });
        tr.record(
            t(100),
            TraceEvent::MandatoryStarted {
                job: job(0),
                hw: HwThreadId(3),
            },
        );
        tr.record(t(900), TraceEvent::MandatoryCompleted { job: job(0) });
        tr.record(
            t(950),
            TraceEvent::OptionalStarted {
                job: job(0),
                part: PartId(0),
                hw: HwThreadId(4),
            },
        );
        tr.record(
            t(1950),
            TraceEvent::OptionalEnded {
                job: job(0),
                part: PartId(0),
                outcome: OptionalOutcome::Completed,
                achieved: Span::from_nanos(1000),
            },
        );
        tr.record(t(2000), TraceEvent::WindupStarted { job: job(0) });
        tr.record(
            t(2500),
            TraceEvent::WindupCompleted {
                job: job(0),
                deadline_met: true,
            },
        );
        tr
    }

    #[test]
    fn jsonl_has_meta_then_one_line_per_event() {
        let tr = sample_trace();
        let text = jsonl(&tr);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), tr.len() + 1);
        assert!(lines[0].contains("\"type\":\"meta\""), "{}", lines[0]);
        assert!(lines[0].contains("\"events\":7"), "{}", lines[0]);
        assert!(lines[1].contains("\"ev\":\"job_released\""), "{}", lines[1]);
        assert!(
            lines[2].contains("\"hw\":3") && lines[2].contains("\"t_ns\":100"),
            "{}",
            lines[2]
        );
        // Every line is a braces-wrapped object.
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn chrome_trace_pairs_parts_into_slices() {
        let tr = sample_trace();
        let json = chrome_trace(&tr, &MetricsRegistry::new());
        // Mandatory: 100 → 900 ns = ts 0.100 µs, dur 0.800 µs.
        assert!(json.contains("\"ts\":0.100,\"dur\":0.800"), "{json}");
        assert!(json.contains("mandatory τ1#0"), "{json}");
        assert!(json.contains("optional[0] Completed τ1#0"), "{json}");
        // Wind-up inherits the mandatory hw thread (tid 3).
        assert!(json.contains("wind-up τ1#0\",\"cat\":\"part\",\"ph\":\"X\",\"pid\":0,\"tid\":3"),
            "{json}");
        // The release is an instant event.
        assert!(json.contains("\"name\":\"job_released\",\"cat\":\"event\",\"ph\":\"i\""),
            "{json}");
    }

    #[test]
    fn chrome_trace_embeds_metric_summaries() {
        let mut m = MetricsRegistry::new();
        m.record_overhead(OverheadKind::BeginMandatory, Span::from_nanos(2_000));
        m.record_overhead(OverheadKind::BeginMandatory, Span::from_nanos(4_000));
        m.record_qos_level(1.0);
        let json = chrome_trace(&Trace::new(), &m);
        assert!(
            json.contains("\"Δm\":{\"count\":2,\"mean_ns\":3000,\"min_ns\":2000,\"max_ns\":4000"),
            "{json}"
        );
        assert!(json.contains("\"qos_level\":{\"count\":1,\"mean\":1,"), "{json}");
        assert!(json.contains("\"response_time\":{\"count\":0"), "{json}");
    }

    #[test]
    fn exports_are_deterministic() {
        let tr = sample_trace();
        let m = MetricsRegistry::new();
        assert_eq!(jsonl(&tr), jsonl(&tr));
        assert_eq!(chrome_trace(&tr, &m), chrome_trace(&tr, &m));
    }

    #[test]
    fn string_escaping() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
