//! Bounded, drop-counting trace recording.
//!
//! [`TraceRecorder`] is the write side: a ring buffer that costs one
//! branch per call while disabled and never allocates after construction.
//! [`Trace`] is the read side handed back in the run outcome: a
//! time-ordered event list with query helpers.

use core::fmt;

use rtseed_model::{JobId, Time};
use serde::{Deserialize, Serialize};

use super::TraceEvent;

/// Configuration of the observability sink for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Record events at all. When `false` the recorder is a no-op and the
    /// run outcome carries an empty [`Trace`].
    pub enabled: bool,
    /// Ring-buffer capacity in events. Once full, the oldest events are
    /// dropped (and counted) so a long run keeps its most recent history.
    pub capacity: usize,
}

impl TraceConfig {
    /// Default ring capacity (events).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Tracing off (the default).
    pub const fn disabled() -> TraceConfig {
        TraceConfig {
            enabled: false,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Tracing on with the default capacity.
    pub const fn enabled() -> TraceConfig {
        TraceConfig {
            enabled: true,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Tracing on with an explicit ring capacity.
    pub const fn bounded(capacity: usize) -> TraceConfig {
        TraceConfig {
            enabled: true,
            capacity,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig::disabled()
    }
}

/// The write side: records events into a bounded ring.
///
/// Overhead contract: when disabled, [`record`](TraceRecorder::record) is a
/// single branch — no clock reads, no allocation, no event construction is
/// forced on callers (guard expensive argument construction with
/// [`enabled`](TraceRecorder::enabled) where it matters). When enabled,
/// recording is an amortised O(1) ring append; once the ring is full the
/// oldest event is overwritten and [`dropped`](TraceRecorder::dropped) is
/// incremented, so recording never stalls the scheduling hot path.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    enabled: bool,
    capacity: usize,
    /// Ring storage; once `len == capacity`, `head` marks the oldest slot.
    ring: Vec<(Time, TraceEvent)>,
    head: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Creates a recorder for `config`. A zero capacity is clamped to 1 so
    /// an enabled recorder can always hold at least the latest event
    /// (validated configs reject zero earlier, see
    /// [`crate::executor::RunConfigError`]).
    pub fn new(config: TraceConfig) -> TraceRecorder {
        let capacity = config.capacity.max(1);
        TraceRecorder {
            enabled: config.enabled,
            capacity,
            ring: if config.enabled {
                Vec::with_capacity(capacity.min(1 << 20))
            } else {
                Vec::new()
            },
            head: 0,
            dropped: 0,
        }
    }

    /// A recorder that records nothing.
    pub fn disabled() -> TraceRecorder {
        TraceRecorder::new(TraceConfig::disabled())
    }

    /// `true` if events are being recorded. Use this to skip *constructing*
    /// expensive events (label formatting, lookups) on hot paths.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` at time `at`. One branch when disabled.
    #[inline]
    pub fn record(&mut self, at: Time, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.push(at, event);
    }

    #[inline(never)]
    fn push(&mut self, at: Time, event: TraceEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push((at, event));
        } else {
            self.ring[self.head] = (at, event);
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events dropped because the ring was full.
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing has been recorded (or recording is off).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Consumes the recorder and returns the recorded [`Trace`] in time
    /// order (the ring is rotated so the oldest retained event comes
    /// first).
    pub fn finish(mut self) -> Trace {
        self.ring.rotate_left(self.head);
        Trace {
            events: self.ring,
            dropped: self.dropped,
        }
    }
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::disabled()
    }
}

/// A time-ordered, bounded execution trace: the read side of a
/// [`TraceRecorder`], carried in every run outcome.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<(Time, TraceEvent)>,
    dropped: u64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Merges per-thread traces into one time-ordered trace (used by the
    /// native backend, where each task thread records independently).
    /// The sort is stable, so same-timestamp events keep their per-source
    /// order and merging is deterministic.
    pub fn merged(traces: Vec<Trace>) -> Trace {
        let mut events = Vec::with_capacity(traces.iter().map(Trace::len).sum());
        let mut dropped = 0;
        for t in traces {
            dropped += t.dropped;
            events.extend(t.events);
        }
        events.sort_by_key(|(t, _)| *t);
        Trace { events, dropped }
    }

    /// Appends an event at `at`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `at` precedes the last recorded event:
    /// traces are append-only in time order.
    pub fn record(&mut self, at: Time, event: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|(t, _)| *t <= at),
            "trace must be recorded in time order"
        );
        self.events.push((at, event));
    }

    /// All events in time order.
    pub fn events(&self) -> &[(Time, TraceEvent)] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped by the recording ring before this trace was built.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events concerning `job`, in time order.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &(Time, TraceEvent)> {
        self.events
            .iter()
            .filter(move |(_, e)| e.job() == Some(job))
    }

    /// The time of the first event matching `pred`, if any.
    pub fn first_time(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> Option<Time> {
        self.events.iter().find(|(_, e)| pred(e)).map(|(t, _)| *t)
    }

    /// Counts events matching `pred`.
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, e) in &self.events {
            writeln!(f, "{t}: {e:?}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "({} earlier events dropped)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::TaskId;

    fn job(seq: u64) -> JobId {
        JobId {
            task: TaskId(0),
            seq,
        }
    }

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    fn released(seq: u64) -> TraceEvent {
        TraceEvent::JobReleased { job: job(seq) }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut rec = TraceRecorder::disabled();
        assert!(!rec.enabled());
        rec.record(t(0), released(0));
        assert!(rec.is_empty());
        assert_eq!(rec.finish(), Trace::new());
    }

    #[test]
    fn enabled_recorder_keeps_order() {
        let mut rec = TraceRecorder::new(TraceConfig::enabled());
        rec.record(t(0), released(0));
        rec.record(t(5), released(1));
        let trace = rec.finish();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 0);
        assert_eq!(trace.events()[0].0, t(0));
        assert_eq!(trace.events()[1].0, t(5));
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let mut rec = TraceRecorder::new(TraceConfig::bounded(3));
        for i in 0..5 {
            rec.record(t(i), released(i));
        }
        assert_eq!(rec.dropped(), 2);
        let trace = rec.finish();
        assert_eq!(trace.dropped(), 2);
        // The two oldest (seq 0, 1) were overwritten.
        let seqs: Vec<u64> = trace
            .events()
            .iter()
            .map(|(_, e)| e.job().unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        // Still time-ordered after ring rotation.
        assert!(trace.events().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut rec = TraceRecorder::new(TraceConfig::bounded(0));
        rec.record(t(0), released(0));
        rec.record(t(1), released(1));
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn merged_interleaves_by_time() {
        let mut a = Trace::new();
        a.record(t(0), released(0));
        a.record(t(10), released(2));
        let mut b = Trace::new();
        b.record(t(5), released(1));
        let m = Trace::merged(vec![a, b]);
        let seqs: Vec<u64> = m
            .events()
            .iter()
            .map(|(_, e)| e.job().unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn query_helpers() {
        let mut tr = Trace::new();
        tr.record(t(3), released(0));
        tr.record(t(7), TraceEvent::OptionalDeadlineExpired { job: job(0) });
        tr.record(t(8), released(1));
        assert_eq!(tr.for_job(job(0)).count(), 2);
        assert_eq!(
            tr.first_time(|e| matches!(e, TraceEvent::OptionalDeadlineExpired { .. })),
            Some(t(7))
        );
        assert_eq!(tr.count(|e| matches!(e, TraceEvent::JobReleased { .. })), 2);
        assert_eq!(
            tr.first_time(|e| matches!(e, TraceEvent::WindupStarted { .. })),
            None
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn trace_rejects_out_of_order() {
        let mut tr = Trace::new();
        tr.record(t(10), released(0));
        tr.record(t(5), released(1));
    }

    #[test]
    fn display_lists_events() {
        let mut tr = Trace::new();
        tr.record(t(0), released(0));
        let s = tr.to_string();
        assert!(s.contains("JobReleased"), "{s}");
    }
}
