//! The unified trace-event schema.
//!
//! One [`TraceEvent`] type covers everything the middleware does, across
//! every backend: part transitions of the parallel-extended imprecise
//! model (mandatory → optional → wind-up), queue operations on the four
//! priority bands (HPQ/RTQ/NRTQ/SQ), one-shot optional-deadline timer
//! lifecycle, assignment-policy decisions, supervisor and fault-injection
//! events, and trading-pipeline stages. Producers live in
//! [`crate::exec_sim`], [`crate::exec_global`], [`crate::runtime`], and
//! `rtseed-trading`; consumers are the exporters in [`crate::obs::export`]
//! and test assertions.

use rtseed_model::{HwThreadId, JobId, OptionalOutcome, PartId, Priority, Span, Time};
use rtseed_sim::{FaultTarget, TimerFault};
use serde::{Deserialize, Serialize};

/// One of RT-Seed's four scheduling queues (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueBand {
    /// The reserved highest-priority queue (SCHED_FIFO level 99).
    Hpq,
    /// The real-time queue: mandatory/wind-up threads, levels 50–98.
    Rtq,
    /// The non-real-time queue: parallel optional threads, levels 1–49.
    Nrtq,
    /// The sleep queue: jobs waiting for a release or the optional deadline.
    Sq,
}

impl QueueBand {
    /// Classifies a SCHED_FIFO priority level into its ready-queue band.
    #[inline]
    pub const fn of(priority: Priority) -> QueueBand {
        if priority.is_hpq() {
            QueueBand::Hpq
        } else if priority.is_mandatory_band() {
            QueueBand::Rtq
        } else {
            QueueBand::Nrtq
        }
    }

    /// Short uppercase name as used in the paper ("HPQ", "RTQ", …).
    pub const fn name(self) -> &'static str {
        match self {
            QueueBand::Hpq => "HPQ",
            QueueBand::Rtq => "RTQ",
            QueueBand::Nrtq => "NRTQ",
            QueueBand::Sq => "SQ",
        }
    }
}

/// What happened to a queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueOp {
    /// Work was appended to the band (FIFO within a level).
    Enqueue,
    /// Work was popped and handed to a hardware thread.
    Dispatch,
    /// Work was removed without dispatching (stopped/cancelled/woken).
    Remove,
}

impl QueueOp {
    /// Lowercase verb for exporters.
    pub const fn name(self) -> &'static str {
        match self {
            QueueOp::Enqueue => "enqueue",
            QueueOp::Dispatch => "dispatch",
            QueueOp::Remove => "remove",
        }
    }
}

/// A stage of the imprecise trading pipeline (`rtseed-trading`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineStage {
    /// Mandatory part: market-data ingest and validation.
    Ingest,
    /// Optional part: one parallel strategy analysis.
    Analysis,
    /// Wind-up part: aggregate opinions and route the order.
    Decide,
}

impl PipelineStage {
    /// Lowercase stage name for exporters.
    pub const fn name(self) -> &'static str {
        match self {
            PipelineStage::Ingest => "ingest",
            PipelineStage::Analysis => "analysis",
            PipelineStage::Decide => "decide",
        }
    }
}

/// One traced occurrence, timestamped by the recording [`super::Trace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    // ── part transitions ──────────────────────────────────────────────
    /// A job was released (periodic release or initial synchronous release).
    JobReleased {
        /// The released job.
        job: JobId,
    },
    /// The mandatory part began executing on `hw`.
    MandatoryStarted {
        /// The job.
        job: JobId,
        /// Pinned hardware thread.
        hw: HwThreadId,
    },
    /// The mandatory part completed.
    MandatoryCompleted {
        /// The job.
        job: JobId,
    },
    /// An optional part began executing on `hw`.
    OptionalStarted {
        /// The job.
        job: JobId,
        /// Which parallel optional part.
        part: PartId,
        /// The hardware thread it was placed on.
        hw: HwThreadId,
    },
    /// An optional part reached a terminal state.
    OptionalEnded {
        /// The job.
        job: JobId,
        /// Which parallel optional part.
        part: PartId,
        /// How it ended.
        outcome: OptionalOutcome,
        /// How much execution it achieved.
        achieved: Span,
    },
    /// The wind-up part began executing.
    WindupStarted {
        /// The job.
        job: JobId,
    },
    /// The wind-up part completed.
    WindupCompleted {
        /// The job.
        job: JobId,
        /// Whether the deadline was met.
        deadline_met: bool,
    },
    /// An in-flight job was cancelled because its tenant departed or was
    /// evicted: remaining parts were terminated/discarded and the job is
    /// finished without charging a deadline miss — the deadline never
    /// elapsed while the task was scheduled.
    JobCancelled {
        /// The cancelled job.
        job: JobId,
    },

    // ── queue operations ──────────────────────────────────────────────
    /// Work moved through one of the four scheduling queues.
    Queue {
        /// Which band.
        band: QueueBand,
        /// What happened.
        op: QueueOp,
        /// The affected job.
        job: JobId,
        /// The hardware thread involved (absent for e.g. SQ parks).
        hw: Option<HwThreadId>,
    },

    // ── optional-deadline timer ───────────────────────────────────────
    /// The one-shot optional-deadline timer was armed for a job.
    TimerArmed {
        /// The job.
        job: JobId,
        /// When it will fire (absolute, possibly fault-perturbed).
        at: Time,
    },
    /// The optional-deadline timer fired for a job.
    OptionalDeadlineExpired {
        /// The job.
        job: JobId,
    },
    /// The armed timer became unnecessary (all optional parts finished
    /// early) and was cancelled.
    TimerCancelled {
        /// The job.
        job: JobId,
    },

    // ── scheduling decisions ──────────────────────────────────────────
    /// The assignment policy fixed the optional-part placement for a task
    /// at admission (paper §IV-C).
    PolicyDecision {
        /// The task whose optional parts were placed.
        task: rtseed_model::TaskId,
        /// `AssignmentPolicy::label()` of the deciding policy.
        policy: String,
        /// Number of parallel optional parts placed.
        parts: u32,
        /// Distinct physical cores the placement spans.
        distinct_cores: usize,
    },
    /// A migratable thread moved between hardware threads (G-RMWP only).
    Migrated {
        /// The migrating job.
        job: JobId,
        /// Where it ran before.
        from: HwThreadId,
        /// Where it runs now.
        to: HwThreadId,
    },

    // ── faults and overload supervision ───────────────────────────────
    /// The fault plan inflated a real-time part's execution demand.
    WcetFaultInjected {
        /// The job.
        job: JobId,
        /// Which part overruns.
        target: FaultTarget,
        /// Demand multiplier applied.
        factor: f64,
    },
    /// The fault plan perturbed the job's optional-deadline timer.
    TimerFaultInjected {
        /// The job.
        job: JobId,
        /// The injected fault.
        fault: TimerFault,
    },
    /// A hardware thread entered a planned stall window.
    CpuStallStarted {
        /// The stalled hardware thread.
        hw: HwThreadId,
        /// Stall length.
        duration: Span,
    },
    /// The overload supervisor cut a real-time part at its budget.
    BudgetCut {
        /// The job.
        job: JobId,
        /// Which part was cut.
        target: FaultTarget,
    },
    /// The overload supervisor quarantined the job's task (its optional
    /// parts are skipped until the task proves healthy again).
    TaskQuarantined {
        /// The job whose overrun tripped the quarantine.
        job: JobId,
    },
    /// The overload supervisor switched the system to degraded mode
    /// (mandatory + wind-up only).
    DegradedModeEntered,
    /// The overload supervisor recovered the system to normal mode.
    DegradedModeExited,

    // ── trading pipeline ──────────────────────────────────────────────
    /// The imprecise trading pipeline entered a stage.
    PipelineStage {
        /// Trading cycle (job) number.
        cycle: u64,
        /// Which stage.
        stage: PipelineStage,
        /// The strategy slot, for `Analysis` stages.
        part: Option<PartId>,
    },

    // ── serving layer (multi-tenant sessions) ─────────────────────────
    /// A tenant's task-set submission passed the online admission test
    /// and its tasks were bound to hardware threads.
    TenantAdmitted {
        /// The admitted tenant.
        tenant: rtseed_model::TenantId,
        /// How many tasks the tenant's set contributes.
        tasks: u32,
    },
    /// A tenant's submission failed the admission test (RMWP found no
    /// feasible placement) and was turned away without running.
    TenantRejected {
        /// The rejected tenant.
        tenant: rtseed_model::TenantId,
    },
    /// An admitted tenant left (voluntary departure or eviction); its
    /// tasks were removed from scheduling.
    TenantDeparted {
        /// The departing tenant.
        tenant: rtseed_model::TenantId,
    },
    /// A departure request named a tenant that is unknown or already
    /// gone; nothing was removed. Recorded so that operator tooling can
    /// distinguish a no-op from a real departure.
    TenantDepartIgnored {
        /// The tenant the request named.
        tenant: rtseed_model::TenantId,
    },

    // ── graceful degradation ──────────────────────────────────────────
    /// The QoS shedding ladder shrank a resident task's deployed
    /// optional deadline to make room for a newcomer.
    QosShed {
        /// The tenant whose task was shed.
        tenant: rtseed_model::TenantId,
        /// The shed task (serving-layer task index).
        task: rtseed_model::TaskId,
        /// The new (smaller) deployed optional deadline.
        od: Span,
        /// The tenant's contractual floor for this task; `od >= floor`
        /// always holds.
        floor: Span,
    },
    /// A previously shed task's optional deadline was restored (after
    /// the hysteresis window) once departures freed capacity.
    QosRestored {
        /// The tenant whose task was restored.
        tenant: rtseed_model::TenantId,
        /// The restored task (serving-layer task index).
        task: rtseed_model::TaskId,
        /// The new (larger) deployed optional deadline.
        od: Span,
    },
    /// Health enforcement moved a tenant between rungs of the
    /// [`rtseed_model::TenantHealth`] ladder.
    TenantHealthChanged {
        /// The tenant.
        tenant: rtseed_model::TenantId,
        /// The rung it was on.
        from: rtseed_model::TenantHealth,
        /// The rung it is on now.
        to: rtseed_model::TenantHealth,
    },
    /// Health enforcement evicted a tenant (budget exhausted at the
    /// last rung); its tasks were removed from scheduling.
    TenantEvicted {
        /// The evicted tenant.
        tenant: rtseed_model::TenantId,
    },

    // ── submission queue (admission backpressure) ─────────────────────
    /// A submission entered the bounded submit queue to await the next
    /// batched admission round.
    SubmissionQueued {
        /// The submitting tenant.
        tenant: rtseed_model::TenantId,
    },
    /// A queued submission failed admission against the current
    /// residents and was re-queued with exponential backoff.
    SubmissionRetried {
        /// The submitting tenant.
        tenant: rtseed_model::TenantId,
        /// How many admission attempts the request has now consumed.
        attempt: u32,
        /// Backoff until the next attempt.
        after: Span,
    },
    /// A queued submission ran out of time (deadline passed) or
    /// retries, and was dropped from the queue.
    SubmissionExpired {
        /// The submitting tenant.
        tenant: rtseed_model::TenantId,
    },
}

impl TraceEvent {
    /// Stable event name used by both exporters.
    pub const fn name(&self) -> &'static str {
        match self {
            TraceEvent::JobReleased { .. } => "job_released",
            TraceEvent::MandatoryStarted { .. } => "mandatory_started",
            TraceEvent::MandatoryCompleted { .. } => "mandatory_completed",
            TraceEvent::OptionalStarted { .. } => "optional_started",
            TraceEvent::OptionalEnded { .. } => "optional_ended",
            TraceEvent::WindupStarted { .. } => "windup_started",
            TraceEvent::WindupCompleted { .. } => "windup_completed",
            TraceEvent::JobCancelled { .. } => "job_cancelled",
            TraceEvent::Queue { .. } => "queue",
            TraceEvent::TimerArmed { .. } => "timer_armed",
            TraceEvent::OptionalDeadlineExpired { .. } => "timer_fired",
            TraceEvent::TimerCancelled { .. } => "timer_cancelled",
            TraceEvent::PolicyDecision { .. } => "policy_decision",
            TraceEvent::Migrated { .. } => "migrated",
            TraceEvent::WcetFaultInjected { .. } => "wcet_fault",
            TraceEvent::TimerFaultInjected { .. } => "timer_fault",
            TraceEvent::CpuStallStarted { .. } => "cpu_stall",
            TraceEvent::BudgetCut { .. } => "budget_cut",
            TraceEvent::TaskQuarantined { .. } => "task_quarantined",
            TraceEvent::DegradedModeEntered => "degraded_entered",
            TraceEvent::DegradedModeExited => "degraded_exited",
            TraceEvent::PipelineStage { .. } => "pipeline_stage",
            TraceEvent::TenantAdmitted { .. } => "tenant_admitted",
            TraceEvent::TenantRejected { .. } => "tenant_rejected",
            TraceEvent::TenantDeparted { .. } => "tenant_departed",
            TraceEvent::TenantDepartIgnored { .. } => "tenant_depart_ignored",
            TraceEvent::QosShed { .. } => "qos_shed",
            TraceEvent::QosRestored { .. } => "qos_restored",
            TraceEvent::TenantHealthChanged { .. } => "tenant_health_changed",
            TraceEvent::TenantEvicted { .. } => "tenant_evicted",
            TraceEvent::SubmissionQueued { .. } => "submission_queued",
            TraceEvent::SubmissionRetried { .. } => "submission_retried",
            TraceEvent::SubmissionExpired { .. } => "submission_expired",
        }
    }

    /// The job this event concerns, if it concerns exactly one.
    pub const fn job(&self) -> Option<JobId> {
        match self {
            TraceEvent::JobReleased { job }
            | TraceEvent::MandatoryStarted { job, .. }
            | TraceEvent::MandatoryCompleted { job }
            | TraceEvent::OptionalStarted { job, .. }
            | TraceEvent::OptionalEnded { job, .. }
            | TraceEvent::WindupStarted { job }
            | TraceEvent::WindupCompleted { job, .. }
            | TraceEvent::JobCancelled { job }
            | TraceEvent::Queue { job, .. }
            | TraceEvent::TimerArmed { job, .. }
            | TraceEvent::OptionalDeadlineExpired { job }
            | TraceEvent::TimerCancelled { job }
            | TraceEvent::Migrated { job, .. }
            | TraceEvent::WcetFaultInjected { job, .. }
            | TraceEvent::TimerFaultInjected { job, .. }
            | TraceEvent::BudgetCut { job, .. }
            | TraceEvent::TaskQuarantined { job } => Some(*job),
            TraceEvent::PolicyDecision { .. }
            | TraceEvent::CpuStallStarted { .. }
            | TraceEvent::DegradedModeEntered
            | TraceEvent::DegradedModeExited
            | TraceEvent::PipelineStage { .. }
            | TraceEvent::TenantAdmitted { .. }
            | TraceEvent::TenantRejected { .. }
            | TraceEvent::TenantDeparted { .. }
            | TraceEvent::TenantDepartIgnored { .. }
            | TraceEvent::QosShed { .. }
            | TraceEvent::QosRestored { .. }
            | TraceEvent::TenantHealthChanged { .. }
            | TraceEvent::TenantEvicted { .. }
            | TraceEvent::SubmissionQueued { .. }
            | TraceEvent::SubmissionRetried { .. }
            | TraceEvent::SubmissionExpired { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::TaskId;

    #[test]
    fn queue_band_classification() {
        assert_eq!(QueueBand::of(Priority::HPQ), QueueBand::Hpq);
        assert_eq!(QueueBand::of(Priority::RTQ_MAX), QueueBand::Rtq);
        assert_eq!(QueueBand::of(Priority::RTQ_MIN), QueueBand::Rtq);
        assert_eq!(QueueBand::of(Priority::NRTQ_MAX), QueueBand::Nrtq);
        assert_eq!(QueueBand::of(Priority::NRTQ_MIN), QueueBand::Nrtq);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(QueueBand::Sq.name(), "SQ");
        assert_eq!(QueueOp::Dispatch.name(), "dispatch");
        assert_eq!(PipelineStage::Decide.name(), "decide");
        assert_eq!(TraceEvent::DegradedModeEntered.name(), "degraded_entered");
    }

    #[test]
    fn job_accessor() {
        let job = JobId {
            task: TaskId(2),
            seq: 7,
        };
        assert_eq!(TraceEvent::JobReleased { job }.job(), Some(job));
        assert_eq!(TraceEvent::DegradedModeEntered.job(), None);
        assert_eq!(
            TraceEvent::PolicyDecision {
                task: TaskId(0),
                policy: "one-by-one".into(),
                parts: 3,
                distinct_cores: 3,
            }
            .job(),
            None
        );
    }
}
