//! Fixed-footprint metrics: log₂-bucketed histograms for the paper's
//! measured quantities.
//!
//! [`MetricsRegistry`] aggregates the four middleware overheads
//! (Δm/Δb/Δs/Δe, Figs. 10–12), per-job response times, release jitter,
//! and per-job QoS levels. Everything is integer arithmetic on
//! nanoseconds (or parts-per-million for QoS), so two runs with the same
//! seed produce bit-identical registries.

use core::fmt;

use rtseed_model::Span;
use rtseed_sim::OverheadKind;
use serde::{Deserialize, Serialize};

/// Number of log₂ buckets: bucket `i` holds values `v` with
/// `⌊log₂ v⌋ = i` (bucket 0 also holds 0). 2⁶³ ns ≈ 292 years, so 64
/// buckets cover every representable span.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram over `u64` values with exact count/sum/
/// min/max. Fixed 64-bucket footprint, O(1) record, deterministic merge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        (63 - value.max(1).leading_zeros()) as usize
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Records a span, in nanoseconds.
    #[inline]
    pub fn record_span(&mut self, span: Span) {
        self.record(span.as_nanos());
    }

    /// Number of recorded values.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing was recorded.
    pub const fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values.
    pub const fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean (truncating), 0 if empty. Matches the integer
    /// mean of [`crate::report::OverheadReport`] for the same samples.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// Smallest recorded value, 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, 0 if empty.
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Mean as a [`Span`] (for nanosecond-valued histograms).
    pub fn mean_span(&self) -> Span {
        Span::from_nanos(self.mean())
    }

    /// Max as a [`Span`] (for nanosecond-valued histograms).
    pub fn max_span(&self) -> Span {
        Span::from_nanos(self.max())
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0.0 ≤ p ≤ 1.0`), 0 if empty. Bucket resolution is a factor of
    /// two — use it for tail shape, not exact percentiles.
    pub fn quantile_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper edge of bucket i is 2^(i+1) − 1, clamped to max.
                let bound = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Per-bucket counts (bucket `i` holds values with `⌊log₂ v⌋ = i`).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Scale factor for QoS levels: a ratio of 1.0 is recorded as 1 000 000.
pub const QOS_PPM: u64 = 1_000_000;

/// Aggregated run metrics: one histogram per measured quantity.
///
/// Time-valued histograms are in nanoseconds; `qos_level` is in
/// parts-per-million of the requested QoS (so `mean()` of 1 000 000 means
/// every job achieved full QoS).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    overheads: [Histogram; OverheadKind::ALL.len()],
    response_time: Histogram,
    release_jitter: Histogram,
    qos_level: Histogram,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records one sample of middleware overhead `kind`.
    #[inline]
    pub fn record_overhead(&mut self, kind: OverheadKind, value: Span) {
        self.overheads[kind as usize].record_span(value);
    }

    /// Records one job's response time (release → wind-up completion).
    #[inline]
    pub fn record_response_time(&mut self, value: Span) {
        self.response_time.record_span(value);
    }

    /// Records one job's release jitter (release → mandatory dispatch).
    #[inline]
    pub fn record_release_jitter(&mut self, value: Span) {
        self.release_jitter.record_span(value);
    }

    /// Records one job's achieved QoS level as a ratio of requested QoS
    /// (clamped to `[0, 1]`, stored in parts-per-million).
    #[inline]
    pub fn record_qos_level(&mut self, ratio: f64) {
        let ppm = (ratio.clamp(0.0, 1.0) * QOS_PPM as f64).round() as u64;
        self.qos_level.record(ppm);
    }

    /// The histogram for overhead `kind` (nanoseconds).
    pub fn overhead(&self, kind: OverheadKind) -> &Histogram {
        &self.overheads[kind as usize]
    }

    /// Response-time histogram (nanoseconds).
    pub fn response_time(&self) -> &Histogram {
        &self.response_time
    }

    /// Release-jitter histogram (nanoseconds).
    pub fn release_jitter(&self) -> &Histogram {
        &self.release_jitter
    }

    /// QoS-level histogram (parts-per-million of requested QoS).
    pub fn qos_level(&self) -> &Histogram {
        &self.qos_level
    }

    /// Folds another registry into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (a, b) in self.overheads.iter_mut().zip(other.overheads.iter()) {
            a.merge(b);
        }
        self.response_time.merge(&other.response_time);
        self.release_jitter.merge(&other.release_jitter);
        self.qos_level.merge(&other.qos_level);
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for kind in OverheadKind::ALL {
            let h = self.overhead(kind);
            writeln!(
                f,
                "{:12} n={:<6} mean={} max={}",
                kind.symbol(),
                h.count(),
                h.mean_span(),
                h.max_span(),
            )?;
        }
        let r = &self.response_time;
        writeln!(
            f,
            "{:12} n={:<6} mean={} max={}",
            "response",
            r.count(),
            r.mean_span(),
            r.max_span(),
        )?;
        let j = &self.release_jitter;
        writeln!(
            f,
            "{:12} n={:<6} mean={} max={}",
            "jitter",
            j.count(),
            j.mean_span(),
            j.max_span(),
        )?;
        let q = &self.qos_level;
        writeln!(
            f,
            "{:12} n={:<6} mean={:.3} min={:.3}",
            "qos",
            q.count(),
            q.mean() as f64 / QOS_PPM as f64,
            q.min() as f64 / QOS_PPM as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile_bound(0.99), 0);
    }

    #[test]
    fn exact_moments() {
        let mut h = Histogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 600);
        assert_eq!(h.mean(), 200);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantile_bound_brackets_the_value() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_bound(0.5);
        // True median 500 lives in bucket 8 (256..=511) → bound 511.
        assert_eq!(p50, 511);
        assert_eq!(h.quantile_bound(1.0), 1000);
        assert!(h.quantile_bound(0.0) >= 1);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [5u64, 10, 20] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 70] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn registry_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.record_overhead(OverheadKind::BeginMandatory, Span::from_micros(3));
        m.record_overhead(OverheadKind::BeginMandatory, Span::from_micros(5));
        m.record_response_time(Span::from_millis(2));
        m.record_release_jitter(Span::from_micros(1));
        m.record_qos_level(0.5);
        m.record_qos_level(1.5); // clamped to 1.0
        assert_eq!(m.overhead(OverheadKind::BeginMandatory).count(), 2);
        assert_eq!(
            m.overhead(OverheadKind::BeginMandatory).mean_span(),
            Span::from_micros(4)
        );
        assert_eq!(m.overhead(OverheadKind::BeginOptional).count(), 0);
        assert_eq!(m.response_time().count(), 1);
        assert_eq!(m.release_jitter().count(), 1);
        assert_eq!(m.qos_level().mean(), 750_000);
        assert_eq!(m.qos_level().max(), QOS_PPM);
    }

    #[test]
    fn registry_merge_and_display() {
        let mut a = MetricsRegistry::new();
        a.record_overhead(OverheadKind::EndOptional, Span::from_micros(9));
        let mut b = MetricsRegistry::new();
        b.record_overhead(OverheadKind::EndOptional, Span::from_micros(11));
        b.record_qos_level(1.0);
        a.merge(&b);
        assert_eq!(a.overhead(OverheadKind::EndOptional).count(), 2);
        assert_eq!(
            a.overhead(OverheadKind::EndOptional).mean_span(),
            Span::from_micros(10)
        );
        let s = a.to_string();
        assert!(s.contains("Δe"), "{s}");
        assert!(s.contains("response"), "{s}");
    }
}
