//! Observability: structured tracing and metrics for every backend.
//!
//! The paper's evaluation is measurement-driven — Figs. 10–13 plot the
//! four middleware overheads and §V reasons about queue and part-state
//! behaviour from traces. This module is the one pipeline those
//! measurements flow through, shared by [`crate::exec_sim`],
//! [`crate::exec_global`], [`crate::runtime`], and `rtseed-trading`:
//!
//! * [`TraceEvent`] — the typed schema: part transitions, queue
//!   operations (HPQ/RTQ/NRTQ/SQ), timer lifecycle, assignment-policy
//!   decisions, supervisor/fault events, trading pipeline stages.
//! * [`TraceRecorder`] / [`Trace`] — a bounded, drop-counting ring
//!   buffer (write side) and the time-ordered event list it produces
//!   (read side). One branch per record call when disabled.
//! * [`MetricsRegistry`] / [`Histogram`] — log₂-bucketed histograms for
//!   Δm/Δb/Δs/Δe, response times, release jitter, and QoS levels.
//! * [`export`] — JSONL and Chrome trace-event (Perfetto) exporters;
//!   byte-identical output for identical seeds.
//!
//! # Examples
//!
//! ```
//! use rtseed::prelude::*;
//!
//! let spec = TaskSpec::builder("sensor")
//!     .period(Span::from_millis(10))
//!     .mandatory(Span::from_millis(1))
//!     .windup(Span::from_millis(1))
//!     .optional_parts(2, Span::from_millis(3))
//!     .build()?;
//! let system = SystemConfig::build(
//!     TaskSet::new(vec![spec])?,
//!     Topology::new(2, 2)?,
//!     AssignmentPolicy::OneByOne,
//! )?;
//! let run = RunConfig::builder().jobs(3).trace(TraceConfig::enabled()).build()?;
//! let outcome = SimExecutor::new(system, run).run();
//!
//! assert!(!outcome.trace.is_empty());
//! let jsonl = rtseed::obs::export::jsonl(&outcome.trace);
//! let chrome = rtseed::obs::export::chrome_trace(&outcome.trace, &outcome.metrics);
//! assert!(jsonl.lines().count() > 1 && chrome.starts_with('{'));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod event;
pub mod export;
mod metrics;
mod recorder;

pub use event::{PipelineStage, QueueBand, QueueOp, TraceEvent};
pub use metrics::{Histogram, MetricsRegistry, QOS_PPM};
pub use recorder::{Trace, TraceConfig, TraceRecorder};
