//! Assignment policies for parallel optional parts (paper §V-A, Fig. 8).
//!
//! Once a job's mandatory part completes, its `npᵢ` parallel optional parts
//! are placed on hardware threads. The paper examines three policies:
//!
//! * **One by One** — fill one SMT slot on every core, then the next slot
//!   on every core, … (spreads across cores first);
//! * **Two by Two** — fill two SMT slots on every core, then the next two,
//!   … ;
//! * **All by All** — fill *all* SMT slots of a core before moving to the
//!   next core (packs cores first).
//!
//! This module generalizes them as [`AssignmentPolicy::KByK`] with
//! `k ∈ {1, 2, smt_per_core}` and verifies the exact Fig. 8 placements for
//! 171 parts on the Xeon Phi.

use core::fmt;

use rtseed_model::{CoreId, HwThreadId, Topology};
use serde::{Deserialize, Serialize};

/// How parallel optional parts are assigned to hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignmentPolicy {
    /// One slot per core per pass (paper's "One by One").
    OneByOne,
    /// Two slots per core per pass (paper's "Two by Two").
    TwoByTwo,
    /// All slots of a core before the next core (paper's "All by All").
    AllByAll,
    /// Generalized `k` slots per core per pass.
    KByK(u32),
}

impl AssignmentPolicy {
    /// The three policies the paper evaluates, in its order.
    pub const PAPER_POLICIES: [AssignmentPolicy; 3] = [
        AssignmentPolicy::OneByOne,
        AssignmentPolicy::TwoByTwo,
        AssignmentPolicy::AllByAll,
    ];

    /// The pass width `k` for `topology` (clamped to the SMT width).
    ///
    /// # Panics
    ///
    /// Panics if a [`AssignmentPolicy::KByK`] width is zero.
    pub fn stride(self, topology: &Topology) -> u32 {
        let smt = topology.smt_per_core();
        match self {
            AssignmentPolicy::OneByOne => 1.min(smt),
            AssignmentPolicy::TwoByTwo => 2.min(smt),
            AssignmentPolicy::AllByAll => smt,
            AssignmentPolicy::KByK(k) => {
                assert!(k > 0, "KByK stride must be positive");
                k.min(smt)
            }
        }
    }

    /// Places `np` parallel optional parts on `topology`, returning the
    /// hardware thread of each part in part order (`oᵢ,₀ … oᵢ,np−1`).
    ///
    /// If `np` exceeds the number of hardware threads, placement wraps
    /// around: parts then share hardware threads and are serialized by the
    /// FIFO queue at their (equal) priority.
    pub fn placements(self, topology: &Topology, np: usize) -> Vec<HwThreadId> {
        let k = self.stride(topology);
        let smt = topology.smt_per_core();
        let cores = topology.cores();
        let capacity = topology.hw_threads() as usize;

        // Enumerate hardware threads in policy order: passes of k slots.
        let mut order = Vec::with_capacity(capacity);
        let mut base_slot = 0u32;
        while base_slot < smt {
            let width = k.min(smt - base_slot);
            for core in 0..cores {
                for s in 0..width {
                    order.push(topology.hw_thread(CoreId(core), base_slot + s));
                }
            }
            base_slot += width;
        }
        debug_assert_eq!(order.len(), capacity);

        (0..np).map(|i| order[i % capacity]).collect()
    }

    /// Number of *distinct* cores used when placing `np` parts.
    pub fn distinct_cores(self, topology: &Topology, np: usize) -> usize {
        let mut used = vec![false; topology.cores() as usize];
        for hw in self.placements(topology, np) {
            used[topology.core_of(hw).index()] = true;
        }
        used.iter().filter(|&&u| u).count()
    }

    /// Number of core-to-core transitions between consecutive parts in
    /// placement order — the locality figure that drives the Δe policy
    /// differences under load (Fig. 13b–c): OneByOne hops cores on almost
    /// every step, AllByAll only between core groups.
    pub fn core_transitions(self, topology: &Topology, np: usize) -> usize {
        let placements = self.placements(topology, np);
        placements
            .windows(2)
            .filter(|w| topology.core_of(w[0]) != topology.core_of(w[1]))
            .count()
    }

    /// Per-core slot occupancy for `np` parts: `counts[c]` is the number of
    /// parts on core `c`. Used to verify the Fig. 8 placement maps.
    pub fn per_core_counts(self, topology: &Topology, np: usize) -> Vec<u32> {
        let mut counts = vec![0u32; topology.cores() as usize];
        for hw in self.placements(topology, np) {
            counts[topology.core_of(hw).index()] += 1;
        }
        counts
    }

    /// Short label ("one-by-one", "two-by-two", "all-by-all", "k-by-k(3)").
    pub fn label(self) -> String {
        match self {
            AssignmentPolicy::OneByOne => "one-by-one".into(),
            AssignmentPolicy::TwoByTwo => "two-by-two".into(),
            AssignmentPolicy::AllByAll => "all-by-all".into(),
            AssignmentPolicy::KByK(k) => format!("k-by-k({k})"),
        }
    }
}

impl fmt::Display for AssignmentPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phi() -> Topology {
        Topology::xeon_phi_3120a()
    }

    #[test]
    fn fig8a_one_by_one_171_parts() {
        // Fig. 8(a): three hardware threads assigned on every core C0–C56.
        let counts = AssignmentPolicy::OneByOne.per_core_counts(&phi(), 171);
        assert!(counts.iter().all(|&c| c == 3), "{counts:?}");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // core index is part of the claim
    fn fig8b_two_by_two_171_parts() {
        // Fig. 8(b): four threads on C0–C27, three on C28, two on C29–C56.
        let counts = AssignmentPolicy::TwoByTwo.per_core_counts(&phi(), 171);
        for c in 0..=27 {
            assert_eq!(counts[c], 4, "core {c}");
        }
        assert_eq!(counts[28], 3);
        for c in 29..=56 {
            assert_eq!(counts[c], 2, "core {c}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // core index is part of the claim
    fn fig8c_all_by_all_171_parts() {
        // Fig. 8(c): four threads on C0–C41, three on C42, none on C43–C56.
        let counts = AssignmentPolicy::AllByAll.per_core_counts(&phi(), 171);
        for c in 0..=41 {
            assert_eq!(counts[c], 4, "core {c}");
        }
        assert_eq!(counts[42], 3);
        for c in 43..=56 {
            assert_eq!(counts[c], 0, "core {c}");
        }
    }

    #[test]
    fn full_machine_all_policies_identical_footprint() {
        // At np = 228 every policy fills all threads (placement *order*
        // still differs).
        for p in AssignmentPolicy::PAPER_POLICIES {
            let counts = p.per_core_counts(&phi(), 228);
            assert!(counts.iter().all(|&c| c == 4), "{p}: {counts:?}");
        }
    }

    #[test]
    fn placements_are_unique_until_capacity() {
        for p in AssignmentPolicy::PAPER_POLICIES {
            let placed = p.placements(&phi(), 228);
            let mut seen = std::collections::HashSet::new();
            assert!(placed.iter().all(|h| seen.insert(*h)), "{p}");
        }
    }

    #[test]
    fn wraps_beyond_capacity() {
        let placed = AssignmentPolicy::OneByOne.placements(&phi(), 230);
        assert_eq!(placed.len(), 230);
        assert_eq!(placed[228], placed[0]);
        assert_eq!(placed[229], placed[1]);
    }

    #[test]
    fn distinct_cores_ordering() {
        // Spreading policy touches more cores than packing policy at equal
        // np (np = 57: OneByOne uses 57 cores, AllByAll ⌈57/4⌉ = 15).
        let t = phi();
        assert_eq!(AssignmentPolicy::OneByOne.distinct_cores(&t, 57), 57);
        assert_eq!(AssignmentPolicy::AllByAll.distinct_cores(&t, 57), 15);
        assert_eq!(AssignmentPolicy::TwoByTwo.distinct_cores(&t, 57), 29);
    }

    #[test]
    fn core_transitions_rank_policies() {
        // The locality mechanism: OneByOne > TwoByTwo > AllByAll at any np
        // that spans multiple cores.
        let t = phi();
        for np in [32usize, 57, 114, 171, 228] {
            let one = AssignmentPolicy::OneByOne.core_transitions(&t, np);
            let two = AssignmentPolicy::TwoByTwo.core_transitions(&t, np);
            let all = AssignmentPolicy::AllByAll.core_transitions(&t, np);
            assert!(one >= two && two >= all, "np={np}: {one} {two} {all}");
            assert!(one > all, "np={np}");
        }
        // Exact values at full occupancy.
        assert_eq!(AssignmentPolicy::OneByOne.core_transitions(&t, 228), 227);
        assert_eq!(AssignmentPolicy::AllByAll.core_transitions(&t, 228), 56);
    }

    #[test]
    fn one_by_one_first_pass_is_slot_zero() {
        let t = phi();
        let placed = AssignmentPolicy::OneByOne.placements(&t, 57);
        for (i, hw) in placed.iter().enumerate() {
            assert_eq!(t.core_of(*hw), CoreId(i as u32));
            assert_eq!(t.slot_of(*hw), 0);
        }
    }

    #[test]
    fn kbyk_generalizes() {
        let t = phi();
        assert_eq!(
            AssignmentPolicy::KByK(1).placements(&t, 171),
            AssignmentPolicy::OneByOne.placements(&t, 171)
        );
        assert_eq!(
            AssignmentPolicy::KByK(4).placements(&t, 171),
            AssignmentPolicy::AllByAll.placements(&t, 171)
        );
        // k larger than SMT clamps.
        assert_eq!(
            AssignmentPolicy::KByK(9).placements(&t, 171),
            AssignmentPolicy::AllByAll.placements(&t, 171)
        );
        // Odd k covers the machine exactly once too.
        let p3 = AssignmentPolicy::KByK(3).placements(&t, 228);
        let unique: std::collections::HashSet<_> = p3.iter().collect();
        assert_eq!(unique.len(), 228);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn kbyk_zero_rejected() {
        let _ = AssignmentPolicy::KByK(0).stride(&phi());
    }

    #[test]
    fn smt1_topology_collapses_policies() {
        let t = Topology::new(8, 1).unwrap();
        assert_eq!(
            AssignmentPolicy::OneByOne.placements(&t, 8),
            AssignmentPolicy::AllByAll.placements(&t, 8)
        );
    }

    #[test]
    fn labels() {
        assert_eq!(AssignmentPolicy::OneByOne.to_string(), "one-by-one");
        assert_eq!(AssignmentPolicy::KByK(3).to_string(), "k-by-k(3)");
    }
}
