//! The middleware's logical queues over the kernel's per-CPU SCHED_FIFO
//! structure (paper Figs. 4 and 5).
//!
//! * **RTQ** — tasks ready to execute mandatory or wind-up parts, RM order
//!   (priority band 50–98 plus the HPQ at 99);
//! * **NRTQ** — tasks ready to execute optional parts, RM order (band
//!   1–49); every RTQ entry outranks every NRTQ entry by construction;
//! * **SQ** — tasks sleeping until their optional deadline or next release,
//!   *sorted by increasing wake-up time* (paper Fig. 4);
//! * **HPQ** — the reserved level-99 slot inside the same FIFO structure.
//!
//! [`ReadyQueues`] is the per-hardware-thread instance the executors use.

use rtseed_model::{Priority, TaskId, Time};
use rtseed_sim::FifoReadyQueue;

/// Why a task is sleeping in the SQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepReason {
    /// Completed its mandatory part early; wakes at the optional deadline
    /// to run the wind-up part.
    UntilOptionalDeadline,
    /// Completed its wind-up part; wakes at the next release.
    UntilNextRelease,
}

/// Per-hardware-thread queue state: one 99-level FIFO ready queue (holding
/// both RTQ and NRTQ bands plus the HPQ) and the sleep queue.
#[derive(Debug, Clone, Default)]
pub struct ReadyQueues {
    ready: FifoReadyQueue<TaskId>,
    sleeping: Vec<(Time, TaskId, SleepReason)>,
}

impl ReadyQueues {
    /// Empty queues.
    pub fn new() -> ReadyQueues {
        ReadyQueues::default()
    }

    /// Enqueues a task ready to run a mandatory or wind-up part.
    ///
    /// # Panics
    ///
    /// Panics if `prio` is in the optional band — real-time parts must use
    /// the RTQ band or the HPQ.
    pub fn enqueue_rt(&mut self, prio: Priority, task: TaskId) {
        assert!(
            prio.is_mandatory_band() || prio.is_hpq(),
            "real-time parts must be queued at RTQ/HPQ levels, got {prio}"
        );
        self.ready.enqueue(prio, task);
    }

    /// Enqueues a task ready to run optional parts.
    ///
    /// # Panics
    ///
    /// Panics if `prio` is not in the optional band.
    pub fn enqueue_nrt(&mut self, prio: Priority, task: TaskId) {
        assert!(
            prio.is_optional_band(),
            "optional parts must be queued at NRTQ levels, got {prio}"
        );
        self.ready.enqueue(prio, task);
    }

    /// Pops the highest-priority ready task (RTQ strictly before NRTQ).
    pub fn dequeue(&mut self) -> Option<(Priority, TaskId)> {
        self.ready.dequeue_highest()
    }

    /// Priority of the best ready task without removing it.
    pub fn peek_priority(&self) -> Option<Priority> {
        self.ready.peek_highest_priority()
    }

    /// Removes a specific ready entry (kernel dequeue-on-destroy path).
    pub fn remove_ready(&mut self, prio: Priority, task: TaskId) -> bool {
        self.ready.remove(prio, &task)
    }

    /// Puts a task to sleep until `wake_at`. The SQ is kept sorted by
    /// increasing wake-up time (stable for equal times).
    pub fn sleep_until(&mut self, wake_at: Time, task: TaskId, reason: SleepReason) {
        let pos = self
            .sleeping
            .partition_point(|(t, _, _)| *t <= wake_at);
        self.sleeping.insert(pos, (wake_at, task, reason));
    }

    /// Pops every task whose wake-up time is `≤ now`, in wake-up order.
    pub fn wake_due(&mut self, now: Time) -> Vec<(Time, TaskId, SleepReason)> {
        let n = self.sleeping.partition_point(|(t, _, _)| *t <= now);
        self.sleeping.drain(..n).collect()
    }

    /// The earliest pending wake-up, if any.
    pub fn next_wake(&self) -> Option<Time> {
        self.sleeping.first().map(|(t, _, _)| *t)
    }

    /// Number of ready tasks (both bands).
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Number of sleeping tasks.
    pub fn sleeping_len(&self) -> usize {
        self.sleeping.len()
    }

    /// `true` if no task is ready or sleeping.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty() && self.sleeping.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(l: u8) -> Priority {
        Priority::new(l).unwrap()
    }

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn rt_band_beats_nrt_band() {
        let mut q = ReadyQueues::new();
        q.enqueue_nrt(p(49), TaskId(0));
        q.enqueue_rt(p(50), TaskId(1));
        assert_eq!(q.dequeue().unwrap().1, TaskId(1));
        assert_eq!(q.dequeue().unwrap().1, TaskId(0));
    }

    #[test]
    fn hpq_beats_everything() {
        let mut q = ReadyQueues::new();
        q.enqueue_rt(p(98), TaskId(0));
        q.enqueue_rt(p(99), TaskId(1));
        assert_eq!(q.dequeue().unwrap().1, TaskId(1));
    }

    #[test]
    #[should_panic(expected = "RTQ/HPQ levels")]
    fn rt_rejects_optional_band() {
        ReadyQueues::new().enqueue_rt(p(49), TaskId(0));
    }

    #[test]
    #[should_panic(expected = "NRTQ levels")]
    fn nrt_rejects_mandatory_band() {
        ReadyQueues::new().enqueue_nrt(p(50), TaskId(0));
    }

    #[test]
    fn sleep_queue_sorted_by_wake_time() {
        let mut q = ReadyQueues::new();
        q.sleep_until(t(30), TaskId(3), SleepReason::UntilNextRelease);
        q.sleep_until(t(10), TaskId(1), SleepReason::UntilOptionalDeadline);
        q.sleep_until(t(20), TaskId(2), SleepReason::UntilNextRelease);
        assert_eq!(q.next_wake(), Some(t(10)));
        let woken = q.wake_due(t(20));
        assert_eq!(
            woken.iter().map(|(_, id, _)| *id).collect::<Vec<_>>(),
            vec![TaskId(1), TaskId(2)]
        );
        assert_eq!(q.sleeping_len(), 1);
        assert_eq!(q.next_wake(), Some(t(30)));
    }

    #[test]
    fn wake_due_is_stable_for_equal_times() {
        let mut q = ReadyQueues::new();
        q.sleep_until(t(5), TaskId(0), SleepReason::UntilNextRelease);
        q.sleep_until(t(5), TaskId(1), SleepReason::UntilNextRelease);
        let woken = q.wake_due(t(5));
        assert_eq!(woken[0].1, TaskId(0));
        assert_eq!(woken[1].1, TaskId(1));
    }

    #[test]
    fn wake_due_before_anything_is_empty() {
        let mut q = ReadyQueues::new();
        q.sleep_until(t(100), TaskId(0), SleepReason::UntilNextRelease);
        assert!(q.wake_due(t(99)).is_empty());
        assert_eq!(q.sleeping_len(), 1);
    }

    #[test]
    fn remove_ready_entry() {
        let mut q = ReadyQueues::new();
        q.enqueue_rt(p(60), TaskId(0));
        assert!(q.remove_ready(p(60), TaskId(0)));
        assert!(!q.remove_ready(p(60), TaskId(0)));
        assert!(q.is_empty());
    }

    #[test]
    fn counters() {
        let mut q = ReadyQueues::new();
        assert!(q.is_empty());
        q.enqueue_rt(p(55), TaskId(0));
        q.sleep_until(t(1), TaskId(1), SleepReason::UntilOptionalDeadline);
        assert_eq!(q.ready_len(), 1);
        assert_eq!(q.sleeping_len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.peek_priority(), Some(p(55)));
    }
}
