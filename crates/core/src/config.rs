//! System configuration: everything P-RMWP computes *offline* before any
//! job runs (paper §IV-B).
//!
//! Building a [`SystemConfig`] performs, in order:
//!
//! 1. partitioned placement of every task's mandatory thread onto a
//!    hardware thread (tasks never migrate once placed),
//! 2. the RMWP schedulability test and **optional deadline** calculation
//!    for every partition,
//! 3. SCHED_FIFO priority assignment (HPQ 99 / RTQ 50–98 / NRTQ 1–49),
//! 4. assignment-policy placement of every task's parallel optional parts.

use core::fmt;

use rtseed_analysis::partition::{Partition, PartitionError, PartitionHeuristic};
use rtseed_model::{HwThreadId, Span, TaskId, TaskSet, Topology};

use crate::policy::AssignmentPolicy;
use crate::priority::{PriorityMap, PriorityMapError};

/// A fully validated, ready-to-run system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    set: TaskSet,
    topology: Topology,
    policy: AssignmentPolicy,
    partition: Partition,
    priorities: PriorityMap,
    placements: Vec<Vec<HwThreadId>>,
}

impl SystemConfig {
    /// Builds a configuration with the default partition heuristic
    /// (first-fit decreasing, which pins a single task to hardware thread
    /// 0 exactly like the paper's evaluation setup).
    ///
    /// # Errors
    ///
    /// See [`SystemConfig::build_with_heuristic`].
    pub fn build(
        set: TaskSet,
        topology: Topology,
        policy: AssignmentPolicy,
    ) -> Result<SystemConfig, ConfigError> {
        Self::build_with_heuristic(set, topology, policy, PartitionHeuristic::FirstFitDecreasing)
    }

    /// Builds a configuration with an explicit partition heuristic.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Partition`] if some task fits on no hardware
    ///   thread (RMWP-unschedulable partition);
    /// * [`ConfigError::Priority`] if the set needs more than the 49
    ///   distinct RTQ levels.
    pub fn build_with_heuristic(
        set: TaskSet,
        topology: Topology,
        policy: AssignmentPolicy,
        heuristic: PartitionHeuristic,
    ) -> Result<SystemConfig, ConfigError> {
        // Priorities first: the admission test must see the *deployed*
        // order (RM-US HPQ tasks outrank everything, then RM), or a heavy
        // long-period task at level 99 could preempt a short-period task
        // the analysis believed safe.
        let priorities = PriorityMap::assign(&set, topology.hw_threads() as usize)?;
        let mut order: Vec<rtseed_model::TaskId> = set.ids().collect();
        order.sort_by_key(|&id| {
            (
                std::cmp::Reverse(priorities.mandatory(id).level()),
                set.task(id).period(),
                id.0,
            )
        });
        let partition = Partition::compute_with_order(&set, &topology, heuristic, order)?;
        let placements = set
            .iter()
            .map(|(_, spec)| policy.placements(&topology, spec.optional_count()))
            .collect();
        Ok(SystemConfig {
            set,
            topology,
            policy,
            partition,
            priorities,
            placements,
        })
    }

    /// The task set.
    #[inline]
    pub fn set(&self) -> &TaskSet {
        &self.set
    }

    /// The machine topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The optional-part assignment policy.
    #[inline]
    pub fn policy(&self) -> AssignmentPolicy {
        self.policy
    }

    /// The partitioned placement (mandatory threads → hardware threads).
    #[inline]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The SCHED_FIFO priority assignment.
    #[inline]
    pub fn priorities(&self) -> &PriorityMap {
        &self.priorities
    }

    /// The hardware thread hosting `task`'s mandatory/wind-up thread.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn mandatory_hw(&self, task: TaskId) -> HwThreadId {
        self.partition.hw_thread_of(task)
    }

    /// The relative optional deadline `ODᵢ` computed for `task` within its
    /// partition.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn optional_deadline(&self, task: TaskId) -> Span {
        self.partition.optional_deadline(task)
    }

    /// The hardware thread of each parallel optional part of `task`, in
    /// part order (computed by the assignment policy; parts migrate to
    /// these processors *before* execution and never afterwards, §IV-B).
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn optional_placements(&self, task: TaskId) -> &[HwThreadId] {
        &self.placements[task.index()]
    }
}

/// Error from building a [`SystemConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Partitioned placement failed.
    Partition(PartitionError),
    /// Priority assignment failed.
    Priority(PriorityMapError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Partition(e) => write!(f, "partitioning failed: {e}"),
            ConfigError::Priority(e) => write!(f, "priority assignment failed: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Partition(e) => Some(e),
            ConfigError::Priority(e) => Some(e),
        }
    }
}

impl From<PartitionError> for ConfigError {
    fn from(e: PartitionError) -> Self {
        ConfigError::Partition(e)
    }
}

impl From<PriorityMapError> for ConfigError {
    fn from(e: PriorityMapError) -> Self {
        ConfigError::Priority(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::TaskSpec;

    fn paper_task(np: usize) -> TaskSet {
        let t = TaskSpec::builder("τ1")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(250))
            .windup(Span::from_millis(250))
            .optional_parts(np, Span::from_secs(1))
            .build()
            .unwrap();
        TaskSet::new(vec![t]).unwrap()
    }

    #[test]
    fn paper_setup_pins_task_to_hw0() {
        let cfg = SystemConfig::build(
            paper_task(57),
            Topology::xeon_phi_3120a(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        // §V-A: "The mandatory and wind-up parts of task τ1 are executed on
        // hardware thread ID 0 of core ID 0".
        assert_eq!(cfg.mandatory_hw(TaskId(0)), HwThreadId(0));
        assert_eq!(cfg.optional_deadline(TaskId(0)), Span::from_millis(750));
        assert_eq!(cfg.optional_placements(TaskId(0)).len(), 57);
    }

    #[test]
    fn placements_follow_policy() {
        let cfg = SystemConfig::build(
            paper_task(171),
            Topology::xeon_phi_3120a(),
            AssignmentPolicy::AllByAll,
        )
        .unwrap();
        let placed = cfg.optional_placements(TaskId(0));
        assert_eq!(
            placed,
            AssignmentPolicy::AllByAll
                .placements(&Topology::xeon_phi_3120a(), 171)
                .as_slice()
        );
    }

    #[test]
    fn first_optional_part_shares_mandatory_processor() {
        // §IV-C: "the first parallel optional thread is executed on the
        // processor that executes the mandatory thread" — with the task
        // pinned to H0 and any paper policy starting at C0 slot 0, part 0
        // lands on H0.
        for policy in AssignmentPolicy::PAPER_POLICIES {
            let cfg =
                SystemConfig::build(paper_task(8), Topology::xeon_phi_3120a(), policy).unwrap();
            assert_eq!(
                cfg.optional_placements(TaskId(0))[0],
                cfg.mandatory_hw(TaskId(0)),
                "{policy}"
            );
        }
    }

    #[test]
    fn error_paths_surface() {
        // Unschedulable: U = 1.2 task cannot exist (builder rejects), so
        // use two tasks of 0.8 on a uniprocessor.
        let mk = |name: &str| {
            TaskSpec::builder(name)
                .period(Span::from_millis(100))
                .mandatory(Span::from_millis(40))
                .windup(Span::from_millis(40))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk("a"), mk("b")]).unwrap();
        let err = SystemConfig::build(
            set,
            Topology::uniprocessor(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::Partition(_)));
        assert!(err.to_string().contains("partitioning failed"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn accessors() {
        let cfg = SystemConfig::build(
            paper_task(4),
            Topology::xeon_phi_3120a(),
            AssignmentPolicy::TwoByTwo,
        )
        .unwrap();
        assert_eq!(cfg.set().len(), 1);
        assert_eq!(cfg.topology().hw_threads(), 228);
        assert_eq!(cfg.policy(), AssignmentPolicy::TwoByTwo);
        assert_eq!(cfg.partition().used_threads(), 1);
        // U = 0.5 > 228/682: the paper task is an HPQ (RM-US) task.
        assert_eq!(cfg.priorities().hpq_tasks(), &[TaskId(0)]);
    }
}
