//! SCHED_FIFO priority assignment (paper §IV-B).
//!
//! * Priority 99 (**HPQ**) is reserved for "the highest priority task" —
//!   RT-Seed uses the RM-US rule (footnote 1): a task whose utilization
//!   exceeds `M/(3M−2)` is pinned to the HPQ.
//! * Mandatory (and wind-up) threads occupy **RTQ** levels 50–98 in Rate
//!   Monotonic order (shorter period ⇒ higher level).
//! * Parallel optional threads occupy **NRTQ** levels 1–49, always exactly
//!   49 below their mandatory thread (paper: mandatory 90 ⇒ optional 41).

use core::fmt;

use rtseed_analysis::bounds::rmus_threshold;
use rtseed_model::{Priority, TaskId, TaskSet};
use serde::{Deserialize, Serialize};

/// Computed priority assignment for a task set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityMap {
    mandatory: Vec<Priority>,
    optional: Vec<Priority>,
    hpq: Vec<TaskId>,
}

impl PriorityMap {
    /// Assigns priorities for `set` on `m` processors.
    ///
    /// Tasks with `Uᵢ > M/(3M−2)` go to the HPQ (level 99, optional
    /// threads at 50 − 49 = ... the top optional level 49). The rest are
    /// ranked Rate Monotonically from level 98 downwards.
    ///
    /// # Errors
    ///
    /// [`PriorityMapError::TooManyTasks`] if more than 49 non-HPQ tasks
    /// would be needed (the RTQ band has exactly 49 levels and RT-Seed
    /// assigns distinct levels so FIFO order within a level never masks RM
    /// order).
    pub fn assign(set: &TaskSet, m: usize) -> Result<PriorityMap, PriorityMapError> {
        let threshold = rmus_threshold(m);
        let mut mandatory = vec![Priority::RTQ_MIN; set.len()];
        let mut optional = vec![Priority::NRTQ_MIN; set.len()];
        let mut hpq = Vec::new();

        let mut rank = 0u8;
        for id in set.rm_order() {
            let spec = set.task(id);
            if spec.utilization() > threshold {
                hpq.push(id);
                mandatory[id.index()] = Priority::HPQ;
                // The HPQ task's optional threads sit at the top of the
                // optional band, above every other task's optional threads.
                optional[id.index()] = Priority::NRTQ_MAX;
            } else {
                let level = 98u8
                    .checked_sub(rank)
                    .filter(|l| *l >= 50)
                    .ok_or(PriorityMapError::TooManyTasks { tasks: set.len() })?;
                let p = Priority::new(level).expect("50..=98 is valid");
                mandatory[id.index()] = p;
                optional[id.index()] =
                    p.optional_counterpart().expect("mandatory band");
                rank += 1;
            }
        }

        Ok(PriorityMap {
            mandatory,
            optional,
            hpq,
        })
    }

    /// The mandatory/wind-up thread priority of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn mandatory(&self, task: TaskId) -> Priority {
        self.mandatory[task.index()]
    }

    /// The parallel-optional-thread priority of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn optional(&self, task: TaskId) -> Priority {
        self.optional[task.index()]
    }

    /// Tasks assigned to the HPQ (priority 99).
    #[inline]
    pub fn hpq_tasks(&self) -> &[TaskId] {
        &self.hpq
    }
}

/// Error from [`PriorityMap::assign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PriorityMapError {
    /// More tasks than distinct RTQ levels (49).
    TooManyTasks {
        /// Number of tasks in the set.
        tasks: usize,
    },
}

impl fmt::Display for PriorityMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityMapError::TooManyTasks { tasks } => write!(
                f,
                "{tasks} tasks exceed the 49 distinct RTQ priority levels (50-98)"
            ),
        }
    }
}

impl std::error::Error for PriorityMapError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::{Span, TaskSpec};

    fn task(name: &str, period_ms: u64, m_ms: u64, w_ms: u64) -> TaskSpec {
        let mut b = TaskSpec::builder(name);
        b.period(Span::from_millis(period_ms))
            .mandatory(Span::from_millis(m_ms))
            .windup(Span::from_millis(w_ms));
        b.build().unwrap()
    }

    #[test]
    fn rm_order_maps_to_descending_levels() {
        let set = TaskSet::new(vec![
            task("slow", 1000, 10, 10),
            task("fast", 10, 1, 1),
            task("mid", 100, 5, 5),
        ])
        .unwrap();
        let map = PriorityMap::assign(&set, 228).unwrap();
        // fast (rank 0) → 98, mid → 97, slow → 96.
        assert_eq!(map.mandatory(TaskId(1)).level(), 98);
        assert_eq!(map.mandatory(TaskId(2)).level(), 97);
        assert_eq!(map.mandatory(TaskId(0)).level(), 96);
    }

    #[test]
    fn optional_is_exactly_49_below() {
        let set = TaskSet::new(vec![task("a", 100, 10, 10), task("b", 200, 10, 10)]).unwrap();
        let map = PriorityMap::assign(&set, 4).unwrap();
        for id in set.ids() {
            assert_eq!(
                map.mandatory(id).level() - map.optional(id).level(),
                Priority::MANDATORY_OPTIONAL_GAP
            );
        }
    }

    #[test]
    fn heavy_task_goes_to_hpq() {
        // M = 228 ⇒ threshold = 228/682 ≈ 0.334; U = 0.5 exceeds it.
        let set = TaskSet::new(vec![
            task("heavy", 1000, 250, 250),
            task("light", 100, 1, 1),
        ])
        .unwrap();
        let map = PriorityMap::assign(&set, 228).unwrap();
        assert_eq!(map.hpq_tasks(), &[TaskId(0)]);
        assert_eq!(map.mandatory(TaskId(0)), Priority::HPQ);
        assert_eq!(map.optional(TaskId(0)), Priority::NRTQ_MAX);
        // The light task is ranked normally.
        assert_eq!(map.mandatory(TaskId(1)).level(), 98);
    }

    #[test]
    fn uniprocessor_has_no_hpq_tasks() {
        // Threshold is 1.0 on one processor; nothing can exceed it.
        let set = TaskSet::new(vec![task("big", 100, 45, 45)]).unwrap();
        let map = PriorityMap::assign(&set, 1).unwrap();
        assert!(map.hpq_tasks().is_empty());
        assert_eq!(map.mandatory(TaskId(0)).level(), 98);
    }

    #[test]
    fn forty_nine_tasks_fit_fifty_do_not() {
        let mk = |n: usize| {
            TaskSet::new(
                (0..n)
                    .map(|i| task(&format!("t{i}"), 1000 + i as u64, 1, 1))
                    .collect(),
            )
            .unwrap()
        };
        assert!(PriorityMap::assign(&mk(49), 1).is_ok());
        let err = PriorityMap::assign(&mk(50), 1).unwrap_err();
        assert_eq!(err, PriorityMapError::TooManyTasks { tasks: 50 });
        assert!(err.to_string().contains("49 distinct"));
    }

    #[test]
    fn lowest_rank_gets_level_50() {
        let set = TaskSet::new(
            (0..49)
                .map(|i| task(&format!("t{i}"), 1000 + i as u64, 1, 1))
                .collect(),
        )
        .unwrap();
        let map = PriorityMap::assign(&set, 1).unwrap();
        assert_eq!(map.mandatory(TaskId(48)).level(), 50);
        assert_eq!(map.optional(TaskId(48)).level(), 1);
    }

    #[test]
    fn all_mandatory_above_all_optional() {
        let set = TaskSet::new(
            (0..10)
                .map(|i| task(&format!("t{i}"), 100 + i as u64 * 10, 2, 2))
                .collect(),
        )
        .unwrap();
        let map = PriorityMap::assign(&set, 4).unwrap();
        let min_mand = set.ids().map(|i| map.mandatory(i)).min().unwrap();
        let max_opt = set.ids().map(|i| map.optional(i)).max().unwrap();
        assert!(min_mand > max_opt);
    }
}
