//! The unified executor API: one [`RunConfig`], one [`Outcome`], one
//! [`Executor`] trait over all three backends.
//!
//! RT-Seed can run the same [`SystemConfig`] on three substrates — the
//! discrete-event simulator ([`crate::exec_sim::SimExecutor`]), the
//! global-scheduling ablation ([`crate::exec_global::GlobalExecutor`]),
//! and real POSIX threads ([`crate::runtime::NativeExecutor`]). They
//! accept the same [`RunConfig`] (each backend reads the fields that
//! apply to it) and produce the same [`Outcome`], so measurement and
//! comparison code is backend-agnostic.
//!
//! # Examples
//!
//! Build a validated run configuration:
//!
//! ```
//! use rtseed::executor::{RunConfig, RunConfigError};
//! use rtseed::obs::TraceConfig;
//!
//! let run = RunConfig::builder()
//!     .jobs(50)
//!     .seed(7)
//!     .trace(TraceConfig::enabled())
//!     .build()?;
//! assert_eq!(run.jobs, 50);
//!
//! // Validation errors are typed:
//! let err = RunConfig::builder().rt_exec_fraction(2.0).build().unwrap_err();
//! assert!(matches!(err, RunConfigError::ExecFraction { .. }));
//! # Ok::<(), rtseed::executor::RunConfigError>(())
//! ```
//!
//! Run any backend through the trait:
//!
//! ```
//! use rtseed::prelude::*;
//!
//! let spec = TaskSpec::builder("t")
//!     .period(Span::from_millis(100))
//!     .mandatory(Span::from_millis(5))
//!     .windup(Span::from_millis(5))
//!     .optional_parts(2, Span::from_millis(10))
//!     .build()?;
//! let system = SystemConfig::build(
//!     TaskSet::new(vec![spec])?,
//!     Topology::quad_core_smt2(),
//!     AssignmentPolicy::OneByOne,
//! )?;
//! let run = RunConfig::builder().jobs(3).build()?;
//!
//! let mut executors: Vec<Box<dyn Executor>> = vec![
//!     Box::new(SimExecutor::new(system.clone(), run.clone())),
//!     Box::new(GlobalExecutor::from_config(&system, run)),
//! ];
//! for ex in &mut executors {
//!     let outcome = ex.execute()?;
//!     assert_eq!(outcome.qos.jobs(), 3);
//!     assert_eq!(outcome.qos.deadline_misses(), 0);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use core::fmt;

use rtseed_model::{QosSummary, Span};
use rtseed_sim::{BackgroundLoad, Calibration, FaultPlan, OverheadKind};

use crate::config::SystemConfig;
use crate::obs::{MetricsRegistry, Trace, TraceConfig};
use crate::report::{FaultReport, OverheadReport};
use crate::runtime::{RuntimeError, RuntimeReport};
use crate::supervisor::SupervisorConfig;
use crate::termination::TerminationMode;

/// Which execution substrate produced an [`Outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Discrete-event simulation (P-RMWP, [`crate::exec_sim`]).
    Sim,
    /// Global-scheduling ablation (G-RMWP, [`crate::exec_global`]).
    Global,
    /// Real POSIX threads ([`crate::runtime`]).
    Native,
}

impl Backend {
    /// Short lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Global => "global",
            Backend::Native => "native",
        }
    }
}

/// Run parameters shared by every backend.
///
/// Each backend reads the subset that applies to it and ignores the rest
/// (the simulator ignores `attempt_rt`; the native runtime ignores
/// `calibration`, `load`, `seed`, `migration_cost`, `fault_plan`,
/// `supervisor`; the global ablation ignores `calibration`,
/// `load`). Construct it with
/// [`RunConfig::builder`] for validation, or as a struct literal with
/// `..Default::default()`.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of jobs each task executes (the paper uses 100).
    pub jobs: u64,
    /// Background load condition (§V-B; sim backend).
    pub load: BackgroundLoad,
    /// Overhead-model calibration (sim backend).
    pub calibration: Calibration,
    /// Seed for the deterministic jitter stream (sim backend).
    pub seed: u64,
    /// Optional-part termination mechanism (Table I).
    pub termination: TerminationMode,
    /// Deprecated switch for trace collection; prefer `trace`. When set,
    /// tracing is enabled with the default ring capacity.
    pub collect_trace: bool,
    /// Observability sink: whether and how to record a [`Trace`].
    pub trace: TraceConfig,
    /// Fraction of the declared mandatory/wind-up WCET the actual
    /// computation consumes. The paper's model states that "the overheads
    /// of real-time scheduling are included in the WCETs of the
    /// mandatory/wind-up parts" (§II-A), so the real computation must
    /// leave headroom for Δm/Δb/Δs/Δe; 0.75 leaves 25 %, enough for the
    /// worst measured Δe (≈ 55 ms at np = 228 under CPU-Memory load
    /// against a 250 ms wind-up WCET).
    pub rt_exec_fraction: f64,
    /// Deterministic fault schedule injected into the run
    /// ([`FaultPlan::none`] by default: a healthy machine).
    pub fault_plan: FaultPlan,
    /// Overload supervisor configuration (disabled by default: faults run
    /// their course unsupervised).
    pub supervisor: SupervisorConfig,
    /// Cost added to a real-time part's remaining execution each time it
    /// resumes on a different hardware thread (global backend only).
    pub migration_cost: Span,
    /// Whether to attempt `SCHED_FIFO` and affinity syscalls (native
    /// backend only; disable in tests that must not perturb the host).
    pub attempt_rt: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            jobs: 100,
            load: BackgroundLoad::NoLoad,
            calibration: Calibration::default(),
            seed: 0,
            termination: TerminationMode::SigjmpTimer,
            collect_trace: false,
            trace: TraceConfig::disabled(),
            rt_exec_fraction: 0.75,
            fault_plan: FaultPlan::none(),
            supervisor: SupervisorConfig::default(),
            migration_cost: Span::from_micros(100),
            attempt_rt: true,
        }
    }
}

impl RunConfig {
    /// Starts a builder with the defaults.
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder {
            cfg: RunConfig::default(),
        }
    }

    /// The effective trace configuration, honouring the deprecated
    /// `collect_trace` switch.
    pub fn trace_config(&self) -> TraceConfig {
        TraceConfig {
            enabled: self.trace.enabled || self.collect_trace,
            capacity: self.trace.capacity,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`RunConfigError::ExecFraction`] unless
    /// `0 < rt_exec_fraction ≤ 1`; [`RunConfigError::ZeroTraceCapacity`]
    /// if tracing is enabled with a zero-event ring.
    pub fn validate(&self) -> Result<(), RunConfigError> {
        if !(self.rt_exec_fraction > 0.0 && self.rt_exec_fraction <= 1.0) {
            return Err(RunConfigError::ExecFraction {
                got: self.rt_exec_fraction,
            });
        }
        if self.trace_config().enabled && self.trace.capacity == 0 {
            return Err(RunConfigError::ZeroTraceCapacity);
        }
        Ok(())
    }
}

/// Builder for [`RunConfig`]; finish with
/// [`build`](RunConfigBuilder::build) for a validated configuration.
#[derive(Debug, Clone)]
pub struct RunConfigBuilder {
    cfg: RunConfig,
}

impl RunConfigBuilder {
    /// Number of jobs each task executes.
    pub fn jobs(mut self, jobs: u64) -> Self {
        self.cfg.jobs = jobs;
        self
    }

    /// Background load condition (sim backend).
    pub fn load(mut self, load: BackgroundLoad) -> Self {
        self.cfg.load = load;
        self
    }

    /// Overhead-model calibration (sim backend).
    pub fn calibration(mut self, calibration: Calibration) -> Self {
        self.cfg.calibration = calibration;
        self
    }

    /// Seed for the deterministic jitter stream (sim backend).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Optional-part termination mechanism.
    pub fn termination(mut self, termination: TerminationMode) -> Self {
        self.cfg.termination = termination;
        self
    }

    /// Observability sink configuration.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.cfg.trace = trace;
        self
    }

    /// Fraction of declared WCET the real computation consumes.
    pub fn rt_exec_fraction(mut self, fraction: f64) -> Self {
        self.cfg.rt_exec_fraction = fraction;
        self
    }

    /// Deterministic fault schedule.
    pub fn fault_plan(mut self, fault_plan: FaultPlan) -> Self {
        self.cfg.fault_plan = fault_plan;
        self
    }

    /// Overload supervisor configuration.
    pub fn supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.cfg.supervisor = supervisor;
        self
    }

    /// Migration penalty (global backend).
    pub fn migration_cost(mut self, cost: Span) -> Self {
        self.cfg.migration_cost = cost;
        self
    }

    /// Whether to attempt privileged RT syscalls (native backend).
    pub fn attempt_rt(mut self, attempt: bool) -> Self {
        self.cfg.attempt_rt = attempt;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`RunConfig::validate`].
    pub fn build(self) -> Result<RunConfig, RunConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A [`RunConfig`] validation error.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum RunConfigError {
    /// `rt_exec_fraction` must lie in `(0, 1]`.
    ExecFraction {
        /// The rejected value.
        got: f64,
    },
    /// Tracing was enabled with a zero-capacity ring.
    ZeroTraceCapacity,
}

impl fmt::Display for RunConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunConfigError::ExecFraction { got } => {
                write!(f, "rt_exec_fraction must be within (0, 1], got {got}")
            }
            RunConfigError::ZeroTraceCapacity => {
                write!(f, "trace ring capacity must be at least 1 event")
            }
        }
    }
}

impl std::error::Error for RunConfigError {}

/// Unified results of a run on any backend.
///
/// Fields a backend does not produce hold their empty/zero defaults
/// (e.g. `migrations` is 0 for the partitioned backends, `runtime` is
/// all-default off the native backend; the global ablation records only
/// the termination overhead Δe, since its dispatch itself is costless).
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// QoS summary across all jobs of all tasks.
    pub qos: QosSummary,
    /// The four middleware overheads (Δm, Δb, Δs, Δe), one sample per
    /// applicable job.
    pub overheads: OverheadReport,
    /// Fault injections observed and supervisor responses.
    pub faults: FaultReport,
    /// Histogram metrics: overheads, response times, release jitter, QoS.
    pub metrics: MetricsRegistry,
    /// Execution trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// Real-time part migrations (global backend).
    pub migrations: u64,
    /// Total execution time added by migrations (global backend).
    pub migration_overhead: Span,
    /// Real-time dispatches (global backend).
    pub dispatches: u64,
    /// Discrete events processed by the event loop (sim and global
    /// backends; 0 for the native backend, which has no event loop). The
    /// `simbench` harness divides this by wall-clock time to report
    /// events/sec.
    pub events_processed: u64,
    /// What the privileged setup calls achieved (native backend).
    pub runtime: RuntimeReport,
}

impl Outcome {
    /// A human-readable multi-line summary — QoS, the four overhead means,
    /// faults and trace volume — shared by the example and bench binaries
    /// so each does not hand-roll its own report.
    pub fn summary(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "QoS: {}", self.qos);
        let _ = writeln!(s, "Overheads (mean over {} jobs):", self.qos.jobs());
        for kind in OverheadKind::ALL {
            let _ = writeln!(s, "  {:>3}: {}", kind.symbol(), self.overheads.mean(kind));
        }
        if !self.faults.is_clean() {
            let _ = writeln!(s, "Faults: {}", self.faults);
        }
        if !self.trace.is_empty() {
            let _ = writeln!(
                s,
                "Trace: {} events ({} dropped)",
                self.trace.len(),
                self.trace.dropped()
            );
        }
        s
    }
}

/// Why an [`Executor::execute`] call failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// The run configuration failed validation.
    Config(RunConfigError),
    /// The native runtime could not produce an outcome.
    Runtime(RuntimeError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Config(e) => write!(f, "invalid run configuration: {e}"),
            ExecError::Runtime(e) => write!(f, "native runtime failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Config(e) => Some(e),
            ExecError::Runtime(e) => Some(e),
        }
    }
}

impl From<RunConfigError> for ExecError {
    fn from(e: RunConfigError) -> ExecError {
        ExecError::Config(e)
    }
}

impl From<RuntimeError> for ExecError {
    fn from(e: RuntimeError) -> ExecError {
        ExecError::Runtime(e)
    }
}

/// A backend that can run a configured system to completion.
///
/// Implemented by [`crate::exec_sim::SimExecutor`],
/// [`crate::exec_global::GlobalExecutor`] and
/// [`crate::runtime::NativeExecutor`]; see the module docs for a
/// trait-object example.
pub trait Executor {
    /// Which substrate this is.
    fn backend(&self) -> Backend;

    /// The system configuration this executor runs.
    fn system(&self) -> &SystemConfig;

    /// Runs to completion and returns the unified measurements.
    ///
    /// # Errors
    ///
    /// [`ExecError::Runtime`] when the native backend cannot produce an
    /// outcome (body mismatch, user panic); the simulated backends are
    /// infallible.
    fn execute(&mut self) -> Result<Outcome, ExecError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let cfg = RunConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.jobs, 100);
        assert!(!cfg.trace_config().enabled);
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = RunConfig::builder()
            .jobs(7)
            .seed(42)
            .rt_exec_fraction(1.0)
            .migration_cost(Span::from_micros(5))
            .attempt_rt(false)
            .trace(TraceConfig::bounded(128))
            .build()
            .unwrap();
        assert_eq!(cfg.jobs, 7);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.migration_cost, Span::from_micros(5));
        assert!(!cfg.attempt_rt);
        assert!(cfg.trace_config().enabled);
        assert_eq!(cfg.trace.capacity, 128);
    }

    #[test]
    fn exec_fraction_is_validated() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = RunConfig::builder().rt_exec_fraction(bad).build();
            assert!(
                matches!(err, Err(RunConfigError::ExecFraction { .. })),
                "{bad} must be rejected"
            );
        }
        assert!(RunConfig::builder().rt_exec_fraction(1.0).build().is_ok());
    }

    #[test]
    fn zero_trace_capacity_is_rejected_only_when_enabled() {
        let err = RunConfig::builder()
            .trace(TraceConfig::bounded(0))
            .build()
            .unwrap_err();
        assert_eq!(err, RunConfigError::ZeroTraceCapacity);
        assert!(err.to_string().contains("at least 1"), "{err}");
        // A zero capacity on a *disabled* sink is inert, not an error.
        let cfg = RunConfig {
            trace: TraceConfig {
                enabled: false,
                capacity: 0,
            },
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn collect_trace_enables_the_sink() {
        let cfg = RunConfig {
            collect_trace: true,
            ..Default::default()
        };
        let t = cfg.trace_config();
        assert!(t.enabled);
        assert_eq!(t.capacity, TraceConfig::DEFAULT_CAPACITY);
    }

    #[test]
    fn backend_names() {
        assert_eq!(Backend::Sim.name(), "sim");
        assert_eq!(Backend::Global.name(), "global");
        assert_eq!(Backend::Native.name(), "native");
    }

    #[test]
    fn error_display_and_source() {
        let e = ExecError::from(RunConfigError::ZeroTraceCapacity);
        assert!(e.to_string().contains("invalid run configuration"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
