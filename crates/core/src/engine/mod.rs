//! Backend-independent P-RMWP engine: the single home of the per-task /
//! per-job part state machine (paper §II–§IV).
//!
//! The engine is **sans-IO**: it owns job/part state as pure data and never
//! touches an event queue, a ready queue, a thread, or a timer. Drivers
//! (the discrete-event [`SimExecutor`](crate::exec_sim::SimExecutor), the
//! global-scheduling ablation
//! [`GlobalExecutor`](crate::exec_global::GlobalExecutor), and the native
//! POSIX [`runtime`](crate::runtime)) feed it typed inputs — a job released,
//! a part completed, the optional-deadline timer fired, a wind-up release
//! arrived, a CPU stalled — and act on the typed commands it returns:
//! arm a timer at a given instant, stop a part on a given hardware thread,
//! release the wind-up at a given instant, or nothing because the engine
//! already finished the job.
//!
//! Everything behavioural lives here exactly once:
//!
//! * the [`JobPhase`] lifecycle (release → mandatory → parallel optional →
//!   OD termination → wind-up → done/abort), with the legal transitions
//!   `debug_assert`-checked against [`JobPhase::can_transition_to`];
//! * execution banking and supervisor budget cuts;
//! * OD/wind-up sequencing, including the §IV-B sleep-queue wait and the
//!   Table I signal-mask defect that breaks later timers;
//! * QoS streaming ([`QosSummary::record_job`]), response-time/jitter
//!   metrics, and every [`TraceEvent`] the protocol emits.
//!
//! What stays in the driver is *mechanism*: dispatching and preemption
//! (ready queues, migration), overhead sampling order (the simulator's
//! [`OverheadModel`](rtseed_sim::OverheadModel) calls happen driver-side so
//! the RNG stream is untouched by refactors), and the mapping from engine
//! commands onto events, threads, or timers. Drivers call the fine-grained
//! methods in the same order the protocol performs the underlying actions,
//! which keeps traces — including the byte-identical golden trace —
//! reproducible across backends.
//!
//! The engine preserves the allocation-free hot path: per-task state lives
//! in slabs reused across jobs (`parts` is cleared and resized in place),
//! and no engine method allocates in steady state.

use rtseed_model::{
    CoreId, HwThreadId, JobId, JobPhase, OptionalOutcome, PartId, Priority,
    QosSummary, Span, TaskId, TenantId, Time, Topology,
};
use rtseed_sim::{FaultPlan, FaultTarget, OverheadKind, TimerFault};

use crate::config::SystemConfig;
use crate::executor::RunConfig;
use crate::obs::{MetricsRegistry, Trace, TraceEvent, TraceRecorder};
use crate::obs::{QueueBand, QueueOp};
use crate::report::{FaultReport, OverheadReport};
use crate::supervisor::{OverloadSupervisor, SupervisorConfig};
use crate::termination::TerminationMode;

/// Which part of a job a unit of schedulable work belongs to.
///
/// Shared by every driver's work/dispatch bookkeeping so the engine can
/// identify the part being banked, dispatched, cut, or stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cursor {
    /// The mandatory part (SCHED_FIFO, pinned).
    Mandatory,
    /// Optional part `k` (NRTQ priority, policy-placed).
    Optional(u32),
    /// The wind-up part (SCHED_FIFO, pinned).
    Windup,
}

/// What [`Engine::release`] established for the new job.
#[derive(Debug, Clone, Copy)]
pub struct Release {
    /// The released job's identity.
    pub job: JobId,
    /// The job's sequence number (feed back into
    /// [`Engine::od_expired`] / [`Engine::windup_ready`] so stale timers
    /// are detected).
    pub seq: u64,
    /// The job has optional parts, so an OD timer should be armed.
    pub has_parts: bool,
    /// When the task's next job releases, if any jobs remain.
    pub next_release: Option<Time>,
}

/// How the wind-up part of a job is to be released.
#[derive(Debug, Clone, Copy)]
pub enum WindupCommand {
    /// There is no wind-up part; the engine already finished the job with
    /// the given deadline verdict. Nothing to do.
    Finished {
        /// Whether the job met its relative deadline.
        met: bool,
    },
    /// The wind-up was already scheduled earlier in this job; ignore.
    AlreadyScheduled,
    /// Release the wind-up part at `at` (now or in the future — the task
    /// sleeps in the SQ until then). The driver delivers
    /// [`Engine::windup_ready`] with the same `seq` at that instant.
    At {
        /// The wind-up release instant.
        at: Time,
        /// The job sequence number to echo back.
        seq: u64,
    },
}

/// What follows the completion of a job's mandatory part.
#[derive(Debug, Clone, Copy)]
pub enum AfterMandatory {
    /// No optional execution happens (no parts, parts discarded at OD
    /// overrun, or parts shed by the supervisor): proceed per the wind-up
    /// command.
    Windup(WindupCommand),
    /// Signal all `np` optional parts: the driver runs its backend's
    /// signalling mechanism (Δb/Δs costs, thread wake-ups) and makes each
    /// part runnable.
    Signal {
        /// Number of optional parts to signal.
        np: usize,
    },
}

/// Verdict of delivering an optional-deadline timer expiry to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OdAction {
    /// The timer was stale (old job, broken timer): nothing happened.
    Stale,
    /// The expiry was absorbed without terminations (mandatory part still
    /// running, or all parts already ended).
    Handled,
    /// Terminate the job's still-active optional parts: for each `k` in
    /// `0..np`, call [`Engine::plan_terminate`] / stop the part /
    /// [`Engine::commit_terminate`], then [`Engine::finish_termination`].
    Terminate {
        /// Number of optional parts (the loop bound; ended parts are
        /// skipped by [`Engine::plan_terminate`] returning `None`).
        np: usize,
    },
}

/// Where a part to be terminated is running or queued, for the driver to
/// stop it.
#[derive(Debug, Clone, Copy)]
pub struct StopTarget {
    /// Hardware thread the part was placed on.
    pub hw: usize,
    /// The priority level it occupies there.
    pub prio: Priority,
    /// The termination handler hopped to a different core than the
    /// previous part's (drives the simulator's cross-core Δe cost).
    pub cross_core: bool,
}

/// Everything the engine measured, surrendered at the end of a run.
#[derive(Debug)]
pub struct EngineOutput {
    /// Per-job QoS accounting (§IV).
    pub qos: QosSummary,
    /// Per-kind overhead samples (Δm/Δb/Δs/Δe) the driver fed in.
    pub overheads: OverheadReport,
    /// Histogram metrics (overheads, response times, jitter, QoS ppm).
    pub metrics: MetricsRegistry,
    /// The recorded trace (empty and free if tracing was disabled).
    pub trace: Trace,
    /// Supervisor fault/overload counters.
    pub faults: FaultReport,
    /// Per-tenant QoS accounting, in first-admission order. Empty unless
    /// tasks were added with a tenant via [`Engine::add_task`] (the
    /// one-shot executors never tag tasks, so their outputs carry none).
    pub tenant_qos: Vec<(TenantId, QosSummary)>,
}

/// Static description of one task for dynamic addition to a running
/// engine ([`Engine::add_task`]): everything the offline construction path
/// reads from a
/// [`SystemConfig`], but owned, so the serving layer can construct it from
/// an admission decision at runtime.
#[derive(Debug, Clone)]
pub struct TaskParams {
    /// The task's identity (unique within this engine).
    pub id: TaskId,
    /// Owning tenant, if the task was admitted by the serving layer.
    pub tenant: Option<TenantId>,
    /// Hardware thread the mandatory/wind-up parts are pinned to.
    pub mandatory_hw: usize,
    /// Hardware thread each optional part is placed on.
    pub placements: Vec<usize>,
    /// SCHED_FIFO priority of the real-time parts.
    pub mand_prio: Priority,
    /// SCHED_FIFO priority of the optional parts.
    pub opt_prio: Priority,
    /// Period `Tᵢ`.
    pub period: Span,
    /// Relative deadline `Dᵢ`.
    pub deadline: Span,
    /// Mandatory WCET `mᵢ` (as declared; the engine applies the run's
    /// `rt_exec_fraction`, matching [`Engine::new`]).
    pub mandatory: Span,
    /// Wind-up WCET `wᵢ` (as declared, see `mandatory`).
    pub windup: Span,
    /// Optional part demands `oᵢ,ₖ`.
    pub optional: Vec<Span>,
    /// Relative optional deadline from the admission analysis.
    pub od: Span,
}

#[derive(Debug, Clone)]
struct PartState {
    executed: Span,
    running_since: Option<Time>,
    started: Option<Time>,
    outcome: Option<OptionalOutcome>,
}

impl PartState {
    fn fresh() -> PartState {
        PartState {
            executed: Span::ZERO,
            running_since: None,
            started: None,
            outcome: None,
        }
    }
}

#[derive(Debug)]
struct TaskState {
    // Static configuration.
    id: TaskId,
    tenant: Option<TenantId>,
    mandatory_hw: usize,
    placements: Vec<usize>,
    mand_prio: Priority,
    opt_prio: Priority,
    period: Span,
    deadline: Span,
    mandatory: Span,
    windup: Span,
    optional: Vec<Span>,
    od: Span,
    // Per-job state.
    seq: u64,
    release: Time,
    phase: JobPhase,
    rt_remaining: Span,
    /// Supervisor execution budget remaining for the current real-time
    /// part (only enforced when the supervisor is armed).
    rt_budget: Span,
    parts: Vec<PartState>,
    windup_scheduled: bool,
    /// The task entered the SQ waiting for its wind-up release (traced so
    /// the SQ enqueue/remove pair stays balanced).
    in_sq: bool,
    /// The current job exceeded a real-time budget (supervisor cut it).
    overran: bool,
    /// The current job ran with its optional parts shed (degraded mode or
    /// quarantine).
    shed: bool,
    /// Serving-layer health quarantine: shed this task's optional parts
    /// on every job until cleared, regardless of supervisor state.
    force_shed: bool,
    // Across jobs.
    timer_broken: bool,
    jobs_done: u64,
}

impl TaskState {
    fn od_time(&self) -> Time {
        self.release + self.od
    }

    fn job(&self) -> JobId {
        JobId {
            task: self.id,
            seq: self.seq,
        }
    }

    fn parts_all_ended(&self) -> bool {
        self.parts.iter().all(|p| p.outcome.is_some())
    }

    fn requested_optional(&self) -> Span {
        self.optional.iter().copied().sum()
    }
}

/// The shared P-RMWP part state machine (see the [module docs](self)).
///
/// One `Engine` instance drives either a whole task set (simulation and
/// global backends, [`Engine::new`]) or a single task (one per native
/// thread, [`Engine::single_task`]; per-thread outputs are merged by the
/// native executor).
#[derive(Debug)]
pub struct Engine {
    tasks: Vec<TaskState>,
    jobs: u64,
    live: usize,
    rt_exec_fraction: f64,
    fault_plan: FaultPlan,
    termination: TerminationMode,
    topology: Topology,
    sup: OverloadSupervisor,
    qos: QosSummary,
    /// Per-tenant QoS summaries in first-admission order; empty (and
    /// untouched on the hot path) when no task carries a tenant tag.
    tenant_qos: Vec<(TenantId, QosSummary)>,
    overheads: OverheadReport,
    metrics: MetricsRegistry,
    rec: TraceRecorder,
    // Termination-loop scratch (reset by `od_expired`, consumed by
    // `finish_termination`): keeps the O(npᵢ) handling serialization and
    // the cooperative-mode lag without per-expiry allocation.
    term_at: Time,
    term_handling: Span,
    term_max_lag: Span,
    term_prev_core: Option<CoreId>,
    pending_achieved: Span,
    /// When set (serving layer with health enforcement), every finished
    /// job of a tenant-owned task appends a [`JobSignal`] for the driver
    /// to drain. Off by default: the one-shot executors never pay for it.
    collect_signals: bool,
    signals: Vec<JobSignal>,
}

/// One finished job of a tenant-owned task, as observed by the engine —
/// the raw material for serving-layer tenant health accounting. Emitted
/// only after [`Engine::collect_job_signals`] opted in; drained with
/// [`Engine::drain_job_signals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSignal {
    /// Engine slot of the task whose job finished.
    pub task: usize,
    /// The owning tenant.
    pub tenant: TenantId,
    /// Whether the job met its relative deadline.
    pub met: bool,
    /// Whether a real-time part of the job overran its supervisor budget.
    pub overran: bool,
    /// Whether the job ran with its optional parts shed (degraded mode,
    /// supervisor quarantine, or serving-layer health quarantine).
    pub shed: bool,
}

fn build_task(cfg: &SystemConfig, id: TaskId, rt_exec_fraction: f64) -> TaskState {
    let spec = cfg.set().get(id).expect("task id out of range");
    TaskState {
        id,
        tenant: None,
        mandatory_hw: cfg.mandatory_hw(id).index(),
        placements: cfg
            .optional_placements(id)
            .iter()
            .map(|h| h.index())
            .collect(),
        mand_prio: cfg.priorities().mandatory(id),
        opt_prio: cfg.priorities().optional(id),
        period: spec.period(),
        deadline: spec.deadline(),
        mandatory: spec.mandatory().mul_f64(rt_exec_fraction),
        windup: spec.windup().mul_f64(rt_exec_fraction),
        optional: spec.optional_parts().to_vec(),
        od: cfg.optional_deadline(id),
        seq: 0,
        release: Time::ZERO,
        phase: JobPhase::Done, // becomes Released at first release
        rt_remaining: Span::ZERO,
        rt_budget: Span::ZERO,
        parts: Vec::new(),
        windup_scheduled: false,
        in_sq: false,
        overran: false,
        shed: false,
        force_shed: false,
        timer_broken: false,
        jobs_done: 0,
    }
}

impl Engine {
    /// Creates an engine for every task of `cfg` with run parameters `run`.
    pub fn new(cfg: &SystemConfig, run: &RunConfig) -> Engine {
        assert!(
            run.rt_exec_fraction > 0.0 && run.rt_exec_fraction <= 1.0,
            "rt_exec_fraction must be within (0, 1]"
        );
        let tasks: Vec<TaskState> = cfg
            .set()
            .iter()
            .map(|(id, _)| build_task(cfg, id, run.rt_exec_fraction))
            .collect();
        let live = tasks.len();
        let sup = OverloadSupervisor::new(run.supervisor, tasks.len());
        Engine {
            tasks,
            jobs: run.jobs,
            live,
            rt_exec_fraction: run.rt_exec_fraction,
            fault_plan: run.fault_plan.clone(),
            termination: run.termination,
            topology: *cfg.topology(),
            sup,
            qos: QosSummary::new(),
            tenant_qos: Vec::new(),
            overheads: OverheadReport::new(),
            metrics: MetricsRegistry::new(),
            rec: TraceRecorder::new(run.trace_config()),
            term_at: Time::ZERO,
            term_handling: Span::ZERO,
            term_max_lag: Span::ZERO,
            term_prev_core: None,
            pending_achieved: Span::ZERO,
            collect_signals: false,
            signals: Vec::new(),
        }
    }

    /// Creates an engine driving only task `id` of `cfg` (the native
    /// runtime runs one engine per task thread and merges the outputs).
    ///
    /// Fault injection and the overload supervisor are simulation-side
    /// concerns and stay disabled here.
    pub fn single_task(cfg: &SystemConfig, id: TaskId, run: &RunConfig) -> Engine {
        assert!(
            run.rt_exec_fraction > 0.0 && run.rt_exec_fraction <= 1.0,
            "rt_exec_fraction must be within (0, 1]"
        );
        let tasks = vec![build_task(cfg, id, run.rt_exec_fraction)];
        Engine {
            tasks,
            jobs: run.jobs,
            live: 1,
            rt_exec_fraction: run.rt_exec_fraction,
            fault_plan: FaultPlan::default(),
            termination: run.termination,
            topology: *cfg.topology(),
            sup: OverloadSupervisor::new(SupervisorConfig::default(), 1),
            qos: QosSummary::new(),
            tenant_qos: Vec::new(),
            overheads: OverheadReport::new(),
            metrics: MetricsRegistry::new(),
            rec: TraceRecorder::new(run.trace_config()),
            term_at: Time::ZERO,
            term_handling: Span::ZERO,
            term_max_lag: Span::ZERO,
            term_prev_core: None,
            pending_achieved: Span::ZERO,
            collect_signals: false,
            signals: Vec::new(),
        }
    }

    /// Creates an engine with **no tasks** on `topology`: the serving
    /// layer's starting point. Tasks arrive later through
    /// [`Engine::add_task`] as tenants are admitted, and leave through
    /// [`Engine::remove_task`] as they depart.
    ///
    /// `run` supplies everything run-scoped: the per-task job quota, the
    /// `rt_exec_fraction`, the termination mode, fault plan, supervisor
    /// config, and trace sink.
    pub fn empty(topology: Topology, run: &RunConfig) -> Engine {
        assert!(
            run.rt_exec_fraction > 0.0 && run.rt_exec_fraction <= 1.0,
            "rt_exec_fraction must be within (0, 1]"
        );
        Engine {
            tasks: Vec::new(),
            jobs: run.jobs,
            live: 0,
            rt_exec_fraction: run.rt_exec_fraction,
            fault_plan: run.fault_plan.clone(),
            termination: run.termination,
            topology,
            sup: OverloadSupervisor::new(run.supervisor, 0),
            qos: QosSummary::new(),
            tenant_qos: Vec::new(),
            overheads: OverheadReport::new(),
            metrics: MetricsRegistry::new(),
            rec: TraceRecorder::new(run.trace_config()),
            term_at: Time::ZERO,
            term_handling: Span::ZERO,
            term_max_lag: Span::ZERO,
            term_prev_core: None,
            pending_achieved: Span::ZERO,
            collect_signals: false,
            signals: Vec::new(),
        }
    }

    // ----- dynamic task arrival / departure -------------------------------

    /// Adds a task mid-run and returns its engine index (dense, stable for
    /// the engine's lifetime — departed tasks keep their slot so indices
    /// in the driver's in-flight events never dangle).
    ///
    /// The new task starts with zero jobs done and its phase `Done`; the
    /// driver schedules its first release. Its job quota is the engine's
    /// `run.jobs`, counted from arrival.
    pub fn add_task(&mut self, params: TaskParams) -> usize {
        let idx = self.tasks.len();
        if let Some(tenant) = params.tenant {
            if !self.tenant_qos.iter().any(|(t, _)| *t == tenant) {
                self.tenant_qos.push((tenant, QosSummary::new()));
            }
        }
        self.tasks.push(TaskState {
            id: params.id,
            tenant: params.tenant,
            mandatory_hw: params.mandatory_hw,
            placements: params.placements,
            mand_prio: params.mand_prio,
            opt_prio: params.opt_prio,
            period: params.period,
            deadline: params.deadline,
            mandatory: params.mandatory.mul_f64(self.rt_exec_fraction),
            windup: params.windup.mul_f64(self.rt_exec_fraction),
            optional: params.optional,
            od: params.od,
            seq: 0,
            release: Time::ZERO,
            phase: JobPhase::Done,
            rt_remaining: Span::ZERO,
            rt_budget: Span::ZERO,
            parts: Vec::new(),
            windup_scheduled: false,
            in_sq: false,
            overran: false,
            shed: false,
            force_shed: false,
            timer_broken: false,
            jobs_done: 0,
        });
        self.sup.add_task();
        // A zero-job quota means the task retires immediately: it must not
        // hold the live count (and the run loop) open.
        if self.jobs > 0 {
            self.live += 1;
        }
        idx
    }

    /// Removes `task` from scheduling: no further jobs release, and any
    /// in-flight timer or wind-up event is absorbed by the stale-sequence
    /// guards. The driver must abort a job still in flight first (the
    /// [`Engine::abort_part`]/[`Engine::finish_abort`] path, exactly as at
    /// a hard deadline miss).
    ///
    /// The slot is retained so existing engine indices stay valid; the
    /// task simply counts as having exhausted its job quota.
    pub fn remove_task(&mut self, task: usize) {
        debug_assert_eq!(
            self.tasks[task].phase,
            JobPhase::Done,
            "abort the in-flight job before removing a task"
        );
        let t = &mut self.tasks[task];
        if t.jobs_done < self.jobs {
            t.jobs_done = self.jobs;
            self.live -= 1;
        }
    }

    /// `task` has no more jobs to run (its quota is exhausted or it was
    /// removed).
    pub fn task_retired(&self, task: usize) -> bool {
        self.tasks[task].jobs_done >= self.jobs
    }

    /// Replaces `task`'s relative optional deadline. The serving layer
    /// applies admission/eviction [`OdUpdate`](rtseed_analysis::OdUpdate)s
    /// here: a newly admitted neighbour shrinks co-located ODs, a
    /// departure grows them.
    ///
    /// Takes effect at the *next* release: the current job's OD timer (if
    /// armed) already carries the old absolute instant, which remains a
    /// sound termination point for that job — for a shrink, the analysis
    /// window that justified the old OD still covers the job in flight,
    /// because admission analyzed the new neighbour's interference only
    /// from its own (later) release on.
    pub fn set_od(&mut self, task: usize, od: Span) {
        self.tasks[task].od = od;
    }

    /// The tenant owning `task`, if it was added by the serving layer.
    pub fn tenant_of(&self, task: usize) -> Option<TenantId> {
        self.tasks[task].tenant
    }

    /// Opts in (or out of) per-job [`JobSignal`] collection. The serving
    /// layer enables this when tenant health enforcement is armed; the
    /// one-shot executors leave it off and pay nothing.
    pub fn collect_job_signals(&mut self, on: bool) {
        self.collect_signals = on;
        if !on {
            self.signals.clear();
        }
    }

    /// Moves every pending [`JobSignal`] into `into` (in completion
    /// order), leaving the internal buffer empty but with its capacity.
    pub fn drain_job_signals(&mut self, into: &mut Vec<JobSignal>) {
        into.append(&mut self.signals);
    }

    /// Sets or clears the serving-layer health quarantine on `task`: while
    /// set, every job's optional parts are shed (discarded unstarted, the
    /// wind-up running right after the mandatory part) regardless of
    /// supervisor state — minimum service from a tenant that has broken
    /// its health budget, with its mandatory correctness untouched.
    pub fn set_forced_shed(&mut self, task: usize, on: bool) {
        self.tasks[task].force_shed = on;
    }

    /// Whether `task` is currently under a serving-layer health
    /// quarantine ([`Engine::set_forced_shed`]).
    pub fn forced_shed(&self, task: usize) -> bool {
        self.tasks[task].force_shed
    }

    // ----- observability --------------------------------------------------

    /// Whether anyone is recording traces (drivers gate the construction
    /// of queue/dispatch events on this, keeping the hot path free when
    /// tracing is off).
    pub fn tracing(&self) -> bool {
        self.rec.enabled()
    }

    /// Records a driver-side trace event (queue ops, dispatches,
    /// migrations) into the engine's recorder at `at`.
    pub fn trace(&mut self, at: Time, ev: TraceEvent) {
        self.rec.record(at, ev);
    }

    /// Records one overhead sample in both the per-kind sample report and
    /// the histogram metrics.
    pub fn sample(&mut self, kind: OverheadKind, value: Span) {
        self.overheads.push(kind, value);
        self.metrics.record_overhead(kind, value);
    }

    /// Emits one decision event per task recording where the assignment
    /// policy placed its optional parts (paper Fig. 8).
    pub fn trace_policy_decisions(&mut self, cfg: &SystemConfig) {
        if !self.rec.enabled() {
            return;
        }
        let topology = *cfg.topology();
        let policy = cfg.policy();
        for t in &self.tasks {
            let np = t.optional.len();
            if np == 0 {
                continue;
            }
            let ev = TraceEvent::PolicyDecision {
                task: t.id,
                policy: policy.label(),
                parts: np as u32,
                distinct_cores: policy.distinct_cores(&topology, np),
            };
            self.rec.record(Time::ZERO, ev);
        }
    }

    // ----- accessors ------------------------------------------------------

    /// Number of tasks this engine drives.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Tasks that still have jobs to finish.
    pub fn has_live_tasks(&self) -> bool {
        self.live > 0
    }

    /// The identity of `task`'s current job.
    pub fn job(&self, task: usize) -> JobId {
        self.tasks[task].job()
    }

    /// The current job's sequence number.
    pub fn seq(&self, task: usize) -> u64 {
        self.tasks[task].seq
    }

    /// How many jobs of `task` have finished.
    pub fn jobs_done(&self, task: usize) -> u64 {
        self.tasks[task].jobs_done
    }

    /// A job of `task` is released but not yet done.
    pub fn job_in_flight(&self, task: usize) -> bool {
        self.tasks[task].phase != JobPhase::Done
    }

    /// Absolute deadline of `task`'s most recently released job.
    ///
    /// Meaningful while [`Self::job_in_flight`] holds; before the first
    /// release it reports the deadline relative to time zero.
    pub fn current_deadline(&self, task: usize) -> Time {
        self.tasks[task].release + self.tasks[task].deadline
    }

    /// Number of optional parts of `task`.
    pub fn part_count(&self, task: usize) -> usize {
        self.tasks[task].optional.len()
    }

    /// Part `k` of `task`'s current job already has an outcome.
    pub fn part_ended(&self, task: usize, k: usize) -> bool {
        self.tasks[task].parts[k].outcome.is_some()
    }

    /// Any optional part of the current job ended other than `Completed`
    /// (the native driver's per-job degradation counter).
    pub fn parts_degraded(&self, task: usize) -> bool {
        self.tasks[task]
            .parts
            .iter()
            .any(|p| p.outcome != Some(OptionalOutcome::Completed))
    }

    /// Hardware thread the task's real-time parts are pinned to.
    pub fn mandatory_hw(&self, task: usize) -> usize {
        self.tasks[task].mandatory_hw
    }

    /// Hardware thread optional part `k` is placed on.
    pub fn placement(&self, task: usize, k: usize) -> usize {
        self.tasks[task].placements[k]
    }

    /// SCHED_FIFO priority of the task's real-time parts.
    pub fn mand_prio(&self, task: usize) -> Priority {
        self.tasks[task].mand_prio
    }

    /// Priority of the task's optional parts.
    pub fn opt_prio(&self, task: usize) -> Priority {
        self.tasks[task].opt_prio
    }

    /// The current job's optional deadline (absolute).
    pub fn od_time(&self, task: usize) -> Time {
        self.tasks[task].od_time()
    }

    // ----- job lifecycle --------------------------------------------------

    /// Releases `task`'s next job at `now`: resets per-job state in place
    /// (no allocation in steady state), arms the supervisor budget, applies
    /// any planned mandatory WCET fault, and emits the release trace.
    ///
    /// The driver then makes the mandatory part runnable (after its Δm
    /// wake-up cost), arms the OD timer via [`Engine::arm_timer`] when
    /// [`Release::has_parts`], and schedules [`Release::next_release`].
    pub fn release(&mut self, task: usize, now: Time) -> Release {
        let next_seq = self.tasks[task].jobs_done;
        let mand_factor = self.fault_plan.wcet_factor(
            self.tasks[task].id.0,
            next_seq,
            FaultTarget::Mandatory,
        );
        let t = &mut self.tasks[task];
        debug_assert_eq!(t.phase, JobPhase::Done, "release over an unfinished job");
        t.release = now;
        t.seq = t.jobs_done;
        t.phase = JobPhase::Released;
        t.rt_remaining = t.mandatory.mul_f64(mand_factor);
        // Reset part states in place: after the first job this reuses the
        // Vec's capacity, so releases allocate nothing in steady state.
        t.parts.clear();
        t.parts.resize(t.optional.len(), PartState::fresh());
        t.windup_scheduled = false;
        t.in_sq = false;
        t.overran = false;
        t.shed = false;
        let seq = t.seq;
        let period = t.period;
        let has_parts = !t.optional.is_empty();
        let jobs_done = t.jobs_done;
        let job = t.job();
        let mandatory = t.mandatory;
        self.tasks[task].rt_budget = self.sup.budget(mandatory);

        self.rec.record(now, TraceEvent::JobReleased { job });
        if mand_factor != 1.0 {
            self.sup.note_wcet_fault();
            self.rec.record(
                now,
                TraceEvent::WcetFaultInjected {
                    job,
                    target: FaultTarget::Mandatory,
                    factor: mand_factor,
                },
            );
        }
        Release {
            job,
            seq,
            has_parts,
            next_release: (jobs_done + 1 < self.jobs).then(|| now + period),
        }
    }

    /// Arms the current job's one-shot optional-deadline timer, applying
    /// any planned timer fault. Returns the instant the timer actually
    /// fires (delayed under a `Delay` fault), or `None` when there is
    /// nothing to arm (no optional parts, or the one-shot is `Lost`).
    pub fn arm_timer(&mut self, task: usize, now: Time) -> Option<Time> {
        let t = &self.tasks[task];
        if t.optional.is_empty() {
            return None;
        }
        let od_time = t.od_time();
        let job = t.job();
        let fault = self.fault_plan.timer_fault(t.id.0, t.seq);
        match fault {
            None => {
                self.rec
                    .record(now, TraceEvent::TimerArmed { job, at: od_time });
                Some(od_time)
            }
            Some(TimerFault::Delay(d)) => {
                self.sup.note_timer_fault();
                self.rec.record(
                    now,
                    TraceEvent::TimerFaultInjected {
                        job,
                        fault: TimerFault::Delay(d),
                    },
                );
                self.rec.record(
                    now,
                    TraceEvent::TimerArmed {
                        job,
                        at: od_time + d,
                    },
                );
                Some(od_time + d)
            }
            Some(TimerFault::Lost) => {
                self.sup.note_timer_fault();
                self.rec.record(
                    now,
                    TraceEvent::TimerFaultInjected {
                        job,
                        fault: TimerFault::Lost,
                    },
                );
                None
            }
        }
    }

    /// Banks `ran` of execution against the given part: real-time parts
    /// burn down their remaining demand and supervisor budget, optional
    /// parts accumulate achieved execution and stop running.
    pub fn bank(&mut self, task: usize, cursor: Cursor, ran: Span) {
        let t = &mut self.tasks[task];
        match cursor {
            Cursor::Mandatory | Cursor::Windup => {
                t.rt_remaining = t.rt_remaining.saturating_sub(ran);
                t.rt_budget = t.rt_budget.saturating_sub(ran);
            }
            Cursor::Optional(k) => {
                // Achieved execution is capped at the part's demand: a
                // driver may bank an inflated slice (fault injection,
                // coarse clocks), but a part can never achieve more QoS
                // than it requested.
                let o_k = t.optional[k as usize];
                let part = &mut t.parts[k as usize];
                part.executed = (part.executed + ran).min(o_k);
                part.running_since = None;
            }
        }
    }

    /// After a real-time part's dispatched slice elapsed: under an armed
    /// supervisor the slice was clipped to the remaining budget, so demand
    /// left over means the part hit its budget — cut it (treat it as
    /// complete) and escalate, instead of letting the overrun eat into
    /// lower-priority parts' response times. No-op otherwise.
    pub fn cut_if_over_budget(&mut self, task: usize, cursor: Cursor, now: Time) {
        if !self.sup.enabled() || self.tasks[task].rt_remaining.is_zero() {
            return;
        }
        let target = match cursor {
            Cursor::Windup => FaultTarget::Windup,
            _ => FaultTarget::Mandatory,
        };
        self.tasks[task].rt_remaining = Span::ZERO;
        self.tasks[task].overran = true;
        self.sup.note_budget_cut();
        let job = self.tasks[task].job();
        self.rec.record(now, TraceEvent::BudgetCut { job, target });
        let resp = self.sup.on_overrun(task, now);
        if resp.quarantined_task {
            self.rec.record(now, TraceEvent::TaskQuarantined { job });
        }
        if resp.entered_degraded {
            self.rec.record(now, TraceEvent::DegradedModeEntered);
        }
    }

    /// The driver dispatched the given part onto hardware thread `hw`:
    /// updates per-part/per-phase state (first mandatory dispatch moves the
    /// phase forward and records release jitter; first optional dispatch
    /// stamps the part's start) and returns the remaining execution to run
    /// — real-time demand clipped to the supervisor budget, or the optional
    /// part's residual.
    pub fn on_dispatch(&mut self, task: usize, cursor: Cursor, hw: usize, now: Time) -> Span {
        match cursor {
            Cursor::Mandatory => {
                let first = self.tasks[task].phase == JobPhase::Released;
                if first {
                    debug_assert!(self.tasks[task]
                        .phase
                        .can_transition_to(JobPhase::MandatoryRunning));
                    self.tasks[task].phase = JobPhase::MandatoryRunning;
                    let job = self.tasks[task].job();
                    let jitter = now.saturating_elapsed_since(self.tasks[task].release);
                    self.metrics.record_release_jitter(jitter);
                    self.rec.record(
                        now,
                        TraceEvent::MandatoryStarted {
                            job,
                            hw: HwThreadId(hw as u32),
                        },
                    );
                }
                self.rt_slice(task)
            }
            Cursor::Windup => self.rt_slice(task),
            Cursor::Optional(k) => {
                let o_k = self.tasks[task].optional[k as usize];
                let first_start = {
                    let part = &mut self.tasks[task].parts[k as usize];
                    part.running_since = Some(now);
                    if part.started.is_none() {
                        part.started = Some(now);
                        true
                    } else {
                        false
                    }
                };
                if first_start && self.rec.enabled() {
                    let job = self.tasks[task].job();
                    self.rec.record(
                        now,
                        TraceEvent::OptionalStarted {
                            job,
                            part: PartId(k),
                            hw: HwThreadId(hw as u32),
                        },
                    );
                }
                o_k.saturating_sub(self.tasks[task].parts[k as usize].executed)
            }
        }
    }

    /// Remaining execution to dispatch for a real-time part: the demand,
    /// clipped to the supervisor budget when the supervisor is armed.
    fn rt_slice(&self, task: usize) -> Span {
        let t = &self.tasks[task];
        if self.sup.enabled() {
            t.rt_remaining.min(t.rt_budget)
        } else {
            t.rt_remaining
        }
    }

    /// The mandatory part completed at `now`. Decides what happens next:
    /// signal the optional parts, or — when there are none, they arrive
    /// past OD (§II-B discard), or the supervisor sheds them — proceed
    /// straight to the wind-up command.
    pub fn mandatory_completed(&mut self, task: usize, now: Time) -> AfterMandatory {
        let job = self.tasks[task].job();
        self.rec.record(now, TraceEvent::MandatoryCompleted { job });

        let od_time = self.tasks[task].od_time();
        let np = self.tasks[task].optional.len();

        if np == 0 {
            // Degenerate models: no optional parts.
            if self.tasks[task].windup.is_zero() {
                // Pure Liu–Layland task: the job is complete.
                self.finish_job(task, now, true);
                return AfterMandatory::Windup(WindupCommand::Finished { met: true });
            }
            let at = now.max(od_time);
            self.tasks[task].phase = JobPhase::OptionalRunning;
            return AfterMandatory::Windup(self.schedule_windup(task, at, now));
        }

        if now >= od_time {
            // §II-B: mandatory part overran the optional deadline — every
            // optional part is discarded and the wind-up part runs
            // immediately after the mandatory part.
            self.discard_all_parts(task, now);
            self.tasks[task].phase = JobPhase::OptionalRunning;
            return AfterMandatory::Windup(self.schedule_windup(task, now, now));
        }

        if self.tasks[task].force_shed || self.sup.shed_optional(task) {
            // Overload supervisor (degraded mode or task quarantine) or a
            // serving-layer health quarantine — optional parts are shed
            // (discarded unstarted), the wind-up part runs right after
            // the mandatory part. No signalling, no Δb/Δs, no OD-timer
            // interference: minimum service, maximum headroom.
            self.sup.note_degraded_job();
            self.tasks[task].shed = true;
            self.discard_all_parts(task, now);
            self.tasks[task].phase = JobPhase::OptionalRunning;
            return AfterMandatory::Windup(self.schedule_windup(task, now, now));
        }

        debug_assert!(self.tasks[task]
            .phase
            .can_transition_to(JobPhase::OptionalRunning));
        self.tasks[task].phase = JobPhase::OptionalRunning;
        AfterMandatory::Signal { np }
    }

    fn discard_all_parts(&mut self, task: usize, now: Time) {
        let np = self.tasks[task].optional.len();
        for k in 0..np {
            self.tasks[task].parts[k].outcome = Some(OptionalOutcome::Discarded);
            if self.rec.enabled() {
                let job = self.tasks[task].job();
                self.rec.record(
                    now,
                    TraceEvent::OptionalEnded {
                        job,
                        part: PartId(k as u32),
                        outcome: OptionalOutcome::Discarded,
                        achieved: Span::ZERO,
                    },
                );
            }
        }
    }

    /// Optional part `k` ran to completion at `now`. When it was the last
    /// part to end, the OD timer is (conceptually) cancelled and the
    /// returned command releases the wind-up at `max(now, OD)` (§IV-B).
    pub fn optional_completed(
        &mut self,
        task: usize,
        k: u32,
        now: Time,
    ) -> Option<WindupCommand> {
        let ki = k as usize;
        let o_k = self.tasks[task].optional[ki];
        {
            let part = &mut self.tasks[task].parts[ki];
            part.executed = o_k;
            part.running_since = None;
            part.outcome = Some(OptionalOutcome::Completed);
        }
        if self.rec.enabled() {
            let job = self.tasks[task].job();
            self.rec.record(
                now,
                TraceEvent::OptionalEnded {
                    job,
                    part: PartId(k),
                    outcome: OptionalOutcome::Completed,
                    achieved: o_k,
                },
            );
        }

        if self.tasks[task].parts_all_ended() && !self.tasks[task].windup_scheduled {
            // All parts completed before the optional deadline: the
            // optional-deadline timer is stopped and the task sleeps in the
            // SQ until OD, when the wind-up part is released (§IV-B).
            let job = self.tasks[task].job();
            self.rec.record(now, TraceEvent::TimerCancelled { job });
            let at = now.max(self.tasks[task].od_time());
            return Some(self.schedule_windup(task, at, now));
        }
        None
    }

    /// The wind-up part completed at `now`: finishes the job and returns
    /// whether its relative deadline was met.
    pub fn windup_completed(&mut self, task: usize, now: Time) -> bool {
        let deadline = self.tasks[task].release + self.tasks[task].deadline;
        let met = now <= deadline;
        self.finish_job(task, now, met);
        met
    }

    /// The optional-deadline timer for job `seq` fired at `now`.
    ///
    /// Stale timers (finished jobs, the Table I broken timer) are absorbed
    /// silently; an expiry during the mandatory part or after every part
    /// already ended is traced but terminates nothing. Otherwise the driver
    /// runs the termination loop (see [`OdAction::Terminate`]).
    pub fn od_expired(&mut self, task: usize, seq: u64, now: Time) -> OdAction {
        if self.tasks[task].seq != seq
            || self.tasks[task].jobs_done != seq
            || self.tasks[task].phase == JobPhase::Done
        {
            return OdAction::Stale; // stale timer from an already-finished job
        }
        if self.tasks[task].timer_broken {
            // Table I: the try-catch implementation does not restore the
            // signal mask, so "the timer interrupt of the next job does not
            // occur" — optional parts now run unchecked.
            return OdAction::Stale;
        }
        let job = self.tasks[task].job();
        self.rec
            .record(now, TraceEvent::OptionalDeadlineExpired { job });

        if self.tasks[task].phase != JobPhase::OptionalRunning {
            // Mandatory part still running: nothing to terminate — the
            // discard path triggers at mandatory completion.
            return OdAction::Handled;
        }
        if self.tasks[task].parts_all_ended() {
            return OdAction::Handled; // timer (conceptually) cancelled early
        }
        // Termination happens when the timer actually fires: `now` is the
        // nominal OD normally, later if the fault plan delayed the one-shot
        // (parts kept running in the meantime).
        self.term_at = now;
        self.term_handling = Span::ZERO;
        self.term_max_lag = Span::ZERO;
        self.term_prev_core = None;
        OdAction::Terminate {
            np: self.tasks[task].optional.len(),
        }
    }

    /// Plans the termination of part `k`: computes its achieved execution
    /// (whatever ran before OD, plus — for cooperative modes — the lag
    /// until the next checkpoint) and where the driver must stop it.
    /// Returns `None` for parts that already ended.
    ///
    /// The driver stops the part (banking is overwritten by
    /// [`Engine::commit_terminate`]) and, where its backend charges a
    /// per-part handling cost, reports it via
    /// [`Engine::note_termination_cost`].
    pub fn plan_terminate(&mut self, task: usize, k: usize) -> Option<StopTarget> {
        if self.tasks[task].parts[k].outcome.is_some() {
            return None;
        }
        let hw = self.tasks[task].placements[k];
        let core = self.topology.core_of(HwThreadId(hw as u32));
        let cross_core = self.term_prev_core.is_some_and(|c| c != core);
        self.term_prev_core = Some(core);

        let o_k = self.tasks[task].optional[k];
        let term_at = self.term_at;
        let (achieved, lag) = {
            let part = &self.tasks[task].parts[k];
            match part.running_since {
                Some(since) => {
                    let lag = self
                        .termination
                        .termination_lag(part.started.unwrap_or(since), term_at);
                    let ran = term_at.saturating_elapsed_since(since) + lag;
                    ((part.executed + ran).min(o_k), lag)
                }
                None => (part.executed, Span::ZERO),
            }
        };
        self.term_max_lag = self.term_max_lag.max(lag);
        self.pending_achieved = achieved;
        Some(StopTarget {
            hw,
            prio: self.tasks[task].opt_prio,
            cross_core,
        })
    }

    /// Adds one part's termination-handling cost (timer interrupt, stack
    /// restore, completion signalling) to the serialized Δe total.
    pub fn note_termination_cost(&mut self, cost: Span) {
        self.term_handling += cost;
    }

    /// Finalizes the termination planned by the latest
    /// [`Engine::plan_terminate`]: fixes the part's achieved execution and
    /// outcome (`Completed` if it reached its demand, else `Terminated`).
    pub fn commit_terminate(&mut self, task: usize, k: usize, now: Time) {
        let achieved = self.pending_achieved;
        let o_k = self.tasks[task].optional[k];
        let outcome = if achieved >= o_k {
            OptionalOutcome::Completed
        } else {
            OptionalOutcome::Terminated
        };
        {
            let part = &mut self.tasks[task].parts[k];
            part.executed = achieved;
            part.running_since = None;
            part.outcome = Some(outcome);
        }
        if self.rec.enabled() {
            let job = self.tasks[task].job();
            self.rec.record(
                now,
                TraceEvent::OptionalEnded {
                    job,
                    part: PartId(k as u32),
                    outcome,
                    achieved,
                },
            );
        }
    }

    /// Ends the termination loop: samples Δe (serialized handling plus the
    /// worst cooperative lag), applies the Table I signal-mask defect for
    /// modes that model it, and returns the wind-up command (released after
    /// the handling completes).
    pub fn finish_termination(&mut self, task: usize, now: Time) -> WindupCommand {
        let handling = self.term_handling;
        let max_lag = self.term_max_lag;
        self.sample(OverheadKind::EndOptional, handling + max_lag);
        if self.termination.models_signal_mask_defect() {
            self.tasks[task].timer_broken = true;
        }
        let windup_at = self.term_at + max_lag + handling;
        self.schedule_windup(task, windup_at, now)
    }

    /// Decides how the wind-up releases. `at` is the release instant; `now`
    /// is the current time (a zero-length wind-up finishes the job on the
    /// spot, and a future `at` parks the task in the SQ, §IV-B).
    fn schedule_windup(&mut self, task: usize, at: Time, now: Time) -> WindupCommand {
        if self.tasks[task].windup_scheduled {
            return WindupCommand::AlreadyScheduled;
        }
        self.tasks[task].windup_scheduled = true;
        if self.tasks[task].windup.is_zero() {
            // No wind-up part: the job ends once its optional side is done.
            let deadline = self.tasks[task].release + self.tasks[task].deadline;
            let met = at <= deadline;
            self.finish_job(task, now, met);
            return WindupCommand::Finished { met };
        }
        if at > now {
            // The task sleeps in the SQ until its wind-up release (§IV-B).
            self.tasks[task].in_sq = true;
            let job = self.tasks[task].job();
            self.rec.record(
                now,
                TraceEvent::Queue {
                    band: QueueBand::Sq,
                    op: QueueOp::Enqueue,
                    job,
                    hw: None,
                },
            );
        }
        WindupCommand::At {
            at,
            seq: self.tasks[task].seq,
        }
    }

    /// The wind-up release instant for job `seq` arrived at `now`: moves
    /// the job into the wind-up phase (leaving the SQ, applying any planned
    /// wind-up WCET fault) and returns `true` when the driver should make
    /// the wind-up part runnable. Stale or out-of-phase deliveries return
    /// `false`.
    pub fn windup_ready(&mut self, task: usize, seq: u64, now: Time) -> bool {
        if self.tasks[task].seq != seq
            || self.tasks[task].phase != JobPhase::OptionalRunning
        {
            return false;
        }
        if self.tasks[task].in_sq {
            self.tasks[task].in_sq = false;
            let job = self.tasks[task].job();
            self.rec.record(
                now,
                TraceEvent::Queue {
                    band: QueueBand::Sq,
                    op: QueueOp::Remove,
                    job,
                    hw: None,
                },
            );
        }
        let factor =
            self.fault_plan
                .wcet_factor(self.tasks[task].id.0, seq, FaultTarget::Windup);
        debug_assert!(self.tasks[task]
            .phase
            .can_transition_to(JobPhase::WindupRunning));
        self.tasks[task].phase = JobPhase::WindupRunning;
        self.tasks[task].rt_remaining = self.tasks[task].windup.mul_f64(factor);
        let windup = self.tasks[task].windup;
        self.tasks[task].rt_budget = self.sup.budget(windup);
        let job = self.tasks[task].job();
        self.rec.record(now, TraceEvent::WindupStarted { job });
        if factor != 1.0 {
            self.sup.note_wcet_fault();
            self.rec.record(
                now,
                TraceEvent::WcetFaultInjected {
                    job,
                    target: FaultTarget::Windup,
                    factor,
                },
            );
        }
        true
    }

    /// A fault-plan CPU stall window opened on `hw` at `now`: counts the
    /// fault and traces it. Vacating the hardware thread (banking whatever
    /// ran, re-queueing at the head of its level) is the driver's job — the
    /// engine doesn't know what was running where.
    pub fn stall_started(&mut self, hw: usize, duration: Span, now: Time) {
        self.sup.note_cpu_stall();
        self.rec.record(
            now,
            TraceEvent::CpuStallStarted {
                hw: HwThreadId(hw as u32),
                duration,
            },
        );
    }

    /// Finalizes part `k` of a job being aborted at its next release: any
    /// residual running time is banked defensively, and the outcome is
    /// `Terminated` if the part ever started, `Discarded` otherwise.
    pub fn abort_part(&mut self, task: usize, k: usize, now: Time) {
        let part = &mut self.tasks[task].parts[k];
        if part.outcome.is_some() {
            return;
        }
        if let Some(since) = part.running_since.take() {
            part.executed += now.saturating_elapsed_since(since);
        }
        part.outcome = Some(if part.started.is_some() {
            OptionalOutcome::Terminated
        } else {
            OptionalOutcome::Discarded
        });
    }

    /// Forcibly finishes a job that is still incomplete at its next release
    /// (deadline missed hard). The driver has already stopped the job's
    /// work and finalized its parts via [`Engine::abort_part`].
    pub fn finish_abort(&mut self, task: usize, now: Time) {
        self.finish_job(task, now, false);
    }

    /// Finishes an in-flight job whose tenant is departing or being
    /// evicted. The driver has already stopped the job's work and
    /// finalized its parts via [`Engine::abort_part`]. Unlike
    /// [`Engine::finish_abort`], the partial job is *not* charged a
    /// deadline miss — its deadline never elapsed while the task was
    /// scheduled; the tenant withdrew it. The achieved optional service
    /// is still recorded, the trace shows [`TraceEvent::JobCancelled`],
    /// and no [`JobSignal`] is emitted (cancellation says nothing about
    /// the tenant's health).
    pub fn finish_cancel(&mut self, task: usize, now: Time) {
        let job = {
            let t = &mut self.tasks[task];
            t.phase = JobPhase::Done;
            t.job()
        };
        self.rec.record(now, TraceEvent::JobCancelled { job });
        let requested = self.tasks[task].requested_optional();
        let ratio = self.qos.record_job(
            self.tasks[task]
                .parts
                .iter()
                .map(|p| (p.executed, p.outcome.unwrap_or(OptionalOutcome::Discarded))),
            requested,
            true,
            self.tasks[task].shed,
        );
        self.metrics.record_qos_level(ratio);
        if let Some(tenant) = self.tasks[task].tenant {
            if let Some((_, summary)) =
                self.tenant_qos.iter_mut().find(|(t, _)| *t == tenant)
            {
                summary.record_job(
                    self.tasks[task].parts.iter().map(|p| {
                        (p.executed, p.outcome.unwrap_or(OptionalOutcome::Discarded))
                    }),
                    requested,
                    true,
                    self.tasks[task].shed,
                );
            }
        }
        let t = &mut self.tasks[task];
        t.jobs_done += 1;
        if t.jobs_done >= self.jobs {
            self.live -= 1;
        }
    }

    /// Records an optional part's real measured execution (the native
    /// backend observes parts instead of simulating them): sets its start,
    /// achieved execution, and outcome, and emits the start/end trace pair
    /// at the measured instants.
    pub fn part_observed(
        &mut self,
        task: usize,
        k: usize,
        started: Time,
        executed: Span,
        outcome: OptionalOutcome,
    ) {
        {
            let part = &mut self.tasks[task].parts[k];
            part.executed = executed;
            part.running_since = None;
            part.started = Some(started);
            part.outcome = Some(outcome);
        }
        if self.rec.enabled() {
            let job = self.tasks[task].job();
            let hw = self.tasks[task].placements[k];
            self.rec.record(
                started,
                TraceEvent::OptionalStarted {
                    job,
                    part: PartId(k as u32),
                    hw: HwThreadId(hw as u32),
                },
            );
            self.rec.record(
                started + executed,
                TraceEvent::OptionalEnded {
                    job,
                    part: PartId(k as u32),
                    outcome,
                    achieved: executed,
                },
            );
        }
    }

    /// Credits migration cost to the task's real-time demand and budget
    /// (the global ablation charges migrations to the migrating part).
    pub fn add_migration_debt(&mut self, task: usize, cost: Span) {
        let t = &mut self.tasks[task];
        t.rt_remaining += cost;
        t.rt_budget += cost;
    }

    fn finish_job(&mut self, task: usize, now: Time, deadline_met: bool) {
        let job = {
            let t = &mut self.tasks[task];
            t.phase = JobPhase::Done; // finish/abort may bypass the table
            t.job()
        };
        self.rec
            .record(now, TraceEvent::WindupCompleted { job, deadline_met });
        let requested = self.tasks[task].requested_optional();
        let response = now.saturating_elapsed_since(self.tasks[task].release);
        self.metrics.record_response_time(response);
        // Stream the per-part results straight into the summary — no
        // per-job QosRecord vector on the hot path.
        let ratio = self.qos.record_job(
            self.tasks[task]
                .parts
                .iter()
                .map(|p| (p.executed, p.outcome.unwrap_or(OptionalOutcome::Discarded))),
            requested,
            deadline_met,
            self.tasks[task].shed,
        );
        self.metrics.record_qos_level(ratio);
        if let Some(tenant) = self.tasks[task].tenant {
            // Linear scan: tenant counts are small and this branch is
            // never taken by the one-shot executors (tenant is None).
            if let Some((_, summary)) =
                self.tenant_qos.iter_mut().find(|(t, _)| *t == tenant)
            {
                summary.record_job(
                    self.tasks[task].parts.iter().map(|p| {
                        (p.executed, p.outcome.unwrap_or(OptionalOutcome::Discarded))
                    }),
                    requested,
                    deadline_met,
                    self.tasks[task].shed,
                );
            }
        }
        if self.collect_signals {
            if let Some(tenant) = self.tasks[task].tenant {
                self.signals.push(JobSignal {
                    task,
                    tenant,
                    met: deadline_met,
                    overran: self.tasks[task].overran,
                    shed: self.tasks[task].shed,
                });
            }
        }
        if self.sup.enabled() {
            if self.tasks[task].overran {
                // Already escalated at budget-cut time.
            } else if deadline_met {
                let resp = self.sup.on_clean_job(task, now);
                if resp.recovered {
                    self.rec.record(now, TraceEvent::DegradedModeExited);
                }
            } else {
                // A miss without a budget overrun (stall-induced, lost
                // timer, overrun into the next release) is still an
                // overload signal.
                let resp = self.sup.on_overrun(task, now);
                if resp.quarantined_task {
                    self.rec.record(now, TraceEvent::TaskQuarantined { job });
                }
                if resp.entered_degraded {
                    self.rec.record(now, TraceEvent::DegradedModeEntered);
                }
            }
        }
        let t = &mut self.tasks[task];
        t.jobs_done += 1;
        if t.jobs_done >= self.jobs {
            self.live -= 1;
        }
    }

    /// Ends the run at `now`, surrendering everything the engine measured.
    pub fn finish(mut self, now: Time) -> EngineOutput {
        let faults = self.sup.finish(now);
        EngineOutput {
            qos: self.qos,
            overheads: self.overheads,
            metrics: self.metrics,
            trace: self.rec.finish(),
            faults,
            tenant_qos: self.tenant_qos,
        }
    }
}
