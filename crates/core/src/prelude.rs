//! The RT-Seed prelude: one `use` for the common surface.
//!
//! ```
//! use rtseed::prelude::*;
//!
//! let spec = TaskSpec::builder("t")
//!     .period(Span::from_millis(10))
//!     .mandatory(Span::from_millis(1))
//!     .windup(Span::from_millis(1))
//!     .optional_parts(2, Span::from_millis(3))
//!     .build()?;
//! let system = SystemConfig::build(
//!     TaskSet::new(vec![spec])?,
//!     Topology::new(2, 2)?,
//!     AssignmentPolicy::OneByOne,
//! )?;
//! let outcome = SimExecutor::new(system, RunConfig::builder().jobs(2).build()?).run();
//! assert_eq!(outcome.qos.jobs(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use crate::config::{ConfigError, SystemConfig};
pub use crate::exec_global::GlobalExecutor;
pub use crate::exec_sim::SimExecutor;
pub use crate::executor::{
    Backend, ExecError, Executor, Outcome, RunConfig, RunConfigBuilder, RunConfigError,
};
pub use crate::obs::{
    Histogram, MetricsRegistry, PipelineStage, QueueBand, QueueOp, Trace, TraceConfig, TraceEvent,
    TraceRecorder,
};
pub use crate::policy::AssignmentPolicy;
pub use crate::report::{FaultReport, OverheadReport};
pub use crate::runtime::{
    NativeExecutor, OptionalControl, RuntimeError, RuntimeReport, TaskBody,
};
pub use crate::serve::{SessionManager, Submission};
pub use crate::supervisor::{OverloadMode, SupervisorConfig};
pub use crate::termination::TerminationMode;

pub use rtseed_model::{
    HwThreadId, JobId, OptionalOutcome, PartId, QosSummary, Span, TaskId, TaskSet, TaskSpec, Time,
    Topology,
};
pub use rtseed_sim::{BackgroundLoad, Calibration, FaultPlan, OverheadKind};
