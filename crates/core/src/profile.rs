//! Remaining-execution-time profiles — paper Fig. 3's comparison of
//! *general scheduling* (Liu & Layland: the whole WCET `mᵢ + wᵢ` runs
//! contiguously from release) against *semi-fixed-priority scheduling*
//! (run `mᵢ`, sleep until `ODᵢ`, run `wᵢ`), for a task suffering no
//! higher-priority interference.
//!
//! The profile is the function `Rᵢ(t)`: how much real-time execution
//! remains at time `t` since release. Under semi-fixed-priority
//! scheduling the plateau between `mᵢ` and `ODᵢ` is exactly the window in
//! which parallel optional parts run *before* the wind-up part makes its
//! decision — the structural reason imprecise computation needs the
//! wind-up part at all (under general scheduling the decision completes
//! at `mᵢ + wᵢ`, before any optional analysis could inform it).

use rtseed_model::{Span, TaskSpec};
use serde::{Deserialize, Serialize};

/// Which scheduling discipline a profile describes (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingMode {
    /// Liu & Layland general scheduling: `C = m + w` contiguous.
    General,
    /// Semi-fixed-priority: `m`, sleep until `OD`, then `w`.
    SemiFixed,
}

/// A piecewise-linear `R(t)` profile as breakpoints `(t, remaining)`.
/// Between breakpoints the remaining time interpolates linearly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemainingProfile {
    points: Vec<(Span, Span)>,
}

impl RemainingProfile {
    /// Computes the no-interference profile of `task` under `mode`,
    /// with the optional deadline `od` (relative). Matches paper Fig. 3.
    ///
    /// # Panics
    ///
    /// Panics if `od` is inconsistent (`od < m` or `od + w > D`): Fig. 3's
    /// premise is that the task alone is schedulable.
    pub fn compute(task: &TaskSpec, od: Span, mode: SchedulingMode) -> RemainingProfile {
        let m = task.mandatory();
        let w = task.windup();
        let d = task.deadline();
        assert!(od >= m, "optional deadline before mandatory completion");
        assert!(od + w <= d, "wind-up cannot finish by the deadline");
        let points = match mode {
            SchedulingMode::General => vec![
                (Span::ZERO, m + w),
                (m + w, Span::ZERO),
                (d, Span::ZERO),
            ],
            SchedulingMode::SemiFixed => vec![
                (Span::ZERO, m),
                // Completes the mandatory part, then sleeps until OD with
                // zero remaining *released* work...
                (m, Span::ZERO),
                (od, Span::ZERO),
                // ...then the wind-up part is released at OD (a step,
                // expressed as a zero-length segment):
                (od, w),
                (od + w, Span::ZERO),
                (d, Span::ZERO),
            ],
        };
        RemainingProfile { points }
    }

    /// The breakpoints `(t, R(t))` in time order.
    pub fn points(&self) -> &[(Span, Span)] {
        &self.points
    }

    /// `R(t)` by linear interpolation (clamped to the profile's range).
    /// At a step (duplicated time point, e.g. the wind-up release at OD)
    /// the *post-step* value is returned.
    pub fn remaining_at(&self, t: Span) -> Span {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        let mut result = pts.last().expect("non-empty").1;
        // Take the LAST segment containing t so steps resolve to their
        // post-step value.
        for w in pts.windows(2).rev() {
            let (t0, r0) = w[0];
            let (t1, r1) = w[1];
            if t0 <= t && t <= t1 {
                if t1 == t0 {
                    result = r1;
                } else {
                    let frac = (t - t0) / (t1 - t0);
                    let (lo, hi) = (r0.min(r1), r0.max(r1));
                    let interp = if r1 <= r0 {
                        r0.saturating_sub((r0 - r1).mul_f64(frac))
                    } else {
                        r0 + (r1 - r0).mul_f64(frac)
                    };
                    result = interp.max(lo).min(hi);
                }
                break;
            }
        }
        result
    }

    /// The total time during which the processor is free for optional
    /// parts before the final wind-up completion (the plateau length; zero
    /// under general scheduling until `m + w`, then it is dead time after
    /// the decision).
    pub fn optional_window(&self) -> Span {
        // Zero-remaining stretches count only if real-time work is
        // released again afterwards (the wind-up step at OD): time after
        // the final completion is post-decision dead time, not a window.
        let mut window = Span::ZERO;
        let mut pending = Span::ZERO;
        for w in self.points.windows(2) {
            let (t0, r0) = w[0];
            let (t1, r1) = w[1];
            if r0.is_zero() && r1.is_zero() {
                pending += t1 - t0;
            } else if r1 > r0 {
                window += pending;
                pending = Span::ZERO;
            }
        }
        window
    }

    /// Renders a small ASCII plot (time on x, remaining on y), `width`
    /// columns wide.
    pub fn ascii_plot(&self, width: usize) -> String {
        let d = self.points.last().expect("non-empty").0;
        let max_r = self
            .points
            .iter()
            .map(|(_, r)| *r)
            .max()
            .unwrap_or(Span::ZERO);
        if d.is_zero() || max_r.is_zero() {
            return String::from("(empty profile)\n");
        }
        let height = 8usize;
        let mut rows = vec![vec![b' '; width]; height + 1];
        #[allow(clippy::needless_range_loop)] // col indexes a computed row
        for col in 0..width {
            let t = d.mul_f64(col as f64 / (width.max(2) - 1) as f64);
            let r = self.remaining_at(t);
            let level = ((r / max_r) * height as f64).round() as usize;
            let row = height - level.min(height);
            rows[row][col] = b'*';
        }
        let mut out = String::new();
        for row in rows {
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_task() -> TaskSpec {
        TaskSpec::builder("τi")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(250))
            .windup(Span::from_millis(250))
            .optional_parts(4, Span::from_secs(1))
            .build()
            .unwrap()
    }

    fn od() -> Span {
        Span::from_millis(750)
    }

    #[test]
    fn general_profile_shape() {
        let p = RemainingProfile::compute(&paper_task(), od(), SchedulingMode::General);
        // Fig. 3: starts at m + w, hits zero at m + w.
        assert_eq!(p.remaining_at(Span::ZERO), Span::from_millis(500));
        assert_eq!(p.remaining_at(Span::from_millis(500)), Span::ZERO);
        assert_eq!(p.remaining_at(Span::from_secs(1)), Span::ZERO);
        // Monotone decrease down to zero.
        assert_eq!(p.remaining_at(Span::from_millis(250)), Span::from_millis(250));
    }

    #[test]
    fn semi_fixed_profile_shape() {
        let p = RemainingProfile::compute(&paper_task(), od(), SchedulingMode::SemiFixed);
        // Fig. 3: starts at m, zero at m, jumps to w at OD, zero at OD + w.
        assert_eq!(p.remaining_at(Span::ZERO), Span::from_millis(250));
        assert_eq!(p.remaining_at(Span::from_millis(250)), Span::ZERO);
        assert_eq!(p.remaining_at(Span::from_millis(500)), Span::ZERO);
        assert_eq!(p.remaining_at(od()), Span::from_millis(250));
        assert_eq!(p.remaining_at(Span::from_millis(1000)), Span::ZERO);
    }

    #[test]
    fn optional_window_only_under_semi_fixed() {
        let g = RemainingProfile::compute(&paper_task(), od(), SchedulingMode::General);
        let s = RemainingProfile::compute(&paper_task(), od(), SchedulingMode::SemiFixed);
        // Semi-fixed: [m, OD] = 500 ms of pre-decision optional window.
        assert_eq!(s.optional_window(), Span::from_millis(500));
        // General scheduling never sleeps before its (single) completion:
        // no pre-decision window exists.
        assert_eq!(g.optional_window(), Span::ZERO);
    }

    #[test]
    fn interpolation_is_monotone_within_segments() {
        let p = RemainingProfile::compute(&paper_task(), od(), SchedulingMode::SemiFixed);
        let a = p.remaining_at(Span::from_millis(100));
        let b = p.remaining_at(Span::from_millis(200));
        assert!(a > b);
        let c = p.remaining_at(Span::from_millis(800));
        let d = p.remaining_at(Span::from_millis(900));
        assert!(c > d);
    }

    #[test]
    #[should_panic(expected = "optional deadline before mandatory completion")]
    fn rejects_od_before_m() {
        let _ = RemainingProfile::compute(
            &paper_task(),
            Span::from_millis(100),
            SchedulingMode::SemiFixed,
        );
    }

    #[test]
    #[should_panic(expected = "wind-up cannot finish")]
    fn rejects_od_too_late() {
        let _ = RemainingProfile::compute(
            &paper_task(),
            Span::from_millis(900),
            SchedulingMode::SemiFixed,
        );
    }

    #[test]
    fn ascii_plot_renders() {
        let p = RemainingProfile::compute(&paper_task(), od(), SchedulingMode::SemiFixed);
        let plot = p.ascii_plot(40);
        assert!(plot.lines().count() >= 8);
        assert!(plot.contains('*'));
    }
}
