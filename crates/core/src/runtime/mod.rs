//! Native POSIX backend: the RT-Seed protocol on real Linux threads.
//!
//! This is the middleware exactly as paper §IV-C describes it — a real-time
//! process per task, one **mandatory thread** executing the mandatory and
//! wind-up parts, and `npᵢ` **parallel optional threads** woken by
//! per-thread condition-variable signals, pinned with `sched_setaffinity`,
//! prioritized with `sched_setscheduler(SCHED_FIFO)` and put to sleep with
//! absolute-deadline waits (the `clock_nanosleep(TIMER_ABSTIME)`
//! equivalent).
//!
//! Privileged calls are *attempted* and their outcomes recorded in
//! [`RuntimeReport`]; without `CAP_SYS_NICE` the middleware still runs with
//! the default scheduling policy so that the protocol, QoS accounting and
//! overhead measurements all remain exercisable (the latency bounds are of
//! course only real with RT privileges on a multi-core host).
//!
//! **Termination substitution (DESIGN.md):** safe Rust cannot
//! `siglongjmp` across frames, so optional parts terminate cooperatively:
//! user code polls [`OptionalControl::should_stop`] (the paper's "Periodic
//! Check" row) or calls [`OptionalControl::checkpoint`] which raises a
//! panic-unwind caught by the worker (the "try-catch" row, implemented
//! *with* correct re-arming — Rust has no signal mask to corrupt).
//! Requesting [`TerminationMode::SigjmpTimer`] selects the cooperative
//! mechanism and notes the substitution in the report.

pub mod loadgen;
pub mod posix;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use parking_lot::{Condvar, Mutex};
use rtseed_model::{JobId, OptionalOutcome, PartId, QosSummary, Span, TaskId, Time};
use rtseed_sim::OverheadKind;

use crate::config::SystemConfig;
use crate::engine::{AfterMandatory, Cursor, Engine, WindupCommand};
use crate::executor::{Backend, ExecError, Executor, Outcome, RunConfig};
use crate::obs::{MetricsRegistry, Trace, TraceEvent};
use crate::report::{FaultReport, OverheadReport};
use crate::termination::TerminationMode;

/// Why a native run could not produce an outcome.
///
/// Injected faults and user bugs surface as `Err`, never as a panic in
/// the middleware itself (the scheduler's own threads are panic-free; the
/// only panics in flight are the user's, and those are caught, labelled
/// and returned here).
#[derive(Debug)]
pub enum RuntimeError {
    /// `run` was given the wrong number of [`TaskBody`]s.
    BodyCountMismatch {
        /// Tasks in the configuration.
        expected: usize,
        /// Bodies supplied.
        got: usize,
    },
    /// User code in a mandatory / wind-up body (or the task's coordinator
    /// thread) panicked.
    TaskPanicked {
        /// Index of the offending task.
        task: usize,
        /// The panic message, when it was a string.
        message: String,
    },
    /// User code in a parallel optional part panicked with something other
    /// than a termination checkpoint.
    WorkerPanicked {
        /// Index of the offending task.
        task: usize,
        /// The panic message, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::BodyCountMismatch { expected, got } => write!(
                f,
                "one TaskBody per task is required: {expected} tasks, {got} bodies"
            ),
            RuntimeError::TaskPanicked { task, message } => {
                write!(f, "task {task} panicked: {message}")
            }
            RuntimeError::WorkerPanicked { task, message } => {
                write!(f, "optional worker of task {task} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("(non-string panic payload)")
    }
}

/// Handle given to optional-part closures for cooperative termination.
#[derive(Debug)]
pub struct OptionalControl {
    stop: Arc<AtomicBool>,
    deadline: Instant,
    mode: TerminationMode,
}

/// Panic payload used by [`OptionalControl::checkpoint`] in unwind mode;
/// recognized (and swallowed) by the worker thread.
#[derive(Debug)]
struct TerminationSignal;

impl OptionalControl {
    /// `true` once the optional deadline has passed (or the mandatory
    /// thread has requested termination): cooperative optional parts
    /// should return as soon as possible.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || Instant::now() >= self.deadline
    }

    /// Termination checkpoint: in [`TerminationMode::UnwindCatch`] this
    /// *unwinds* out of the optional part when the deadline has passed
    /// (the `try`-`catch` mechanism of Table I); in the cooperative modes
    /// it is equivalent to asserting on [`OptionalControl::should_stop`]
    /// manually — it returns and the caller keeps the obligation to stop.
    pub fn checkpoint(&self) {
        if matches!(self.mode, TerminationMode::UnwindCatch) && self.should_stop() {
            std::panic::panic_any(TerminationSignal);
        }
    }

    /// The absolute optional deadline of the running job.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

/// Shared optional-part body, callable from any worker thread.
type OptionalBody = Arc<dyn Fn(JobId, PartId, &OptionalControl) + Send + Sync>;

/// The three executable bodies of a parallel-extended imprecise task
/// (paper §IV-C: `execMandatory`, `execOptional`, `execWindup`).
pub struct TaskBody {
    mandatory: Box<dyn FnMut(JobId) + Send>,
    optional: OptionalBody,
    windup: Box<dyn FnMut(JobId) + Send>,
}

impl std::fmt::Debug for TaskBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskBody").finish_non_exhaustive()
    }
}

impl TaskBody {
    /// Builds a task body from the three closures. The optional closure is
    /// shared by all parallel optional threads and must therefore be
    /// `Fn + Send + Sync`; it should poll `ctl.should_stop()` (or call
    /// `ctl.checkpoint()`) regularly.
    pub fn new(
        mandatory: impl FnMut(JobId) + Send + 'static,
        optional: impl Fn(JobId, PartId, &OptionalControl) + Send + Sync + 'static,
        windup: impl FnMut(JobId) + Send + 'static,
    ) -> TaskBody {
        TaskBody {
            mandatory: Box::new(mandatory),
            optional: Arc::new(optional),
            windup: Box::new(windup),
        }
    }

    /// A body that does no real work — useful for protocol tests and
    /// latency measurement.
    pub fn no_op() -> TaskBody {
        TaskBody::new(|_| {}, |_, _, _| {}, |_| {})
    }
}

/// What actually happened with the privileged setup calls.
#[derive(Debug, Clone, Default)]
pub struct RuntimeReport {
    /// Online OS CPUs at run time.
    pub os_cpus: usize,
    /// Threads whose `sched_setscheduler(SCHED_FIFO)` succeeded.
    pub sched_fifo_ok: usize,
    /// Threads whose `sched_setscheduler` failed.
    pub sched_fifo_failed: usize,
    /// First scheduler error observed, if any (typically `EPERM`).
    pub sched_fifo_error: Option<String>,
    /// Threads whose `sched_setaffinity` succeeded.
    pub affinity_ok: usize,
    /// Threads whose `sched_setaffinity` failed.
    pub affinity_failed: usize,
    /// First affinity error observed, if any.
    pub affinity_error: Option<String>,
    /// `true` when `SigjmpTimer` was requested and the cooperative
    /// substitute was used (safe Rust cannot `siglongjmp`).
    pub sigjmp_substituted: bool,
}

impl RuntimeReport {
    fn merge(&mut self, other: &RuntimeReport) {
        self.os_cpus = other.os_cpus.max(self.os_cpus);
        self.sched_fifo_ok += other.sched_fifo_ok;
        self.sched_fifo_failed += other.sched_fifo_failed;
        if self.sched_fifo_error.is_none() {
            self.sched_fifo_error.clone_from(&other.sched_fifo_error);
        }
        self.affinity_ok += other.affinity_ok;
        self.affinity_failed += other.affinity_failed;
        if self.affinity_error.is_none() {
            self.affinity_error.clone_from(&other.affinity_error);
        }
        self.sigjmp_substituted |= other.sigjmp_substituted;
    }
}

/// The native executor: real threads, real time.
#[derive(Debug)]
pub struct NativeExecutor {
    config: SystemConfig,
    run_cfg: RunConfig,
    /// Bodies staged for [`Executor::execute`]; `run` takes its own.
    bodies: Option<Vec<TaskBody>>,
}

impl NativeExecutor {
    /// Creates a native executor for `config`.
    pub fn new(config: SystemConfig, run_cfg: RunConfig) -> NativeExecutor {
        NativeExecutor {
            config,
            run_cfg,
            bodies: None,
        }
    }

    /// The system configuration this executor runs.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Stages the task bodies used by [`Executor::execute`] (one per task,
    /// in task order). Without staged bodies, `execute` runs
    /// [`TaskBody::no_op`] for every task — enough to exercise the protocol
    /// and measure its overheads.
    pub fn set_bodies(&mut self, bodies: Vec<TaskBody>) {
        self.bodies = Some(bodies);
    }

    /// Runs every task of the configuration to completion with the given
    /// bodies (one per task, in task order) and returns the measurements.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BodyCountMismatch`] when `bodies.len()`
    /// differs from the task count, and [`RuntimeError::TaskPanicked`] /
    /// [`RuntimeError::WorkerPanicked`] when user code panics with
    /// anything other than a termination checkpoint. All task threads are
    /// joined before an error is returned — nothing keeps running.
    pub fn run(&self, bodies: Vec<TaskBody>) -> Result<Outcome, RuntimeError> {
        if bodies.len() != self.config.set().len() {
            return Err(RuntimeError::BodyCountMismatch {
                expected: self.config.set().len(),
                got: bodies.len(),
            });
        }
        // A single epoch shared by every task thread so per-thread trace
        // timestamps merge onto one axis (each task keeps its own release
        // anchor for scheduling, taken after its setup syscalls).
        let epoch = Instant::now();
        let mut handles = Vec::new();
        for (idx, body) in bodies.into_iter().enumerate() {
            let tcfg = TaskThreadConfig::from_config(&self.config, idx, &self.run_cfg, epoch);
            // Each task thread drives its own single-task protocol engine
            // (fault injection and the supervisor stay sim-only for now).
            let eng = Engine::single_task(&self.config, TaskId(idx as u32), &self.run_cfg);
            handles.push(std::thread::spawn(move || task_main(tcfg, body, eng)));
        }
        let mut overheads = OverheadReport::new();
        let mut qos = QosSummary::new();
        let mut runtime = RuntimeReport::default();
        let mut faults = FaultReport::new();
        let mut metrics = MetricsRegistry::new();
        let mut traces = Vec::new();
        let mut first_err = None;
        // Join every thread even after an error so no task outlives `run`.
        for (task, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(done)) => {
                    overheads.merge(&done.overheads);
                    qos.merge(&done.qos);
                    runtime.merge(&done.runtime);
                    faults.merge(&done.faults);
                    metrics.merge(&done.metrics);
                    traces.push(done.trace);
                }
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Err(payload) => {
                    first_err.get_or_insert(RuntimeError::TaskPanicked {
                        task,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(Outcome {
            overheads,
            qos,
            runtime,
            faults,
            metrics,
            trace: Trace::merged(traces),
            ..Outcome::default()
        })
    }
}

impl Executor for NativeExecutor {
    fn backend(&self) -> Backend {
        Backend::Native
    }

    fn system(&self) -> &SystemConfig {
        &self.config
    }

    fn execute(&mut self) -> Result<Outcome, ExecError> {
        self.run_cfg.validate()?;
        let bodies = self.bodies.take().unwrap_or_else(|| {
            (0..self.config.set().len())
                .map(|_| TaskBody::no_op())
                .collect()
        });
        Ok(self.run(bodies)?)
    }
}

/// Everything a task's coordinator thread needs, extracted from the
/// `SystemConfig` so the thread owns its data.
#[derive(Debug, Clone)]
struct TaskThreadConfig {
    task: TaskId,
    period: StdDuration,
    od: StdDuration,
    optional_spans: Vec<Span>,
    mandatory_hw: usize,
    placements: Vec<usize>,
    mand_prio: u8,
    opt_prio: u8,
    jobs: u64,
    termination: TerminationMode,
    attempt_rt: bool,
    epoch: Instant,
}

impl TaskThreadConfig {
    fn from_config(
        cfg: &SystemConfig,
        idx: usize,
        run: &RunConfig,
        epoch: Instant,
    ) -> TaskThreadConfig {
        let id = TaskId(idx as u32);
        let spec = cfg.set().task(id);
        TaskThreadConfig {
            task: id,
            period: StdDuration::from_nanos(spec.period().as_nanos()),
            od: StdDuration::from_nanos(cfg.optional_deadline(id).as_nanos()),
            optional_spans: spec.optional_parts().to_vec(),
            mandatory_hw: cfg.mandatory_hw(id).index(),
            placements: cfg
                .optional_placements(id)
                .iter()
                .map(|h| h.index())
                .collect(),
            mand_prio: cfg.priorities().mandatory(id).level(),
            opt_prio: cfg.priorities().optional(id).level(),
            jobs: run.jobs,
            termination: run.termination,
            attempt_rt: run.attempt_rt,
            epoch,
        }
    }

    /// A trace timestamp for `at` on the run-wide axis.
    fn stamp(&self, at: Instant) -> Time {
        Time::from_nanos(
            u64::try_from(at.saturating_duration_since(self.epoch).as_nanos())
                .unwrap_or(u64::MAX),
        )
    }
}

enum Cmd {
    Run(WorkOrder),
    Exit,
}

#[derive(Clone)]
struct WorkOrder {
    job: JobId,
    stop: Arc<AtomicBool>,
    deadline: Instant,
    sync: Arc<JobSync>,
}

struct WorkerSlot {
    cell: Mutex<Vec<Cmd>>,
    cv: Condvar,
}

struct JobSync {
    remaining: Mutex<usize>,
    cv: Condvar,
    results: Mutex<Vec<PartResult>>,
}

#[derive(Debug, Clone, Copy)]
struct PartResult {
    part: PartId,
    started: Instant,
    executed: StdDuration,
    outcome: OptionalOutcome,
}

fn span(d: StdDuration) -> Span {
    Span::from_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

fn sleep_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        std::thread::sleep(target - now);
    }
}

fn try_rt_setup(report: &Mutex<RuntimeReport>, prio: u8, hw: usize, attempt: bool) {
    if !attempt {
        return;
    }
    let os_cpus = posix::online_cpus();
    let mut r = report.lock();
    r.os_cpus = os_cpus;
    match posix::set_sched_fifo(prio) {
        Ok(()) => r.sched_fifo_ok += 1,
        Err(e) => {
            r.sched_fifo_failed += 1;
            if r.sched_fifo_error.is_none() {
                r.sched_fifo_error = Some(e.to_string());
            }
        }
    }
    match posix::set_affinity(hw % os_cpus) {
        Ok(()) => r.affinity_ok += 1,
        Err(e) => {
            r.affinity_failed += 1;
            if r.affinity_error.is_none() {
                r.affinity_error = Some(e.to_string());
            }
        }
    }
}

fn worker_main(
    slot: Arc<WorkerSlot>,
    body: OptionalBody,
    part: PartId,
    mode: TerminationMode,
    fatal: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>>,
) {
    loop {
        let cmd = {
            let mut cell = slot.cell.lock();
            loop {
                if let Some(cmd) = cell.pop() {
                    break cmd;
                }
                slot.cv.wait(&mut cell);
            }
        };
        let order = match cmd {
            Cmd::Exit => return,
            Cmd::Run(order) => order,
        };

        let started = Instant::now();
        let ctl = OptionalControl {
            stop: Arc::clone(&order.stop),
            deadline: order.deadline,
            mode,
        };
        let result = catch_unwind(AssertUnwindSafe(|| (body)(order.job, part, &ctl)));
        let executed = started.elapsed();
        let mut user_panic = None;
        let outcome = match result {
            Ok(()) => {
                if ctl.should_stop() {
                    OptionalOutcome::Terminated
                } else {
                    OptionalOutcome::Completed
                }
            }
            Err(payload) => {
                if payload.is::<TerminationSignal>() {
                    OptionalOutcome::Terminated
                } else {
                    // A real bug in user code: deliver it to the mandatory
                    // thread, but keep the completion protocol intact so
                    // nothing deadlocks.
                    user_panic = Some(payload);
                    OptionalOutcome::Terminated
                }
            }
        };

        order.sync.results.lock().push(PartResult {
            part,
            started,
            executed,
            outcome,
        });
        // Publish a user panic BEFORE announcing completion, so the
        // mandatory thread is guaranteed to observe it when the job ends.
        let dead = user_panic.is_some();
        if let Some(payload) = user_panic {
            let mut slot = fatal.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        {
            let mut remaining = order.sync.remaining.lock();
            *remaining -= 1;
            if *remaining == 0 {
                order.sync.cv.notify_all();
            }
        }
        if dead {
            return; // this worker is dead; the run aborts after the job
        }
    }
}

struct TaskMainOk {
    overheads: OverheadReport,
    qos: QosSummary,
    runtime: RuntimeReport,
    faults: FaultReport,
    trace: Trace,
    metrics: MetricsRegistry,
}

#[allow(clippy::too_many_lines)]
fn task_main(
    cfg: TaskThreadConfig,
    body: TaskBody,
    mut eng: Engine,
) -> Result<TaskMainOk, RuntimeError> {
    let TaskBody {
        mut mandatory,
        optional,
        mut windup,
    } = body;
    let np = cfg.optional_spans.len();
    let fatal: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>> =
        Arc::new(Mutex::new(None));
    let report = Arc::new(Mutex::new(RuntimeReport {
        os_cpus: posix::online_cpus(),
        sigjmp_substituted: matches!(cfg.termination, TerminationMode::SigjmpTimer),
        ..RuntimeReport::default()
    }));

    // Mandatory thread setup (this thread).
    try_rt_setup(&report, cfg.mand_prio, cfg.mandatory_hw, cfg.attempt_rt);

    // Spawn the parallel optional threads, pinned per the assignment
    // policy (paper: they migrate to their processors *before* execution).
    let slots: Vec<Arc<WorkerSlot>> = (0..np)
        .map(|_| {
            Arc::new(WorkerSlot {
                cell: Mutex::new(Vec::new()),
                cv: Condvar::new(),
            })
        })
        .collect();
    let workers: Vec<_> = (0..np)
        .map(|k| {
            let slot = Arc::clone(&slots[k]);
            let body = Arc::clone(&optional);
            let report = Arc::clone(&report);
            let hw = cfg.placements[k];
            let prio = cfg.opt_prio;
            let attempt = cfg.attempt_rt;
            let mode = cfg.termination;
            let fatal = Arc::clone(&fatal);
            std::thread::spawn(move || {
                try_rt_setup(&report, prio, hw, attempt);
                worker_main(slot, body, PartId(k as u32), mode, fatal);
            })
        })
        .collect();

    // Overruns detected and degraded jobs are driver observations; the
    // engine's own report (empty here — no fault plan, supervisor off) is
    // merged in at the end.
    let mut faults = FaultReport::new();

    let anchor = Instant::now();
    let mut aborted = None;
    for seq in 0..cfg.jobs {
        let release = anchor + cfg.period * u32::try_from(seq).unwrap_or(u32::MAX);
        sleep_until(release);
        let rel = eng.release(0, cfg.stamp(release));
        let job = rel.job;
        // Δm: release → beginning of the mandatory part.
        let mand_start = Instant::now();
        eng.sample(
            OverheadKind::BeginMandatory,
            span(mand_start.saturating_duration_since(release)),
        );
        eng.on_dispatch(0, Cursor::Mandatory, cfg.mandatory_hw, cfg.stamp(mand_start));

        mandatory(job);
        let mandatory_done = Instant::now();
        let od_instant = release + cfg.od;
        let mut run_windup = false;

        match eng.mandatory_completed(0, cfg.stamp(mandatory_done)) {
            AfterMandatory::Windup(WindupCommand::Finished { met }) => {
                // No optional parts and no wind-up demand: the engine
                // closed the job at mandatory completion.
                if !met {
                    faults.overruns_detected += 1;
                }
            }
            AfterMandatory::Windup(WindupCommand::AlreadyScheduled) => {}
            AfterMandatory::Windup(WindupCommand::At { .. }) => {
                // Either np = 0 or the mandatory part overran OD (parts
                // discarded by the engine). The wind-up is released at the
                // optional deadline, never before (§IV-B).
                sleep_until(od_instant);
                run_windup = true;
            }
            AfterMandatory::Signal { np } => {
                let stop = Arc::new(AtomicBool::new(false));
                let sync = Arc::new(JobSync {
                    remaining: Mutex::new(np),
                    cv: Condvar::new(),
                    results: Mutex::new(Vec::with_capacity(np)),
                });

                // Δb: the signal loop waking every optional thread.
                let signal_start = Instant::now();
                for slot in &slots {
                    slot.cell.lock().push(Cmd::Run(WorkOrder {
                        job,
                        stop: Arc::clone(&stop),
                        deadline: od_instant,
                        sync: Arc::clone(&sync),
                    }));
                    slot.cv.notify_one();
                }
                let signal_end = Instant::now();
                eng.sample(OverheadKind::BeginOptional, span(signal_end - signal_start));
                // On this backend the deadline wait below *is* the OD
                // timer; arming it records the TimerArmed event.
                let _ = eng.arm_timer(0, cfg.stamp(signal_start));

                // Wait for completion or the optional deadline, whichever
                // is first (the paper's pthread_cond_wait / one-shot timer
                // pair).
                {
                    let mut remaining = sync.remaining.lock();
                    while *remaining > 0 {
                        let now = Instant::now();
                        if now >= od_instant {
                            break;
                        }
                        sync.cv.wait_for(&mut remaining, od_instant - now);
                    }
                    if *remaining > 0 {
                        stop.store(true, Ordering::Relaxed);
                    }
                    while *remaining > 0 {
                        sync.cv.wait(&mut remaining);
                    }
                }
                let all_ended = Instant::now();

                let results = sync.results.lock();
                // Δe: optional deadline → all parts ended, sampled whenever
                // any part was actually terminated (whether the mandatory
                // thread set the stop flag or the worker observed the
                // deadline itself — both are the paper's timer firing).
                if results
                    .iter()
                    .any(|r| r.outcome == OptionalOutcome::Terminated)
                {
                    eng.sample(
                        OverheadKind::EndOptional,
                        span(all_ended.saturating_duration_since(od_instant)),
                    );
                    eng.trace(
                        cfg.stamp(od_instant),
                        TraceEvent::OptionalDeadlineExpired { job },
                    );
                }
                // Δs: signal end → first optional part actually running.
                if let Some(first_start) = results.iter().map(|r| r.started).min() {
                    eng.sample(
                        OverheadKind::SwitchToOptional,
                        span(first_start.saturating_duration_since(signal_end)),
                    );
                }
                for r in results.iter() {
                    eng.part_observed(
                        0,
                        r.part.index(),
                        cfg.stamp(r.started),
                        span(r.executed),
                        r.outcome,
                    );
                }
                drop(results);

                // Early completers sleep in the SQ until OD (§IV-B).
                sleep_until(od_instant);
                run_windup = true;
            }
        }

        if run_windup && eng.windup_ready(0, rel.seq, cfg.stamp(Instant::now())) {
            windup(job);
            let met = eng.windup_completed(0, cfg.stamp(Instant::now()));
            if !met {
                faults.overruns_detected += 1;
            }
        }
        if np > 0 && eng.parts_degraded(0) {
            faults.jobs_degraded += 1;
        }

        // A user panic in an optional part aborts the run after the job's
        // bookkeeping so the caller sees both the records and the panic.
        if let Some(payload) = fatal.lock().take() {
            aborted = Some(payload);
            break;
        }
    }

    // Shut the workers down; join all of them before reporting any error
    // so no optional thread outlives its task.
    for slot in &slots {
        slot.cell.lock().push(Cmd::Exit);
        slot.cv.notify_one();
    }
    let mut worker_err = None;
    for w in workers {
        if let Err(payload) = w.join() {
            worker_err.get_or_insert_with(|| RuntimeError::WorkerPanicked {
                task: cfg.task.index(),
                message: panic_message(payload.as_ref()),
            });
        }
    }
    if let Some(e) = worker_err {
        return Err(e);
    }
    if let Some(payload) = aborted {
        return Err(RuntimeError::WorkerPanicked {
            task: cfg.task.index(),
            message: panic_message(payload.as_ref()),
        });
    }

    let report = Arc::try_unwrap(report)
        .map(Mutex::into_inner)
        .unwrap_or_else(|arc| arc.lock().clone());
    let out = eng.finish(cfg.stamp(Instant::now()));
    let mut faults_total = out.faults;
    faults_total.merge(&faults);
    Ok(TaskMainOk {
        overheads: out.overheads,
        qos: out.qos,
        runtime: report,
        faults: faults_total,
        trace: out.trace,
        metrics: out.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AssignmentPolicy;
    use rtseed_model::{TaskSet, TaskSpec, Topology};

    /// A short task: T = 60 ms, m = 2 ms, w = 2 ms, np optional parts of
    /// nominally 20 ms.
    fn quick_config(np: usize) -> SystemConfig {
        let t = TaskSpec::builder("native-test")
            .period(Span::from_millis(60))
            .mandatory(Span::from_millis(2))
            .windup(Span::from_millis(2))
            .optional_parts(np, Span::from_millis(20))
            .build()
            .unwrap();
        SystemConfig::build(
            TaskSet::new(vec![t]).unwrap(),
            Topology::uniprocessor(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap()
    }

    fn run_cfg(jobs: u64) -> RunConfig {
        RunConfig {
            jobs,
            termination: TerminationMode::PeriodicCheck {
                interval: Span::from_millis(1),
            },
            attempt_rt: false,
            ..RunConfig::default()
        }
    }

    /// Optional body that spins in 200 µs naps until told to stop.
    fn overrunning_optional() -> impl Fn(JobId, PartId, &OptionalControl) + Send + Sync {
        |_, _, ctl: &OptionalControl| {
            while !ctl.should_stop() {
                std::thread::sleep(StdDuration::from_micros(200));
            }
        }
    }

    #[test]
    fn protocol_runs_and_terminates_overrunning_parts() {
        let cfg = quick_config(2);
        let exec = NativeExecutor::new(cfg, run_cfg(3));
        let out = exec
            .run(vec![TaskBody::new(
                |_| std::thread::sleep(StdDuration::from_millis(1)),
                overrunning_optional(),
                |_| {},
            )])
            .expect("run");
        assert_eq!(out.qos.jobs(), 3);
        // Terminated parts are observed overload: every job degraded.
        assert_eq!(out.faults.jobs_degraded, 3);
        let (completed, terminated, discarded) = out.qos.outcome_totals();
        assert_eq!(completed, 0);
        assert_eq!(terminated, 2 * 3);
        assert_eq!(discarded, 0);
        // Overheads were sampled.
        assert_eq!(out.overheads.count(OverheadKind::BeginMandatory), 3);
        assert_eq!(out.overheads.count(OverheadKind::BeginOptional), 3);
        assert_eq!(out.overheads.count(OverheadKind::EndOptional), 3);
        assert_eq!(out.overheads.count(OverheadKind::SwitchToOptional), 3);
    }

    #[test]
    fn quick_parts_complete() {
        let cfg = quick_config(2);
        let exec = NativeExecutor::new(cfg, run_cfg(2));
        let out = exec
            .run(vec![TaskBody::new(
                |_| {},
                |_, _, _| std::thread::sleep(StdDuration::from_millis(2)),
                |_| {},
            )])
            .expect("run");
        let (completed, terminated, discarded) = out.qos.outcome_totals();
        assert_eq!(completed, 4, "t/d = {terminated}/{discarded}");
        assert_eq!(out.faults.jobs_degraded, 0);
        // Completing early means no Δe samples.
        assert_eq!(out.overheads.count(OverheadKind::EndOptional), 0);
    }

    #[test]
    fn unwind_mode_cuts_parts_via_checkpoint() {
        let cfg = quick_config(2);
        let exec = NativeExecutor::new(
            cfg,
            RunConfig {
                jobs: 2,
                termination: TerminationMode::UnwindCatch,
                attempt_rt: false,
                ..RunConfig::default()
            },
        );
        let out = exec
            .run(vec![TaskBody::new(
                |_| {},
                |_, _, ctl: &OptionalControl| loop {
                    ctl.checkpoint();
                    std::thread::sleep(StdDuration::from_micros(200));
                },
                |_| {},
            )])
            .expect("run");
        let (_, terminated, _) = out.qos.outcome_totals();
        assert_eq!(terminated, 4);
        // Unlike the paper's C++ try-catch, the Rust unwind path re-arms
        // cleanly: *both* jobs terminated their parts (tolerating one CFS
        // hiccup on loaded CI machines).
        assert!(out.qos.deadline_misses() <= 1, "{}", out.qos);
    }

    #[test]
    fn user_panic_surfaces_as_typed_error() {
        let cfg = quick_config(1);
        let exec = NativeExecutor::new(cfg, run_cfg(1));
        let err = exec
            .run(vec![TaskBody::new(
                |_| {},
                |_, _, _| panic!("user bug"),
                |_| {},
            )])
            .unwrap_err();
        match &err {
            RuntimeError::WorkerPanicked { task, message } => {
                assert_eq!(*task, 0);
                assert_eq!(message, "user bug");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(err.to_string().contains("user bug"), "{err}");
    }

    #[test]
    fn no_op_body_with_no_parts() {
        let t = TaskSpec::builder("plain")
            .period(Span::from_millis(20))
            .mandatory(Span::from_millis(1))
            .build()
            .unwrap();
        let cfg = SystemConfig::build(
            TaskSet::new(vec![t]).unwrap(),
            Topology::uniprocessor(),
            AssignmentPolicy::OneByOne,
        )
        .unwrap();
        let out = NativeExecutor::new(cfg, run_cfg(3))
            .run(vec![TaskBody::no_op()])
            .expect("run");
        assert_eq!(out.qos.jobs(), 3);
        assert_eq!(out.qos.deadline_misses(), 0);
        assert!((out.qos.aggregate_ratio() - 1.0).abs() < 1e-12);
        assert!(out.faults.is_clean(), "{}", out.faults);
    }

    #[test]
    fn runtime_report_records_outcomes() {
        let cfg = quick_config(1);
        let exec = NativeExecutor::new(
            cfg,
            RunConfig {
                jobs: 1,
                termination: TerminationMode::SigjmpTimer,
                attempt_rt: true,
                ..RunConfig::default()
            },
        );
        let out = exec
            .run(vec![TaskBody::new(|_| {}, |_, _, _| {}, |_| {})])
            .expect("run");
        let r = &out.runtime;
        assert!(r.os_cpus >= 1);
        // Substitution is reported for SigjmpTimer.
        assert!(r.sigjmp_substituted);
        // Two threads attempted setup (mandatory + 1 worker): each call
        // either succeeded or failed, nothing silently dropped.
        assert_eq!(r.sched_fifo_ok + r.sched_fifo_failed, 2);
        assert_eq!(r.affinity_ok + r.affinity_failed, 2);
    }

    #[test]
    fn body_count_mismatch_is_a_typed_error() {
        let exec = NativeExecutor::new(quick_config(1), run_cfg(1));
        let err = exec.run(vec![]).unwrap_err();
        match err {
            RuntimeError::BodyCountMismatch { expected, got } => {
                assert_eq!((expected, got), (1, 0));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn trace_covers_the_native_protocol() {
        let cfg = quick_config(1);
        let mut run = run_cfg(2);
        run.trace = crate::obs::TraceConfig::enabled();
        let out = NativeExecutor::new(cfg, run)
            .run(vec![TaskBody::no_op()])
            .expect("run");
        let releases = out
            .trace
            .count(|e| matches!(e, TraceEvent::JobReleased { .. }));
        assert_eq!(releases, 2);
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::WindupCompleted { .. })),
            2
        );
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::OptionalStarted { .. })),
            2
        );
        // The merged trace is on one time axis, in order.
        assert!(out.trace.events().windows(2).all(|w| w[0].0 <= w[1].0));
        // Metrics accumulate regardless of tracing.
        assert_eq!(out.metrics.response_time().count(), 2);
        assert_eq!(out.metrics.qos_level().count(), 2);
    }

    #[test]
    fn untraced_run_carries_an_empty_trace() {
        let out = NativeExecutor::new(quick_config(1), run_cfg(1))
            .run(vec![TaskBody::no_op()])
            .expect("run");
        assert!(out.trace.is_empty());
        // ... but the metrics registry still fills.
        assert_eq!(out.metrics.response_time().count(), 1);
    }

    #[test]
    fn executor_trait_runs_staged_or_default_bodies() {
        let mut exec = NativeExecutor::new(quick_config(1), run_cfg(1));
        assert_eq!(exec.backend(), Backend::Native);
        assert_eq!(exec.system().set().len(), 1);
        let out = exec.execute().expect("default no-op bodies");
        assert_eq!(out.qos.jobs(), 1);
        exec.set_bodies(vec![TaskBody::no_op()]);
        let out = exec.execute().expect("staged bodies");
        assert_eq!(out.qos.jobs(), 1);
    }

    #[test]
    fn deadlines_met_under_nominal_load() {
        let cfg = quick_config(2);
        let out = NativeExecutor::new(cfg, run_cfg(3))
            .run(vec![TaskBody::new(|_| {}, overrunning_optional(), |_| {})])
            .expect("run");
        // 2 ms of wind-up budget against ~µs-scale actual work: even
        // unprivileged scheduling meets a 60 ms deadline — tolerate one
        // CFS hiccup on loaded CI machines.
        assert!(out.qos.deadline_misses() <= 1, "{}", out.qos);
    }
}
