//! Native background-load generators — the measurement methodology of
//! paper §V-B on a real host:
//!
//! * **CPU load**: "infinite loop tasks on all hardware threads";
//! * **CPU-Memory load**: "512 KB (equal to the L2 cache size …)
//!   read/write tasks in infinite loops on all hardware threads", which
//!   pollutes L1/L2 so measured code misses to memory.
//!
//! [`LoadGenerator`] spawns the loops as ordinary (SCHED_OTHER) threads —
//! exactly the paper's setup, where SCHED_FIFO middleware threads preempt
//! the load but share caches, branch units and SMT pipelines with it.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use rtseed_sim::BackgroundLoad;

use super::posix;

/// Running background load; dropping it stops the load threads.
#[derive(Debug)]
pub struct LoadGenerator {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    load: BackgroundLoad,
}

impl LoadGenerator {
    /// Starts `threads` load threads of the given kind. For
    /// [`BackgroundLoad::NoLoad`] no threads are spawned.
    ///
    /// Pass [`LoadGenerator::one_per_cpu`] for the paper's
    /// "all hardware threads" setup.
    pub fn start(load: BackgroundLoad, threads: usize) -> LoadGenerator {
        let stop = Arc::new(AtomicBool::new(false));
        let spawned = match load {
            BackgroundLoad::NoLoad => Vec::new(),
            BackgroundLoad::CpuLoad => (0..threads)
                .map(|i| {
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let _ = posix::set_affinity(i % posix::online_cpus());
                        cpu_spin(&stop);
                    })
                })
                .collect(),
            BackgroundLoad::CpuMemoryLoad => (0..threads)
                .map(|i| {
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let _ = posix::set_affinity(i % posix::online_cpus());
                        cache_polluter(&stop);
                    })
                })
                .collect(),
        };
        LoadGenerator {
            stop,
            threads: spawned,
            load,
        }
    }

    /// The paper's configuration: one load thread per online CPU.
    pub fn one_per_cpu(load: BackgroundLoad) -> LoadGenerator {
        LoadGenerator::start(load, posix::online_cpus())
    }

    /// The load kind being generated.
    pub fn load(&self) -> BackgroundLoad {
        self.load
    }

    /// Number of running load threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Stops and joins the load threads.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for LoadGenerator {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// The paper's CPU load: a pure branch-heavy spin loop.
fn cpu_spin(stop: &AtomicBool) {
    let mut x = 0u64;
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..1024 {
            x = black_box(x.wrapping_mul(6364136223846793005).wrapping_add(1));
        }
    }
    black_box(x);
}

/// The paper's CPU-Memory load: read/write over a 512 KiB buffer (one L2's
/// worth on the Xeon Phi 3120A) in an infinite loop.
fn cache_polluter(stop: &AtomicBool) {
    const L2_BYTES: usize = 512 * 1024;
    let mut buf = vec![0u8; L2_BYTES];
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        // Stride of one cache line: touch every line, read-modify-write.
        for _ in 0..256 {
            let v = buf[i].wrapping_add(1);
            buf[i] = v;
            i = (i + 64) % L2_BYTES;
        }
        black_box(&buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn no_load_spawns_nothing() {
        let gen = LoadGenerator::start(BackgroundLoad::NoLoad, 4);
        assert_eq!(gen.threads(), 0);
        assert_eq!(gen.load(), BackgroundLoad::NoLoad);
        gen.stop();
    }

    #[test]
    fn cpu_load_starts_and_stops_quickly() {
        let gen = LoadGenerator::start(BackgroundLoad::CpuLoad, 2);
        assert_eq!(gen.threads(), 2);
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        gen.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "load threads must stop promptly"
        );
    }

    #[test]
    fn memory_load_starts_and_stops_quickly() {
        let gen = LoadGenerator::start(BackgroundLoad::CpuMemoryLoad, 2);
        assert_eq!(gen.threads(), 2);
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        gen.stop();
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn drop_stops_threads() {
        {
            let _gen = LoadGenerator::start(BackgroundLoad::CpuLoad, 1);
            std::thread::sleep(Duration::from_millis(10));
        } // drop must join without hanging
    }

    #[test]
    fn one_per_cpu_matches_online() {
        let gen = LoadGenerator::one_per_cpu(BackgroundLoad::CpuLoad);
        assert_eq!(gen.threads(), super::posix::online_cpus());
        gen.stop();
    }
}
