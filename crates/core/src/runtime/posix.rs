//! Thin, fallible wrappers over the POSIX scheduling interfaces the paper's
//! middleware is built on: `sched_setscheduler(SCHED_FIFO)`,
//! `sched_setaffinity`, `sched_getcpu` (paper §IV-C).
//!
//! All calls degrade gracefully: on `EPERM` (no RT privilege, the common
//! case in containers) or on non-Linux hosts the caller receives an error
//! to *record*, never a panic — RT-Seed then runs with the default policy,
//! which preserves the protocol semantics if not its latency bounds.
//!
//! This module is the only place in the workspace that uses `unsafe`.

use std::io;

/// Sets the calling thread to `SCHED_FIFO` at `priority` (1–99).
///
/// # Errors
///
/// Returns the OS error on failure — typically `EPERM` without
/// `CAP_SYS_NICE`, or `EINVAL` for an out-of-range priority.
pub fn set_sched_fifo(priority: u8) -> io::Result<()> {
    let param = libc::sched_param {
        sched_priority: i32::from(priority),
    };
    // SAFETY: `param` is a valid, initialized sched_param; pid 0 means the
    // calling thread; SCHED_FIFO is a valid policy constant.
    let rc = unsafe { libc::sched_setscheduler(0, libc::SCHED_FIFO, &param) };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Pins the calling thread to the given OS CPU.
///
/// # Errors
///
/// Returns the OS error on failure (`EINVAL` for a nonexistent CPU).
pub fn set_affinity(cpu: usize) -> io::Result<()> {
    // SAFETY: zeroed cpu_set_t is a valid empty set; CPU_SET writes within
    // its bounds because we check `cpu` against CPU_SETSIZE first.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        if cpu >= libc::CPU_SETSIZE as usize {
            return Err(io::Error::from_raw_os_error(libc::EINVAL));
        }
        libc::CPU_SET(cpu, &mut set);
        let rc = libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }
}

/// The OS CPU the calling thread is currently executing on, if the kernel
/// exposes it.
pub fn current_cpu() -> Option<usize> {
    // SAFETY: sched_getcpu takes no arguments and returns -1 on error.
    let cpu = unsafe { libc::sched_getcpu() };
    usize::try_from(cpu).ok()
}

/// Number of online OS CPUs (at least 1).
pub fn online_cpus() -> usize {
    // SAFETY: sysconf with a valid name constant.
    let n = unsafe { libc::sysconf(libc::_SC_NPROCESSORS_ONLN) };
    usize::try_from(n).unwrap_or(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_cpus_is_positive() {
        assert!(online_cpus() >= 1);
    }

    #[test]
    fn current_cpu_is_within_range() {
        if let Some(cpu) = current_cpu() {
            assert!(cpu < online_cpus() + 64, "implausible cpu id {cpu}");
        }
    }

    #[test]
    fn set_affinity_to_cpu0_usually_succeeds() {
        // CPU 0 exists on every machine; failure (e.g. restricted cpuset)
        // must still be a clean io::Error, not a crash.
        match set_affinity(0) {
            Ok(()) => {
                if let Some(cpu) = current_cpu() {
                    assert_eq!(cpu, 0);
                }
            }
            Err(e) => {
                assert!(e.raw_os_error().is_some(), "{e}");
            }
        }
    }

    #[test]
    fn set_affinity_rejects_absurd_cpu() {
        let err = set_affinity(1 << 20).unwrap_err();
        assert!(err.raw_os_error().is_some());
    }

    #[test]
    fn sched_fifo_fails_cleanly_without_privilege() {
        // Either we have the privilege (fine) or we get a clean EPERM.
        match set_sched_fifo(50) {
            Ok(()) => {
                // Restore a normal policy so the test runner is unaffected:
                // SCHED_OTHER with priority 0.
                // SAFETY: valid param, calling thread.
                let param = libc::sched_param { sched_priority: 0 };
                unsafe {
                    libc::sched_setscheduler(0, libc::SCHED_OTHER, &param);
                }
            }
            Err(e) => {
                assert_eq!(e.raw_os_error(), Some(libc::EPERM), "{e}");
            }
        }
    }

    #[test]
    fn sched_fifo_rejects_invalid_priority() {
        // 0 is not a valid SCHED_FIFO priority: EINVAL (or EPERM first,
        // depending on the kernel's check order).
        let err = set_sched_fifo(0).unwrap_err();
        assert!(
            matches!(err.raw_os_error(), Some(libc::EINVAL) | Some(libc::EPERM)),
            "{err}"
        );
    }
}
