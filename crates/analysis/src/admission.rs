//! Incremental online admission control for P-RMWP serving.
//!
//! [`crate::partition`] answers the *offline* question — "does this whole
//! task set fit on this machine?" — in one shot. A serving middleware
//! (YASMIN-style, see PAPERS.md) instead faces a *stream* of tenant
//! submissions and departures and must answer each one against the tasks
//! already running. [`AdmissionController`] keeps the per-hardware-thread
//! bins alive between decisions and exposes admit/evict **deltas**:
//!
//! * [`AdmissionController::try_admit`] places a batch of tasks with the
//!   same decreasing-utilization bin-packing heuristics and the same exact
//!   RMWP response-time test as the offline partitioner — all-or-nothing,
//!   so a partially admissible tenant leaves no residue;
//! * [`AdmissionController::evict`] removes tasks and reports how the
//!   optional deadlines of the survivors *grow* (less interference);
//! * admitting returns [`OdUpdate`]s for pre-existing tasks whose optional
//!   deadlines *shrink* because a new neighbour landed on their thread.
//!
//! Within a bin, the analysis runs against the *deployed* RTQ levels
//! ([`rtseed_model::Priority::for_period`]): shorter-period buckets get
//! higher levels, and tasks that share a level — the mapping is
//! many-to-one — are charged with each other's interference both ways,
//! because SCHED_FIFO cannot order tasks within a level under the
//! arbitrary release phasing online admission creates. The admission test
//! therefore never assumes an ordering the kernel will not enforce.
//!
//! # Incremental response-time analysis
//!
//! The P-RMWP test is **per-CPU by construction**: a bin's response-time
//! fixpoints depend only on that bin's population, so a placement only
//! perturbs the candidate CPU(s) it touches. The controller exploits
//! that in two ways:
//!
//! * **plan/commit split** — [`AdmissionController::plan_admit_bounded`]
//!   runs the placement search against the live bins plus a per-bin
//!   *overlay* of already-placed batch-mates (no clone of the resident
//!   state), producing an [`AdmissionPlan`];
//!   [`AdmissionController::commit_admission`] applies a plan and
//!   derives the OD deltas from the **touched bins only**. Residents on
//!   untouched threads cannot change OD (their bin population did not
//!   change), so the deltas are identical — value for value, in the same
//!   order — to a full before/after scan.
//! * **per-bin OD cache** — the analyzed optional deadlines of each bin
//!   are memoized and invalidated exactly when the bin's population
//!   changes (admit commit, evict). Because the cached value is a pure
//!   function of the bin population, decisions are bit-identical to the
//!   monolithic path; [`AdmissionController::cache_stats`] reports the
//!   hit/miss counters.
//!
//! [`AdmissionController::with_mode`] can instead pin the controller to
//! the original **full-RTA** cost profile (every decision re-analyzes
//! every non-empty bin, nothing is cached). Decisions are identical by
//! construction — both modes share one search implementation — which
//! makes full mode the differential-testing oracle and the benchmark
//! baseline.
//!
//! # Examples
//!
//! ```
//! use rtseed_analysis::{AdmissionController, PartitionHeuristic};
//! use rtseed_model::{Span, TaskSpec};
//!
//! let task = TaskSpec::builder("t")
//!     .period(Span::from_millis(100))
//!     .mandatory(Span::from_millis(30))
//!     .windup(Span::from_millis(30))
//!     .build()?;
//! // Two hardware threads: two 0.6-utilization tasks fit, a third cannot.
//! let mut ctl = AdmissionController::new(2, PartitionHeuristic::WorstFitDecreasing);
//! let a = ctl.try_admit(std::slice::from_ref(&task))?;
//! let b = ctl.try_admit(std::slice::from_ref(&task))?;
//! assert!(ctl.try_admit(std::slice::from_ref(&task)).is_err());
//! // Evicting the first frees its thread for a newcomer.
//! ctl.evict(&[a.tasks[0].key]);
//! assert!(ctl.try_admit(std::slice::from_ref(&task)).is_ok());
//! # drop(b);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rtseed_model::{HwThreadId, Priority, QosFloor, Span, TaskId, TaskSet, TaskSpec};
use serde::{Deserialize, Serialize};

use crate::partition::PartitionHeuristic;
use crate::rmwp::RmwpAnalysis;

/// Opaque handle to one task admitted by an [`AdmissionController`].
///
/// Keys are assigned monotonically and never reused, so a stale key from
/// an evicted task can never alias a live one.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TaskKey(pub u64);

impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// One admitted task: where it was bound and the optional deadline the
/// per-thread RMWP analysis granted it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmittedTask {
    /// Handle for later eviction.
    pub key: TaskKey,
    /// Hardware thread the mandatory/wind-up parts are pinned to.
    pub hw_thread: HwThreadId,
    /// Relative optional deadline under the thread's current population.
    pub optional_deadline: Span,
}

/// A changed optional deadline for a task that was *already* admitted:
/// admission shrinks neighbours' ODs, eviction grows them. The serving
/// layer forwards these to the running engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OdUpdate {
    /// The affected pre-existing task.
    pub key: TaskKey,
    /// Its new relative optional deadline.
    pub optional_deadline: Span,
}

/// Result of a successful [`AdmissionController::try_admit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission {
    /// Placements for the submitted tasks, in submission order.
    pub tasks: Vec<AdmittedTask>,
    /// New optional deadlines for pre-existing tasks on the touched
    /// threads (only entries whose OD actually changed).
    pub od_updates: Vec<OdUpdate>,
}

/// Error from [`AdmissionController::try_admit`]. The controller's state
/// is unchanged on error (all-or-nothing admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The `index`-th submitted task could not be admitted on any
    /// hardware thread without breaking RMWP schedulability.
    Unschedulable {
        /// Index into the submitted slice.
        index: usize,
    },
    /// The submission was empty.
    EmptySubmission,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Unschedulable { index } => write!(
                f,
                "submitted task #{index} is not RMWP-schedulable on any hardware thread"
            ),
            AdmissionError::EmptySubmission => write!(f, "submission contains no tasks"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Hit/miss counters of the per-bin response-time cache
/// ([`AdmissionController::cache_stats`]).
///
/// A **miss** is one full per-bin RMWP fixpoint computation (during a
/// placement search or a snapshot); a **hit** is a per-bin OD read served
/// from the memoized value. In full-RTA mode every read is a miss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionCacheStats {
    /// Per-bin OD reads served from the cache.
    pub hits: u64,
    /// Per-bin RMWP fixpoint computations performed.
    pub misses: u64,
}

impl AdmissionCacheStats {
    /// Fraction of per-bin OD reads served from the cache (`0.0` when no
    /// reads happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident task: its stable key and spec, in admission order, plus
/// the absolute QoS floor its tenant contracted at admission (the lowest
/// optional deadline any later decision may impose on it).
#[derive(Debug, Clone)]
struct Entry {
    key: TaskKey,
    spec: TaskSpec,
    min_od: Span,
}

/// A validated placement for one submission batch, produced by
/// [`AdmissionController::plan_admit_bounded`] against an immutable
/// controller and applied by [`AdmissionController::commit_admission`].
///
/// The split lets callers compute plans for *several* batches
/// concurrently (planning takes `&self`) and commit them one by one —
/// the serving layer's parallel admission rounds do exactly that,
/// validating each speculative plan's [`AdmissionPlan::examined_bins`]
/// against the bins earlier commits touched.
#[derive(Debug, Clone)]
pub struct AdmissionPlan {
    /// `next_key` at plan time. Commit re-mints keys from the live
    /// counter; the uniform upward shift preserves every `(period, key)`
    /// tie-break the search relied on, so the plan stays valid.
    base_key: u64,
    /// Submission index → chosen bin.
    placements: Vec<usize>,
    /// Submission index → the OD granted at placement time (used for the
    /// provisional floor anchors while batch-mates place).
    granted: Vec<Span>,
    /// Submission indices in placement (decreasing-utilization) order.
    order: Vec<usize>,
    /// Every bin the search ran the RMWP test on, in first-examined
    /// order, deduplicated. Placed bins are always a subset.
    examined: Vec<usize>,
}

impl AdmissionPlan {
    /// Every bin the placement search analyzed (placed or rejected), in
    /// first-examined order. A commit that only touches bins outside
    /// this set cannot change what this plan would decide.
    pub fn examined_bins(&self) -> &[usize] {
        &self.examined
    }

    /// The bin chosen for each submitted task, in submission order.
    pub fn placed_bins(&self) -> &[usize] {
        &self.placements
    }
}

/// A validated batched-eviction plan, produced read-only by
/// [`AdmissionController::plan_evict`] (or assembled from per-bin
/// [`AdmissionController::plan_evict_bin`] results computed on worker
/// threads) and applied by [`AdmissionController::commit_evict`].
///
/// Eviction planning is **per-bin independent**: removing a set of keys
/// only changes the response-time fixpoints of the bins that actually
/// hosted one of them, and each touched bin's survivor analysis reads
/// nothing outside the bin. A depart-storm can therefore fan the touched
/// bins out across scoped threads — the serving layer's parallel
/// admission-round machinery reuses exactly this split — and the
/// sequential commit assembles results in ascending bin order, so the
/// [`OdUpdate`]s are identical to the single-threaded eviction.
///
/// A plan is only valid against the controller state it was computed
/// from: any intervening admit or evict invalidates it (enforced by
/// debug assertions at commit).
#[derive(Debug, Clone)]
pub struct EvictPlan {
    /// Per touched bin, ascending: the bin index and its survivors'
    /// recomputed optional deadlines (survivor order = bin order after
    /// the keys are removed).
    bins: Vec<(usize, Vec<Span>)>,
}

impl EvictPlan {
    /// Assembles a plan from per-bin results (any order); `parts` must
    /// hold exactly one entry per touched bin, as returned by
    /// [`AdmissionController::plan_evict_bin`] for the bins
    /// [`AdmissionController::evict_touched_bins`] reported.
    pub fn assemble(mut parts: Vec<(usize, Vec<Span>)>) -> EvictPlan {
        parts.sort_unstable_by_key(|(b, _)| *b);
        EvictPlan { bins: parts }
    }

    /// The touched bins, ascending.
    pub fn touched_bins(&self) -> impl Iterator<Item = usize> + '_ {
        self.bins.iter().map(|(b, _)| *b)
    }

    /// Whether no bin is touched (evicting unknown keys only).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }
}

/// Online admission controller: the per-hardware-thread bins of the
/// offline [`crate::Partition`], kept alive between decisions.
///
/// See the [module docs](self) for the incremental-RTA machinery
/// (plan/commit split, per-bin OD cache, full-RTA oracle mode).
#[derive(Debug)]
pub struct AdmissionController {
    bins: Vec<Vec<Entry>>,
    bin_util: Vec<f64>,
    heuristic: PartitionHeuristic,
    next_key: u64,
    /// Monolithic oracle mode: recompute every non-empty bin on every
    /// decision, never read or write the cache.
    full_rta: bool,
    /// Memoized per-bin analyzed ODs (bin-member order). `None` =
    /// invalidated. Invariant: `Some(ods)` always equals what
    /// `bin_rta(&bins[b], &[], None)` would return right now.
    od_cache: Vec<Option<Vec<Span>>>,
    /// Cache hits (atomic so `&self` planning across scoped threads can
    /// count; `Relaxed` — the totals are deterministic, ordering is not
    /// observed).
    hits: AtomicU64,
    /// Per-bin RMWP fixpoint computations.
    misses: AtomicU64,
}

impl Clone for AdmissionController {
    fn clone(&self) -> AdmissionController {
        AdmissionController {
            bins: self.bins.clone(),
            bin_util: self.bin_util.clone(),
            heuristic: self.heuristic,
            next_key: self.next_key,
            full_rta: self.full_rta,
            od_cache: self.od_cache.clone(),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

impl AdmissionController {
    /// Creates an empty controller for a machine with `hw_threads`
    /// hardware threads, placing with `heuristic`. Uses the incremental
    /// per-bin RTA cache; see [`AdmissionController::with_mode`] for the
    /// full-RTA oracle.
    ///
    /// # Panics
    ///
    /// Panics if `hw_threads` is zero.
    pub fn new(hw_threads: usize, heuristic: PartitionHeuristic) -> AdmissionController {
        AdmissionController::with_mode(hw_threads, heuristic, false)
    }

    /// [`AdmissionController::new`] with an explicit analysis mode:
    /// `full_rta = true` re-analyzes **every** non-empty bin on every
    /// decision (the original monolithic cost profile — the differential
    /// oracle and benchmark baseline), `false` uses the incremental
    /// per-bin cache. Decisions are identical in both modes.
    ///
    /// # Panics
    ///
    /// Panics if `hw_threads` is zero.
    pub fn with_mode(
        hw_threads: usize,
        heuristic: PartitionHeuristic,
        full_rta: bool,
    ) -> AdmissionController {
        assert!(hw_threads > 0, "need at least one hardware thread");
        AdmissionController {
            bins: vec![Vec::new(); hw_threads],
            bin_util: vec![0.0; hw_threads],
            heuristic,
            next_key: 0,
            full_rta,
            od_cache: vec![None; hw_threads],
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of hardware threads the controller packs onto.
    #[inline]
    pub fn hw_threads(&self) -> usize {
        self.bins.len()
    }

    /// The bin-packing heuristic placements use.
    #[inline]
    pub fn heuristic(&self) -> PartitionHeuristic {
        self.heuristic
    }

    /// Whether the controller runs in the monolithic full-RTA mode (see
    /// [`AdmissionController::with_mode`]).
    #[inline]
    pub fn is_full_rta(&self) -> bool {
        self.full_rta
    }

    /// Number of currently resident tasks.
    pub fn resident_tasks(&self) -> usize {
        self.bins.iter().map(Vec::len).sum()
    }

    /// Total utilization of resident tasks (sum over threads).
    pub fn total_utilization(&self) -> f64 {
        self.bin_util.iter().sum()
    }

    /// Utilization currently packed onto `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    #[inline]
    pub fn thread_utilization(&self, thread: HwThreadId) -> f64 {
        self.bin_util[thread.index()]
    }

    /// The response-time cache counters accumulated so far.
    pub fn cache_stats(&self) -> AdmissionCacheStats {
        AdmissionCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Tries to admit `tasks` as one atomic batch.
    ///
    /// Tasks are placed in decreasing-utilization order (ties by
    /// submission index); each placement runs the exact RMWP
    /// response-time test on the candidate thread's population plus the
    /// newcomer. If *any* task fails on every thread the whole batch is
    /// rejected and the controller is left exactly as before.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Unschedulable`] naming the first task that fits
    /// nowhere, or [`AdmissionError::EmptySubmission`].
    pub fn try_admit(&mut self, tasks: &[TaskSpec]) -> Result<Admission, AdmissionError> {
        self.try_admit_bounded(tasks, &[], &[])
    }

    /// [`AdmissionController::try_admit`] with explicit QoS constraints —
    /// the serving layer's shedding-ladder entry point.
    ///
    /// `floors` gives the submitted tasks' QoS floors in submission order
    /// (missing entries default to [`QosFloor::none`]); each admitted
    /// task's absolute floor is anchored at the optional deadline it is
    /// granted here and enforced against every later decision. `od_bounds`
    /// tightens, for this decision only, the lowest new optional deadline
    /// the placement may impose on specific residents (bounds for unknown
    /// keys are ignored; residents without a bound keep their contracted
    /// floor). A placement that would push any resident below its
    /// applicable bound is treated as infeasible, exactly like an RTA
    /// failure.
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::try_admit`]; a submission that fails only
    /// because of floors/bounds reports the same
    /// [`AdmissionError::Unschedulable`].
    pub fn try_admit_bounded(
        &mut self,
        tasks: &[TaskSpec],
        floors: &[QosFloor],
        od_bounds: &[(TaskKey, Span)],
    ) -> Result<Admission, AdmissionError> {
        let plan = self.plan_admit_bounded(tasks, floors, od_bounds)?;
        Ok(self.commit_admission(tasks, floors, &plan))
    }

    /// Runs the placement search for `tasks` **without mutating the
    /// controller**, returning the plan a subsequent
    /// [`AdmissionController::commit_admission`] can apply. Parameters
    /// are as in [`AdmissionController::try_admit_bounded`].
    ///
    /// Planning takes `&self`, so independent batches can be planned
    /// concurrently; a plan stays valid as long as no commit touches any
    /// of its [`AdmissionPlan::examined_bins`] (and the heuristic's
    /// candidate order over the untouched bins is stable — see
    /// `ShardedAdmission` in this crate for the full validity argument).
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::try_admit_bounded`].
    pub fn plan_admit_bounded(
        &self,
        tasks: &[TaskSpec],
        floors: &[QosFloor],
        od_bounds: &[(TaskKey, Span)],
    ) -> Result<AdmissionPlan, AdmissionError> {
        if tasks.is_empty() {
            return Err(AdmissionError::EmptySubmission);
        }
        let m = self.bins.len();

        // Batch-mates placed so far, per bin: the live bins are read-only
        // and the overlay carries the tentative additions.
        let mut overlay: Vec<Vec<Entry>> = vec![Vec::new(); m];
        let mut bin_util = self.bin_util.clone();

        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by(|&a, &b| {
            let ua = tasks[a].utilization();
            let ub = tasks[b].utilization();
            ub.partial_cmp(&ua)
                .expect("utilizations are finite")
                .then(a.cmp(&b))
        });

        let mut placements = vec![0usize; tasks.len()];
        let mut granted_ods = vec![Span::ZERO; tasks.len()];
        let mut examined: Vec<usize> = Vec::new();
        let mut examined_set = vec![false; m];
        for &i in &order {
            let spec = &tasks[i];
            let mut candidates: Vec<usize> = (0..m).collect();
            match self.heuristic {
                PartitionHeuristic::FirstFitDecreasing => {}
                PartitionHeuristic::BestFitDecreasing => {
                    candidates.sort_by(|&a, &b| {
                        bin_util[b]
                            .partial_cmp(&bin_util[a])
                            .expect("finite utilization")
                            .then(a.cmp(&b))
                    });
                }
                PartitionHeuristic::WorstFitDecreasing => {
                    candidates.sort_by(|&a, &b| {
                        bin_util[a]
                            .partial_cmp(&bin_util[b])
                            .expect("finite utilization")
                            .then(a.cmp(&b))
                    });
                }
            }

            let key = TaskKey(self.next_key + i as u64);
            let floor = floors.get(i).copied().unwrap_or_default();
            let mut placed = false;
            for &bin in &candidates {
                if !examined_set[bin] {
                    examined_set[bin] = true;
                    examined.push(bin);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                let Some(ods) =
                    bin_rta(&self.bins[bin], &overlay[bin], Some((key, spec)))
                else {
                    continue;
                };
                // The placement must respect every resident's applicable
                // OD bound: the caller's per-decision bound when given,
                // the resident's contracted floor otherwise.
                let respects = self.bins[bin]
                    .iter()
                    .chain(&overlay[bin])
                    .zip(&ods)
                    .all(|(e, &od)| od >= lookup(od_bounds, e.key).unwrap_or(e.min_od));
                if !respects {
                    continue;
                }
                // The candidate's OD is last in bin order; anchor its
                // floor there (re-anchored at commit to the batch-final
                // OD, which later batch-mates may have shrunk — under the
                // provisional, never-lower floor enforced here).
                let granted = ods.last().copied().unwrap_or(Span::ZERO);
                overlay[bin].push(Entry {
                    key,
                    spec: spec.clone(),
                    min_od: floor.floor_od(granted),
                });
                bin_util[bin] += spec.utilization();
                placements[i] = bin;
                granted_ods[i] = granted;
                placed = true;
                break;
            }
            if !placed {
                return Err(AdmissionError::Unschedulable { index: i });
            }
        }
        Ok(AdmissionPlan {
            base_key: self.next_key,
            placements,
            granted: granted_ods,
            order,
            examined,
        })
    }

    /// Applies a plan from [`AdmissionController::plan_admit_bounded`]:
    /// inserts the batch, mints the final keys, anchors floors at the
    /// batch-final ODs, and returns the [`Admission`] with the OD deltas
    /// for pre-existing residents of the touched threads.
    ///
    /// Keys are re-minted from the live counter, so a plan computed
    /// before an unrelated commit is still appliable; `tasks` and
    /// `floors` must be the slices the plan was computed from.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `plan` does not match `tasks`.
    pub fn commit_admission(
        &mut self,
        tasks: &[TaskSpec],
        floors: &[QosFloor],
        plan: &AdmissionPlan,
    ) -> Admission {
        debug_assert_eq!(plan.placements.len(), tasks.len(), "plan/batch mismatch");
        debug_assert!(self.next_key >= plan.base_key, "keys only grow");
        let base = self.next_key;
        let (old, new) = if self.full_rta {
            let old = self.snapshot_all();
            self.apply_plan(tasks, floors, plan, base);
            let new = self.snapshot_all();
            (old, new)
        } else {
            let mut touched: Vec<usize> = plan.placements.clone();
            touched.sort_unstable();
            touched.dedup();
            let mut old = Vec::new();
            for &b in &touched {
                let ods = self.cached_bin_ods(b);
                old.extend(self.bins[b].iter().map(|e| e.key).zip(ods));
            }
            self.apply_plan(tasks, floors, plan, base);
            let mut new = Vec::new();
            for &b in &touched {
                let ods = self.recompute_bin_ods(b);
                new.extend(self.bins[b].iter().map(|e| e.key).zip(ods));
            }
            (old, new)
        };

        let admitted: Vec<AdmittedTask> = (0..tasks.len())
            .map(|i| {
                let key = TaskKey(base + i as u64);
                AdmittedTask {
                    key,
                    hw_thread: HwThreadId(plan.placements[i] as u32),
                    optional_deadline: lookup(&new, key)
                        .expect("admitted task has an analyzed OD"),
                }
            })
            .collect();
        // Re-anchor each newcomer's floor to the OD it actually ends the
        // batch with (later batch-mates on the same thread may have shrunk
        // the placement-time OD the provisional floor used).
        for (i, a) in admitted.iter().enumerate() {
            let floor = floors.get(i).copied().unwrap_or_default();
            if let Some(e) = self.bins.iter_mut().flatten().find(|e| e.key == a.key) {
                e.min_od = floor.floor_od(a.optional_deadline);
            }
        }
        let od_updates = od_deltas(&old, &new);
        Admission {
            tasks: admitted,
            od_updates,
        }
    }

    /// Inserts the planned batch in placement order under keys minted
    /// from `base`, updating utilizations exactly as the monolithic path
    /// did (one `+=` per placement, in placement order) and invalidating
    /// the touched bins' OD caches.
    fn apply_plan(
        &mut self,
        tasks: &[TaskSpec],
        floors: &[QosFloor],
        plan: &AdmissionPlan,
        base: u64,
    ) {
        for &i in &plan.order {
            let bin = plan.placements[i];
            let floor = floors.get(i).copied().unwrap_or_default();
            self.bins[bin].push(Entry {
                key: TaskKey(base + i as u64),
                spec: tasks[i].clone(),
                min_od: floor.floor_od(plan.granted[i]),
            });
            self.bin_util[bin] += tasks[i].utilization();
            self.od_cache[bin] = None;
        }
        self.next_key = base + tasks.len() as u64;
    }

    /// Evicts `keys` (unknown keys are ignored) and returns the optional
    /// deadlines that grew for the remaining residents of the vacated
    /// threads.
    ///
    /// Implemented as [`AdmissionController::plan_evict`] followed by
    /// [`AdmissionController::commit_evict`]; callers who want to plan a
    /// depart-storm's touched bins concurrently use the split directly.
    pub fn evict(&mut self, keys: &[TaskKey]) -> Vec<OdUpdate> {
        let plan = self.plan_evict(keys);
        self.commit_evict(keys, &plan)
    }

    /// The bins an eviction of `keys` must re-analyze: every bin hosting
    /// one of the keys — plus, in full-RTA oracle mode, every non-empty
    /// bin (the monolithic cost profile recomputes everything).
    /// Ascending.
    pub fn evict_touched_bins(&self, keys: &[TaskKey]) -> Vec<usize> {
        (0..self.bins.len())
            .filter(|&b| {
                if self.full_rta {
                    !self.bins[b].is_empty()
                } else {
                    self.bins[b].iter().any(|e| keys.contains(&e.key))
                }
            })
            .collect()
    }

    /// Recomputes one touched bin's survivor optional deadlines without
    /// mutating the controller: the RMWP fixpoint over the bin's
    /// population minus `keys`. Read-only (`&self`), so a batch's
    /// touched bins can be planned concurrently on scoped threads.
    pub fn plan_evict_bin(&self, bin: usize, keys: &[TaskKey]) -> (usize, Vec<Span>) {
        let survivors: Vec<Entry> = self.bins[bin]
            .iter()
            .filter(|e| !keys.contains(&e.key))
            .cloned()
            .collect();
        let ods = if survivors.is_empty() {
            Vec::new()
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            bin_rta(&survivors, &[], None)
                .expect("resident bins were admitted incrementally")
        };
        (bin, ods)
    }

    /// Plans the eviction of `keys` sequentially:
    /// [`AdmissionController::plan_evict_bin`] over every touched bin.
    pub fn plan_evict(&self, keys: &[TaskKey]) -> EvictPlan {
        EvictPlan::assemble(
            self.evict_touched_bins(keys)
                .into_iter()
                .map(|b| self.plan_evict_bin(b, keys))
                .collect(),
        )
    }

    /// Applies a planned eviction: removes `keys`, installs the plan's
    /// survivor ODs (memoizing them in incremental mode), and returns
    /// the deltas against the pre-eviction ODs of the touched bins.
    ///
    /// `plan` must have been computed from the current controller state
    /// with the same `keys` (debug-asserted).
    pub fn commit_evict(&mut self, keys: &[TaskKey], plan: &EvictPlan) -> Vec<OdUpdate> {
        debug_assert_eq!(
            plan.touched_bins().collect::<Vec<_>>(),
            self.evict_touched_bins(keys),
            "eviction plan is stale"
        );
        let mut old = Vec::new();
        for &(b, _) in &plan.bins {
            let ods = if self.full_rta {
                self.misses.fetch_add(1, Ordering::Relaxed);
                bin_rta(&self.bins[b], &[], None)
                    .expect("resident bins were admitted incrementally")
            } else {
                self.cached_bin_ods(b)
            };
            old.extend(self.bins[b].iter().map(|e| e.key).zip(ods));
        }
        let mut new = Vec::new();
        for (b, ods) in &plan.bins {
            let before = self.bins[*b].len();
            self.bins[*b].retain(|e| !keys.contains(&e.key));
            if self.bins[*b].len() != before {
                self.bin_util[*b] = self.bins[*b].iter().map(|e| e.spec.utilization()).sum();
            }
            debug_assert_eq!(self.bins[*b].len(), ods.len(), "eviction plan is stale");
            if !self.full_rta {
                self.od_cache[*b] = Some(ods.clone());
            }
            new.extend(self.bins[*b].iter().map(|e| e.key).zip(ods.iter().copied()));
        }
        od_deltas(&old, &new)
    }

    /// Whether `tasks` would be admitted on an otherwise *empty* machine
    /// of the same geometry and heuristic. The serving layer uses this to
    /// type a rejection: a submission that fits nowhere even alone is
    /// permanently unschedulable, while one that fails only against the
    /// current residents may fit after departures (retryable).
    pub fn fits_empty(&self, tasks: &[TaskSpec]) -> bool {
        let mut probe = AdmissionController::new(self.bins.len(), self.heuristic);
        probe.try_admit(tasks).is_ok()
    }

    /// The analysis-maximal optional deadline of every resident under the
    /// current population, as `(key, od)` pairs in bin/admission order.
    pub fn resident_ods(&self) -> Vec<(TaskKey, Span)> {
        let mut out = Vec::with_capacity(self.resident_tasks());
        for (b, bin) in self.bins.iter().enumerate() {
            if bin.is_empty() {
                continue;
            }
            let ods = match (&self.od_cache[b], self.full_rta) {
                (Some(cached), false) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    cached.clone()
                }
                _ => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    bin_rta(bin, &[], None)
                        .expect("resident bins were admitted incrementally")
                }
            };
            out.extend(bin.iter().map(|e| e.key).zip(ods));
        }
        out
    }

    /// The contracted QoS floor (absolute minimum optional deadline) of
    /// resident `key`, or `None` for unknown/evicted keys.
    pub fn floor_of(&self, key: TaskKey) -> Option<Span> {
        self.bins
            .iter()
            .flatten()
            .find(|e| e.key == key)
            .map(|e| e.min_od)
    }

    /// Full `(key, od)` snapshot of every non-empty bin — the monolithic
    /// cost profile (one fixpoint per non-empty bin, nothing cached).
    fn snapshot_all(&self) -> Vec<(TaskKey, Span)> {
        let mut out = Vec::with_capacity(self.resident_tasks());
        for bin in self.bins.iter().filter(|b| !b.is_empty()) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let ods = bin_rta(bin, &[], None)
                .expect("resident bins were admitted incrementally");
            out.extend(bin.iter().map(|e| e.key).zip(ods));
        }
        out
    }

    /// Bin `b`'s analyzed ODs through the cache (read-through).
    fn cached_bin_ods(&mut self, b: usize) -> Vec<Span> {
        if let Some(ods) = &self.od_cache[b] {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ods.clone();
        }
        self.recompute_bin_ods(b)
    }

    /// Recomputes and re-memoizes bin `b`'s analyzed ODs.
    fn recompute_bin_ods(&mut self, b: usize) -> Vec<Span> {
        let ods = if self.bins[b].is_empty() {
            Vec::new()
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            bin_rta(&self.bins[b], &[], None)
                .expect("resident bins were admitted incrementally")
        };
        self.od_cache[b] = Some(ods.clone());
        ods
    }
}

/// RMWP-analyzes `residents ++ extra` (+ optional `candidate`) against
/// the *deployed* SCHED_FIFO levels ([`Priority::for_period`]): strictly
/// shorter-period buckets interfere from above, and tasks sharing a level
/// charge each other both ways, because the kernel FIFO cannot order
/// within a level under the arbitrary phasing online admission creates.
/// Returns the optional deadlines in member order (residents, then
/// extra, then the candidate last), or `None` if unschedulable.
fn bin_rta(
    residents: &[Entry],
    extra: &[Entry],
    candidate: Option<(TaskKey, &TaskSpec)>,
) -> Option<Vec<Span>> {
    let r = residents.len();
    let e = extra.len();
    let n = r + e + usize::from(candidate.is_some());
    if n == 0 {
        return Some(Vec::new());
    }
    // (period, key) sort: the candidate's key is larger than every
    // resident's, so ties put it last — matching its admission order once
    // committed.
    let mut idx: Vec<usize> = (0..n).collect();
    let spec_of = |i: usize| -> &TaskSpec {
        if i < r {
            &residents[i].spec
        } else if i < r + e {
            &extra[i - r].spec
        } else {
            candidate.expect("index beyond members implies candidate").1
        }
    };
    let key_of = |i: usize| -> TaskKey {
        if i < r {
            residents[i].key
        } else if i < r + e {
            extra[i - r].key
        } else {
            candidate.expect("index beyond members implies candidate").0
        }
    };
    idx.sort_by(|&a, &b| {
        spec_of(a)
            .period()
            .cmp(&spec_of(b).period())
            .then(key_of(a).cmp(&key_of(b)))
    });
    let specs: Vec<TaskSpec> = idx.iter().map(|&i| spec_of(i).clone()).collect();
    let levels: Vec<Priority> = specs.iter().map(|s| Priority::for_period(s.period())).collect();
    let sub = TaskSet::new(specs).expect("at least one task");
    let analysis = RmwpAnalysis::analyze_with_levels(&sub, &levels).ok()?;
    let mut ods = vec![Span::ZERO; n];
    for (local, &orig) in idx.iter().enumerate() {
        ods[orig] = analysis.optional_deadline(TaskId(local as u32));
    }
    Some(ods)
}

fn lookup(ods: &[(TaskKey, Span)], key: TaskKey) -> Option<Span> {
    ods.iter().find(|(k, _)| *k == key).map(|(_, od)| *od)
}

/// ODs present in both snapshots whose value changed.
fn od_deltas(old: &[(TaskKey, Span)], new: &[(TaskKey, Span)]) -> Vec<OdUpdate> {
    new.iter()
        .filter_map(|&(key, od)| match lookup(old, key) {
            Some(prev) if prev != od => Some(OdUpdate {
                key,
                optional_deadline: od,
            }),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::Span;

    fn task(name: &str, period_ms: u64, m_ms: u64, w_ms: u64) -> TaskSpec {
        let mut b = TaskSpec::builder(name);
        b.period(Span::from_millis(period_ms))
            .mandatory(Span::from_millis(m_ms))
            .windup(Span::from_millis(w_ms));
        b.build().unwrap()
    }

    /// Utilization 0.6 — at most one per thread.
    fn heavy(name: &str) -> TaskSpec {
        task(name, 100, 30, 30)
    }

    /// Every memoized bin OD must equal a fresh recomputation — the cache
    /// coherence invariant behind bit-identical decisions.
    fn assert_cache_coherent(ctl: &AdmissionController) {
        for (b, bin) in ctl.bins.iter().enumerate() {
            let Some(cached) = &ctl.od_cache[b] else {
                continue;
            };
            let fresh = if bin.is_empty() {
                Vec::new()
            } else {
                bin_rta(bin, &[], None).expect("resident bins are schedulable")
            };
            assert_eq!(cached, &fresh, "stale cache on bin {b}");
        }
    }

    #[test]
    fn fills_threads_then_rejects() {
        let mut ctl = AdmissionController::new(4, PartitionHeuristic::WorstFitDecreasing);
        for i in 0..4 {
            let a = ctl.try_admit(&[heavy(&format!("t{i}"))]).unwrap();
            assert_eq!(a.tasks.len(), 1);
            assert!(a.od_updates.is_empty(), "one heavy task per thread");
        }
        assert_eq!(ctl.resident_tasks(), 4);
        let err = ctl.try_admit(&[heavy("t4")]).unwrap_err();
        assert_eq!(err, AdmissionError::Unschedulable { index: 0 });
        // Rejection left no residue.
        assert_eq!(ctl.resident_tasks(), 4);
        assert!((ctl.total_utilization() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn eviction_frees_capacity_and_grows_ods() {
        let mut ctl = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        // Co-located: the low-priority task's OD shrinks vs running alone
        // (860 ms with interference, 900 ms alone — same numbers as the
        // partition tests).
        let a = ctl.try_admit(&[task("lo", 1000, 100, 100)]).unwrap();
        assert_eq!(a.tasks[0].optional_deadline, Span::from_millis(900));
        let b = ctl.try_admit(&[task("hi", 100, 10, 10)]).unwrap();
        assert_eq!(b.od_updates.len(), 1);
        assert_eq!(b.od_updates[0].key, a.tasks[0].key);
        assert_eq!(b.od_updates[0].optional_deadline, Span::from_millis(860));
        // Evicting the interferer restores the lone-task OD.
        let ups = ctl.evict(&[b.tasks[0].key]);
        assert_eq!(
            ups,
            vec![OdUpdate {
                key: a.tasks[0].key,
                optional_deadline: Span::from_millis(900)
            }]
        );
        assert_eq!(ctl.resident_tasks(), 1);
    }

    #[test]
    fn batch_is_all_or_nothing() {
        let mut ctl = AdmissionController::new(2, PartitionHeuristic::WorstFitDecreasing);
        ctl.try_admit(&[heavy("a")]).unwrap();
        // Batch of two heavies: only one thread is free, so the batch
        // must be rejected wholesale.
        let err = ctl.try_admit(&[heavy("b"), heavy("c")]).unwrap_err();
        assert!(matches!(err, AdmissionError::Unschedulable { .. }));
        assert_eq!(ctl.resident_tasks(), 1);
        // A single heavy still fits afterwards.
        assert!(ctl.try_admit(&[heavy("d")]).is_ok());
    }

    #[test]
    fn keys_are_never_reused() {
        let mut ctl = AdmissionController::new(2, PartitionHeuristic::FirstFitDecreasing);
        let a = ctl.try_admit(&[task("a", 100, 5, 5)]).unwrap();
        ctl.evict(&[a.tasks[0].key]);
        let b = ctl.try_admit(&[task("b", 100, 5, 5)]).unwrap();
        assert_ne!(a.tasks[0].key, b.tasks[0].key);
    }

    #[test]
    fn empty_submission_rejected() {
        let mut ctl = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        assert_eq!(
            ctl.try_admit(&[]).unwrap_err(),
            AdmissionError::EmptySubmission
        );
        assert!(ctl.try_admit(&[]).unwrap_err().to_string().contains("no tasks"));
    }

    #[test]
    fn evicting_unknown_key_is_a_noop() {
        let mut ctl = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        ctl.try_admit(&[task("a", 100, 5, 5)]).unwrap();
        assert!(ctl.evict(&[TaskKey(999)]).is_empty());
        assert_eq!(ctl.resident_tasks(), 1);
    }

    #[test]
    fn floors_constrain_later_admissions() {
        // Same numbers as `eviction_frees_capacity_and_grows_ods`: "hi"
        // next to "lo" shrinks lo's OD from 900 ms to 860 ms. A floor at
        // 0.99 · 900 ms = 891 ms forbids that shrink; 0.9 · 900 = 810 ms
        // allows it.
        let mut strict = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        strict
            .try_admit_bounded(&[task("lo", 1000, 100, 100)], &[QosFloor::fraction(0.99)], &[])
            .unwrap();
        let err = strict.try_admit(&[task("hi", 100, 10, 10)]).unwrap_err();
        assert!(matches!(err, AdmissionError::Unschedulable { index: 0 }));
        assert_eq!(strict.resident_tasks(), 1);

        let mut lax = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        let a = lax
            .try_admit_bounded(&[task("lo", 1000, 100, 100)], &[QosFloor::fraction(0.9)], &[])
            .unwrap();
        assert_eq!(lax.floor_of(a.tasks[0].key), Some(Span::from_millis(810)));
        assert!(lax.try_admit(&[task("hi", 100, 10, 10)]).is_ok());
    }

    #[test]
    fn od_bounds_tighten_one_decision_only() {
        let mut ctl = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        let a = ctl.try_admit(&[task("lo", 1000, 100, 100)]).unwrap();
        let key = a.tasks[0].key;
        // A per-decision bound above the post-admission OD (860 ms) blocks
        // the same newcomer a contracted zero-floor would admit…
        let hi = [task("hi", 100, 10, 10)];
        let err = ctl
            .try_admit_bounded(&hi, &[], &[(key, Span::from_millis(880))])
            .unwrap_err();
        assert!(matches!(err, AdmissionError::Unschedulable { .. }));
        // …and evaporates on the next call: the stored floor is still 0.
        assert!(ctl.try_admit(&hi).is_ok());
    }

    #[test]
    fn fits_empty_types_the_rejection() {
        let mut ctl = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        ctl.try_admit(&[task("resident", 100, 30, 30)]).unwrap();
        // Retryable: fails only against the resident.
        let contingent = [task("big", 100, 30, 30)];
        assert!(ctl.try_admit(&contingent).is_err());
        assert!(ctl.fits_empty(&contingent));
        // Permanent: the batch jointly over-utilizes even an empty
        // machine (1.2 total on one thread).
        let impossible = [task("h1", 100, 30, 30), task("h2", 100, 30, 30)];
        assert!(!ctl.fits_empty(&impossible));
        // Probing leaves the controller untouched.
        assert_eq!(ctl.resident_tasks(), 1);
    }

    #[test]
    fn agrees_with_offline_partition_on_rejection() {
        // Mirror of partition.rs's `overload_reported`: five 0.6-U tasks
        // on 4 threads fail identically through the incremental path.
        let mut ctl = AdmissionController::new(4, PartitionHeuristic::FirstFitDecreasing);
        let batch: Vec<TaskSpec> = (0..5).map(|i| heavy(&format!("t{i}"))).collect();
        assert!(ctl.try_admit(&batch).is_err());
        assert!(ctl.try_admit(&batch[..4]).is_ok());
    }

    // ----- incremental-RTA machinery -------------------------------------

    /// A varied little workload: batches of mixed periods/utilizations
    /// with floors, interleaved with evictions. Deterministic.
    fn churn_script(ctl: &mut AdmissionController) -> Vec<Vec<(TaskKey, Span)>> {
        let mut snapshots = Vec::new();
        let mut live: Vec<TaskKey> = Vec::new();
        for step in 0u64..24 {
            if step % 5 == 4 && !live.is_empty() {
                // Evict the oldest two live keys.
                let keys: Vec<TaskKey> = live.drain(..live.len().min(2)).collect();
                ctl.evict(&keys);
            } else {
                let p = [40u64, 100, 250, 1000][(step % 4) as usize];
                let m = 2 + (step % 7);
                let batch = [
                    task(&format!("a{step}"), p, m, 2),
                    task(&format!("b{step}"), p * 2, m + 1, 3),
                ];
                let floors = [
                    QosFloor::fraction(0.5),
                    QosFloor::none(),
                ];
                if let Ok(a) = ctl.try_admit_bounded(&batch, &floors, &[]) {
                    live.extend(a.tasks.iter().map(|t| t.key));
                }
            }
            snapshots.push(ctl.resident_ods());
        }
        snapshots
    }

    #[test]
    fn incremental_matches_full_rta_exactly() {
        // The same deterministic churn through both modes: every
        // decision, OD snapshot, utilization, and floor must agree
        // bit-for-bit, for every heuristic.
        for heuristic in [
            PartitionHeuristic::FirstFitDecreasing,
            PartitionHeuristic::BestFitDecreasing,
            PartitionHeuristic::WorstFitDecreasing,
        ] {
            let mut inc = AdmissionController::with_mode(3, heuristic, false);
            let mut full = AdmissionController::with_mode(3, heuristic, true);
            let snaps_inc = churn_script(&mut inc);
            let snaps_full = churn_script(&mut full);
            assert_eq!(snaps_inc, snaps_full, "{heuristic:?}");
            assert_eq!(inc.resident_tasks(), full.resident_tasks());
            assert_eq!(inc.total_utilization().to_bits(),
                full.total_utilization().to_bits(),
                "utilization must be bit-identical (heuristic sorts compare it)");
            assert_cache_coherent(&inc);
        }
    }

    #[test]
    fn cache_invalidates_on_admit_and_evict() {
        let mut ctl = AdmissionController::new(2, PartitionHeuristic::FirstFitDecreasing);
        let a = ctl.try_admit(&[task("lo", 1000, 100, 100)]).unwrap();
        assert_cache_coherent(&ctl);
        let before = ctl.cache_stats();
        // A second read of the same population is served from cache.
        let snap1 = ctl.resident_ods();
        let snap2 = ctl.resident_ods();
        assert_eq!(snap1, snap2);
        let after = ctl.cache_stats();
        assert!(after.hits > before.hits, "repeat reads hit the cache");
        // Admitting a neighbour invalidates and recomputes the bin.
        let b = ctl.try_admit(&[task("hi", 100, 10, 10)]).unwrap();
        assert_cache_coherent(&ctl);
        assert_eq!(
            lookup(&ctl.resident_ods(), a.tasks[0].key),
            Some(Span::from_millis(860)),
            "shrunk OD visible after invalidation"
        );
        // Evicting recomputes again.
        ctl.evict(&[b.tasks[0].key]);
        assert_cache_coherent(&ctl);
        assert_eq!(
            lookup(&ctl.resident_ods(), a.tasks[0].key),
            Some(Span::from_millis(900)),
            "grown OD visible after eviction"
        );
        assert!(ctl.cache_stats().hit_rate() > 0.0);
    }

    #[test]
    fn full_rta_mode_never_hits_the_cache() {
        let mut ctl = AdmissionController::with_mode(2, PartitionHeuristic::FirstFitDecreasing, true);
        ctl.try_admit(&[task("a", 100, 5, 5)]).unwrap();
        let _ = ctl.resident_ods();
        let _ = ctl.resident_ods();
        let s = ctl.cache_stats();
        assert_eq!(s.hits, 0, "full mode recomputes every read");
        assert!(s.misses > 0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn plan_then_commit_equals_try_admit() {
        // plan/commit through a *stale* base key must mint fresh keys and
        // still agree with the one-shot path on placements and ODs.
        let mut one_shot = AdmissionController::new(2, PartitionHeuristic::WorstFitDecreasing);
        let mut split = AdmissionController::new(2, PartitionHeuristic::WorstFitDecreasing);
        let batch = [task("x", 100, 10, 10), task("y", 250, 20, 10)];
        let floors = [QosFloor::fraction(0.8), QosFloor::none()];

        let a = one_shot.try_admit_bounded(&batch, &floors, &[]).unwrap();
        let plan = split.plan_admit_bounded(&batch, &floors, &[]).unwrap();
        assert!(!plan.examined_bins().is_empty());
        assert!(plan
            .placed_bins()
            .iter()
            .all(|b| plan.examined_bins().contains(b)));
        let b = split.commit_admission(&batch, &floors, &plan);
        assert_eq!(a, b);
        assert_eq!(
            one_shot.resident_ods(),
            split.resident_ods(),
            "identical controller state"
        );
        assert_cache_coherent(&split);
    }

    #[test]
    fn stale_plan_commits_under_fresh_keys() {
        // Plan before an unrelated commit; the re-minted keys must not
        // collide and the decision must equal a freshly planned one.
        let mut ctl = AdmissionController::new(2, PartitionHeuristic::WorstFitDecreasing);
        let batch_a = [task("a", 100, 10, 10)];
        let batch_b = [task("b", 100, 10, 10)];
        let plan_b = ctl.plan_admit_bounded(&batch_b, &[], &[]).unwrap();
        let a = ctl.try_admit(&batch_a).unwrap();
        let b = ctl.commit_admission(&batch_b, &[], &plan_b);
        assert_ne!(a.tasks[0].key, b.tasks[0].key, "keys stay unique");
        assert_eq!(ctl.resident_tasks(), 2);
        assert_cache_coherent(&ctl);
    }
}
