//! Incremental online admission control for P-RMWP serving.
//!
//! [`crate::partition`] answers the *offline* question — "does this whole
//! task set fit on this machine?" — in one shot. A serving middleware
//! (YASMIN-style, see PAPERS.md) instead faces a *stream* of tenant
//! submissions and departures and must answer each one against the tasks
//! already running. [`AdmissionController`] keeps the per-hardware-thread
//! bins alive between decisions and exposes admit/evict **deltas**:
//!
//! * [`AdmissionController::try_admit`] places a batch of tasks with the
//!   same decreasing-utilization bin-packing heuristics and the same exact
//!   RMWP response-time test as the offline partitioner — all-or-nothing,
//!   so a partially admissible tenant leaves no residue;
//! * [`AdmissionController::evict`] removes tasks and reports how the
//!   optional deadlines of the survivors *grow* (less interference);
//! * admitting returns [`OdUpdate`]s for pre-existing tasks whose optional
//!   deadlines *shrink* because a new neighbour landed on their thread.
//!
//! Within a bin, the analysis runs against the *deployed* RTQ levels
//! ([`rtseed_model::Priority::for_period`]): shorter-period buckets get
//! higher levels, and tasks that share a level — the mapping is
//! many-to-one — are charged with each other's interference both ways,
//! because SCHED_FIFO cannot order tasks within a level under the
//! arbitrary release phasing online admission creates. The admission test
//! therefore never assumes an ordering the kernel will not enforce.
//!
//! # Examples
//!
//! ```
//! use rtseed_analysis::{AdmissionController, PartitionHeuristic};
//! use rtseed_model::{Span, TaskSpec};
//!
//! let task = TaskSpec::builder("t")
//!     .period(Span::from_millis(100))
//!     .mandatory(Span::from_millis(30))
//!     .windup(Span::from_millis(30))
//!     .build()?;
//! // Two hardware threads: two 0.6-utilization tasks fit, a third cannot.
//! let mut ctl = AdmissionController::new(2, PartitionHeuristic::WorstFitDecreasing);
//! let a = ctl.try_admit(std::slice::from_ref(&task))?;
//! let b = ctl.try_admit(std::slice::from_ref(&task))?;
//! assert!(ctl.try_admit(std::slice::from_ref(&task)).is_err());
//! // Evicting the first frees its thread for a newcomer.
//! ctl.evict(&[a.tasks[0].key]);
//! assert!(ctl.try_admit(std::slice::from_ref(&task)).is_ok());
//! # drop(b);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use core::fmt;

use rtseed_model::{HwThreadId, Priority, QosFloor, Span, TaskId, TaskSet, TaskSpec};
use serde::{Deserialize, Serialize};

use crate::partition::PartitionHeuristic;
use crate::rmwp::RmwpAnalysis;

/// Opaque handle to one task admitted by an [`AdmissionController`].
///
/// Keys are assigned monotonically and never reused, so a stale key from
/// an evicted task can never alias a live one.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TaskKey(pub u64);

impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// One admitted task: where it was bound and the optional deadline the
/// per-thread RMWP analysis granted it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmittedTask {
    /// Handle for later eviction.
    pub key: TaskKey,
    /// Hardware thread the mandatory/wind-up parts are pinned to.
    pub hw_thread: HwThreadId,
    /// Relative optional deadline under the thread's current population.
    pub optional_deadline: Span,
}

/// A changed optional deadline for a task that was *already* admitted:
/// admission shrinks neighbours' ODs, eviction grows them. The serving
/// layer forwards these to the running engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OdUpdate {
    /// The affected pre-existing task.
    pub key: TaskKey,
    /// Its new relative optional deadline.
    pub optional_deadline: Span,
}

/// Result of a successful [`AdmissionController::try_admit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission {
    /// Placements for the submitted tasks, in submission order.
    pub tasks: Vec<AdmittedTask>,
    /// New optional deadlines for pre-existing tasks on the touched
    /// threads (only entries whose OD actually changed).
    pub od_updates: Vec<OdUpdate>,
}

/// Error from [`AdmissionController::try_admit`]. The controller's state
/// is unchanged on error (all-or-nothing admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The `index`-th submitted task could not be admitted on any
    /// hardware thread without breaking RMWP schedulability.
    Unschedulable {
        /// Index into the submitted slice.
        index: usize,
    },
    /// The submission was empty.
    EmptySubmission,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Unschedulable { index } => write!(
                f,
                "submitted task #{index} is not RMWP-schedulable on any hardware thread"
            ),
            AdmissionError::EmptySubmission => write!(f, "submission contains no tasks"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One resident task: its stable key and spec, in admission order, plus
/// the absolute QoS floor its tenant contracted at admission (the lowest
/// optional deadline any later decision may impose on it).
#[derive(Debug, Clone)]
struct Entry {
    key: TaskKey,
    spec: TaskSpec,
    min_od: Span,
}

/// Online admission controller: the per-hardware-thread bins of the
/// offline [`crate::Partition`], kept alive between decisions.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    bins: Vec<Vec<Entry>>,
    bin_util: Vec<f64>,
    heuristic: PartitionHeuristic,
    next_key: u64,
}

impl AdmissionController {
    /// Creates an empty controller for a machine with `hw_threads`
    /// hardware threads, placing with `heuristic`.
    ///
    /// # Panics
    ///
    /// Panics if `hw_threads` is zero.
    pub fn new(hw_threads: usize, heuristic: PartitionHeuristic) -> AdmissionController {
        assert!(hw_threads > 0, "need at least one hardware thread");
        AdmissionController {
            bins: vec![Vec::new(); hw_threads],
            bin_util: vec![0.0; hw_threads],
            heuristic,
            next_key: 0,
        }
    }

    /// Number of hardware threads the controller packs onto.
    #[inline]
    pub fn hw_threads(&self) -> usize {
        self.bins.len()
    }

    /// Number of currently resident tasks.
    pub fn resident_tasks(&self) -> usize {
        self.bins.iter().map(Vec::len).sum()
    }

    /// Total utilization of resident tasks (sum over threads).
    pub fn total_utilization(&self) -> f64 {
        self.bin_util.iter().sum()
    }

    /// Utilization currently packed onto `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    #[inline]
    pub fn thread_utilization(&self, thread: HwThreadId) -> f64 {
        self.bin_util[thread.index()]
    }

    /// Tries to admit `tasks` as one atomic batch.
    ///
    /// Tasks are placed in decreasing-utilization order (ties by
    /// submission index); each placement runs the exact RMWP
    /// response-time test on the candidate thread's population plus the
    /// newcomer. If *any* task fails on every thread the whole batch is
    /// rejected and the controller is left exactly as before.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Unschedulable`] naming the first task that fits
    /// nowhere, or [`AdmissionError::EmptySubmission`].
    pub fn try_admit(&mut self, tasks: &[TaskSpec]) -> Result<Admission, AdmissionError> {
        self.try_admit_bounded(tasks, &[], &[])
    }

    /// [`AdmissionController::try_admit`] with explicit QoS constraints —
    /// the serving layer's shedding-ladder entry point.
    ///
    /// `floors` gives the submitted tasks' QoS floors in submission order
    /// (missing entries default to [`QosFloor::none`]); each admitted
    /// task's absolute floor is anchored at the optional deadline it is
    /// granted here and enforced against every later decision. `od_bounds`
    /// tightens, for this decision only, the lowest new optional deadline
    /// the placement may impose on specific residents (bounds for unknown
    /// keys are ignored; residents without a bound keep their contracted
    /// floor). A placement that would push any resident below its
    /// applicable bound is treated as infeasible, exactly like an RTA
    /// failure.
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::try_admit`]; a submission that fails only
    /// because of floors/bounds reports the same
    /// [`AdmissionError::Unschedulable`].
    pub fn try_admit_bounded(
        &mut self,
        tasks: &[TaskSpec],
        floors: &[QosFloor],
        od_bounds: &[(TaskKey, Span)],
    ) -> Result<Admission, AdmissionError> {
        if tasks.is_empty() {
            return Err(AdmissionError::EmptySubmission);
        }
        let m = self.bins.len();

        // Tentative state: committed only if every task places.
        let mut bins = self.bins.clone();
        let mut bin_util = self.bin_util.clone();

        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by(|&a, &b| {
            let ua = tasks[a].utilization();
            let ub = tasks[b].utilization();
            ub.partial_cmp(&ua)
                .expect("utilizations are finite")
                .then(a.cmp(&b))
        });

        let mut placement = vec![HwThreadId(0); tasks.len()];
        for &i in &order {
            let spec = &tasks[i];
            let mut candidates: Vec<usize> = (0..m).collect();
            match self.heuristic {
                PartitionHeuristic::FirstFitDecreasing => {}
                PartitionHeuristic::BestFitDecreasing => {
                    candidates.sort_by(|&a, &b| {
                        bin_util[b]
                            .partial_cmp(&bin_util[a])
                            .expect("finite utilization")
                            .then(a.cmp(&b))
                    });
                }
                PartitionHeuristic::WorstFitDecreasing => {
                    candidates.sort_by(|&a, &b| {
                        bin_util[a]
                            .partial_cmp(&bin_util[b])
                            .expect("finite utilization")
                            .then(a.cmp(&b))
                    });
                }
            }

            let key = TaskKey(self.next_key + i as u64);
            let floor = floors.get(i).copied().unwrap_or_default();
            let mut placed = false;
            for &bin in &candidates {
                let Some(ods) = bin_schedulable(&bins[bin], Some((key, spec))) else {
                    continue;
                };
                // The placement must respect every resident's applicable
                // OD bound: the caller's per-decision bound when given,
                // the resident's contracted floor otherwise.
                let respects = bins[bin].iter().zip(&ods).all(|(e, &od)| {
                    od >= lookup(od_bounds, e.key).unwrap_or(e.min_od)
                });
                if !respects {
                    continue;
                }
                // The candidate's OD is last in bin order; anchor its
                // floor there (re-anchored at commit to the batch-final
                // OD, which later batch-mates may have shrunk — under the
                // provisional, never-lower floor enforced above).
                let granted = ods.last().copied().unwrap_or(Span::ZERO);
                bins[bin].push(Entry {
                    key,
                    spec: spec.clone(),
                    min_od: floor.floor_od(granted),
                });
                bin_util[bin] += spec.utilization();
                placement[i] = HwThreadId(bin as u32);
                placed = true;
                break;
            }
            if !placed {
                return Err(AdmissionError::Unschedulable { index: i });
            }
        }

        // Commit and extract deltas: new ODs for the admitted tasks, OD
        // updates for pre-existing residents on touched threads.
        let old_ods = self.current_ods();
        self.bins = bins;
        self.bin_util = bin_util;
        self.next_key += tasks.len() as u64;

        let new_ods = self.current_ods();
        let admitted: Vec<AdmittedTask> = (0..tasks.len())
            .map(|i| {
                let key = TaskKey(self.next_key - tasks.len() as u64 + i as u64);
                AdmittedTask {
                    key,
                    hw_thread: placement[i],
                    optional_deadline: lookup(&new_ods, key)
                        .expect("admitted task has an analyzed OD"),
                }
            })
            .collect();
        // Re-anchor each newcomer's floor to the OD it actually ends the
        // batch with (later batch-mates on the same thread may have shrunk
        // the placement-time OD the provisional floor used).
        for (i, a) in admitted.iter().enumerate() {
            let floor = floors.get(i).copied().unwrap_or_default();
            if let Some(e) = self
                .bins
                .iter_mut()
                .flatten()
                .find(|e| e.key == a.key)
            {
                e.min_od = floor.floor_od(a.optional_deadline);
            }
        }
        let od_updates = od_deltas(&old_ods, &new_ods);
        Ok(Admission {
            tasks: admitted,
            od_updates,
        })
    }

    /// Evicts `keys` (unknown keys are ignored) and returns the optional
    /// deadlines that grew for the remaining residents of the vacated
    /// threads.
    pub fn evict(&mut self, keys: &[TaskKey]) -> Vec<OdUpdate> {
        let old_ods = self.current_ods();
        for bin in 0..self.bins.len() {
            let before = self.bins[bin].len();
            self.bins[bin].retain(|e| !keys.contains(&e.key));
            if self.bins[bin].len() != before {
                self.bin_util[bin] = self.bins[bin]
                    .iter()
                    .map(|e| e.spec.utilization())
                    .sum();
            }
        }
        let new_ods = self.current_ods();
        od_deltas(&old_ods, &new_ods)
    }

    /// Whether `tasks` would be admitted on an otherwise *empty* machine
    /// of the same geometry and heuristic. The serving layer uses this to
    /// type a rejection: a submission that fits nowhere even alone is
    /// permanently unschedulable, while one that fails only against the
    /// current residents may fit after departures (retryable).
    pub fn fits_empty(&self, tasks: &[TaskSpec]) -> bool {
        let mut probe = AdmissionController::new(self.bins.len(), self.heuristic);
        probe.try_admit(tasks).is_ok()
    }

    /// The analysis-maximal optional deadline of every resident under the
    /// current population, as `(key, od)` pairs in bin/admission order.
    pub fn resident_ods(&self) -> Vec<(TaskKey, Span)> {
        self.current_ods()
    }

    /// The contracted QoS floor (absolute minimum optional deadline) of
    /// resident `key`, or `None` for unknown/evicted keys.
    pub fn floor_of(&self, key: TaskKey) -> Option<Span> {
        self.bins
            .iter()
            .flatten()
            .find(|e| e.key == key)
            .map(|e| e.min_od)
    }

    /// Per-resident optional deadlines under the current population, as
    /// `(key, od)` pairs in bin/admission order.
    fn current_ods(&self) -> Vec<(TaskKey, Span)> {
        let mut out = Vec::with_capacity(self.resident_tasks());
        for bin in self.bins.iter().filter(|b| !b.is_empty()) {
            let ods = bin_schedulable(bin, None)
                .expect("resident bins were admitted incrementally");
            out.extend(bin.iter().map(|e| e.key).zip(ods));
        }
        out
    }
}

/// RMWP-analyzes `bin` (+ optional `candidate`) against the *deployed*
/// SCHED_FIFO levels ([`Priority::for_period`]): strictly shorter-period
/// buckets interfere from above, and tasks sharing a level charge each
/// other both ways, because the kernel FIFO cannot order within a level
/// under the arbitrary phasing online admission creates. Returns the
/// optional deadlines in `bin` member order (candidate's OD last, if
/// present), or `None` if unschedulable.
fn bin_schedulable(
    bin: &[Entry],
    candidate: Option<(TaskKey, &TaskSpec)>,
) -> Option<Vec<Span>> {
    let n = bin.len() + usize::from(candidate.is_some());
    // (period, key) sort: the candidate's key is larger than every
    // resident's, so ties put it last — matching its admission order once
    // committed.
    let mut idx: Vec<usize> = (0..n).collect();
    let spec_of = |i: usize| -> &TaskSpec {
        if i < bin.len() {
            &bin[i].spec
        } else {
            candidate.expect("index beyond bin implies candidate").1
        }
    };
    let key_of = |i: usize| -> TaskKey {
        if i < bin.len() {
            bin[i].key
        } else {
            candidate.expect("index beyond bin implies candidate").0
        }
    };
    idx.sort_by(|&a, &b| {
        spec_of(a)
            .period()
            .cmp(&spec_of(b).period())
            .then(key_of(a).cmp(&key_of(b)))
    });
    let specs: Vec<TaskSpec> = idx.iter().map(|&i| spec_of(i).clone()).collect();
    let levels: Vec<Priority> = specs.iter().map(|s| Priority::for_period(s.period())).collect();
    let sub = TaskSet::new(specs).expect("at least one task");
    let analysis = RmwpAnalysis::analyze_with_levels(&sub, &levels).ok()?;
    let mut ods = vec![Span::ZERO; n];
    for (local, &orig) in idx.iter().enumerate() {
        ods[orig] = analysis.optional_deadline(TaskId(local as u32));
    }
    ods.truncate(bin.len() + usize::from(candidate.is_some()));
    Some(ods)
}

fn lookup(ods: &[(TaskKey, Span)], key: TaskKey) -> Option<Span> {
    ods.iter().find(|(k, _)| *k == key).map(|(_, od)| *od)
}

/// ODs present in both snapshots whose value changed.
fn od_deltas(old: &[(TaskKey, Span)], new: &[(TaskKey, Span)]) -> Vec<OdUpdate> {
    new.iter()
        .filter_map(|&(key, od)| match lookup(old, key) {
            Some(prev) if prev != od => Some(OdUpdate {
                key,
                optional_deadline: od,
            }),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::Span;

    fn task(name: &str, period_ms: u64, m_ms: u64, w_ms: u64) -> TaskSpec {
        let mut b = TaskSpec::builder(name);
        b.period(Span::from_millis(period_ms))
            .mandatory(Span::from_millis(m_ms))
            .windup(Span::from_millis(w_ms));
        b.build().unwrap()
    }

    /// Utilization 0.6 — at most one per thread.
    fn heavy(name: &str) -> TaskSpec {
        task(name, 100, 30, 30)
    }

    #[test]
    fn fills_threads_then_rejects() {
        let mut ctl = AdmissionController::new(4, PartitionHeuristic::WorstFitDecreasing);
        for i in 0..4 {
            let a = ctl.try_admit(&[heavy(&format!("t{i}"))]).unwrap();
            assert_eq!(a.tasks.len(), 1);
            assert!(a.od_updates.is_empty(), "one heavy task per thread");
        }
        assert_eq!(ctl.resident_tasks(), 4);
        let err = ctl.try_admit(&[heavy("t4")]).unwrap_err();
        assert_eq!(err, AdmissionError::Unschedulable { index: 0 });
        // Rejection left no residue.
        assert_eq!(ctl.resident_tasks(), 4);
        assert!((ctl.total_utilization() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn eviction_frees_capacity_and_grows_ods() {
        let mut ctl = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        // Co-located: the low-priority task's OD shrinks vs running alone
        // (860 ms with interference, 900 ms alone — same numbers as the
        // partition tests).
        let a = ctl.try_admit(&[task("lo", 1000, 100, 100)]).unwrap();
        assert_eq!(a.tasks[0].optional_deadline, Span::from_millis(900));
        let b = ctl.try_admit(&[task("hi", 100, 10, 10)]).unwrap();
        assert_eq!(b.od_updates.len(), 1);
        assert_eq!(b.od_updates[0].key, a.tasks[0].key);
        assert_eq!(b.od_updates[0].optional_deadline, Span::from_millis(860));
        // Evicting the interferer restores the lone-task OD.
        let ups = ctl.evict(&[b.tasks[0].key]);
        assert_eq!(
            ups,
            vec![OdUpdate {
                key: a.tasks[0].key,
                optional_deadline: Span::from_millis(900)
            }]
        );
        assert_eq!(ctl.resident_tasks(), 1);
    }

    #[test]
    fn batch_is_all_or_nothing() {
        let mut ctl = AdmissionController::new(2, PartitionHeuristic::WorstFitDecreasing);
        ctl.try_admit(&[heavy("a")]).unwrap();
        // Batch of two heavies: only one thread is free, so the batch
        // must be rejected wholesale.
        let err = ctl.try_admit(&[heavy("b"), heavy("c")]).unwrap_err();
        assert!(matches!(err, AdmissionError::Unschedulable { .. }));
        assert_eq!(ctl.resident_tasks(), 1);
        // A single heavy still fits afterwards.
        assert!(ctl.try_admit(&[heavy("d")]).is_ok());
    }

    #[test]
    fn keys_are_never_reused() {
        let mut ctl = AdmissionController::new(2, PartitionHeuristic::FirstFitDecreasing);
        let a = ctl.try_admit(&[task("a", 100, 5, 5)]).unwrap();
        ctl.evict(&[a.tasks[0].key]);
        let b = ctl.try_admit(&[task("b", 100, 5, 5)]).unwrap();
        assert_ne!(a.tasks[0].key, b.tasks[0].key);
    }

    #[test]
    fn empty_submission_rejected() {
        let mut ctl = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        assert_eq!(
            ctl.try_admit(&[]).unwrap_err(),
            AdmissionError::EmptySubmission
        );
        assert!(ctl.try_admit(&[]).unwrap_err().to_string().contains("no tasks"));
    }

    #[test]
    fn evicting_unknown_key_is_a_noop() {
        let mut ctl = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        ctl.try_admit(&[task("a", 100, 5, 5)]).unwrap();
        assert!(ctl.evict(&[TaskKey(999)]).is_empty());
        assert_eq!(ctl.resident_tasks(), 1);
    }

    #[test]
    fn floors_constrain_later_admissions() {
        // Same numbers as `eviction_frees_capacity_and_grows_ods`: "hi"
        // next to "lo" shrinks lo's OD from 900 ms to 860 ms. A floor at
        // 0.99 · 900 ms = 891 ms forbids that shrink; 0.9 · 900 = 810 ms
        // allows it.
        let mut strict = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        strict
            .try_admit_bounded(&[task("lo", 1000, 100, 100)], &[QosFloor::fraction(0.99)], &[])
            .unwrap();
        let err = strict.try_admit(&[task("hi", 100, 10, 10)]).unwrap_err();
        assert!(matches!(err, AdmissionError::Unschedulable { index: 0 }));
        assert_eq!(strict.resident_tasks(), 1);

        let mut lax = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        let a = lax
            .try_admit_bounded(&[task("lo", 1000, 100, 100)], &[QosFloor::fraction(0.9)], &[])
            .unwrap();
        assert_eq!(lax.floor_of(a.tasks[0].key), Some(Span::from_millis(810)));
        assert!(lax.try_admit(&[task("hi", 100, 10, 10)]).is_ok());
    }

    #[test]
    fn od_bounds_tighten_one_decision_only() {
        let mut ctl = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        let a = ctl.try_admit(&[task("lo", 1000, 100, 100)]).unwrap();
        let key = a.tasks[0].key;
        // A per-decision bound above the post-admission OD (860 ms) blocks
        // the same newcomer a contracted zero-floor would admit…
        let hi = [task("hi", 100, 10, 10)];
        let err = ctl
            .try_admit_bounded(&hi, &[], &[(key, Span::from_millis(880))])
            .unwrap_err();
        assert!(matches!(err, AdmissionError::Unschedulable { .. }));
        // …and evaporates on the next call: the stored floor is still 0.
        assert!(ctl.try_admit(&hi).is_ok());
    }

    #[test]
    fn fits_empty_types_the_rejection() {
        let mut ctl = AdmissionController::new(1, PartitionHeuristic::FirstFitDecreasing);
        ctl.try_admit(&[task("resident", 100, 30, 30)]).unwrap();
        // Retryable: fails only against the resident.
        let contingent = [task("big", 100, 30, 30)];
        assert!(ctl.try_admit(&contingent).is_err());
        assert!(ctl.fits_empty(&contingent));
        // Permanent: the batch jointly over-utilizes even an empty
        // machine (1.2 total on one thread).
        let impossible = [task("h1", 100, 30, 30), task("h2", 100, 30, 30)];
        assert!(!ctl.fits_empty(&impossible));
        // Probing leaves the controller untouched.
        assert_eq!(ctl.resident_tasks(), 1);
    }

    #[test]
    fn agrees_with_offline_partition_on_rejection() {
        // Mirror of partition.rs's `overload_reported`: five 0.6-U tasks
        // on 4 threads fail identically through the incremental path.
        let mut ctl = AdmissionController::new(4, PartitionHeuristic::FirstFitDecreasing);
        let batch: Vec<TaskSpec> = (0..5).map(|i| heavy(&format!("t{i}"))).collect();
        assert!(ctl.try_admit(&batch).is_err());
        assert!(ctl.try_admit(&batch[..4]).is_ok());
    }
}
