//! Semi-fixed-priority analysis for the **practical imprecise computation
//! model** (multiple mandatory parts) — the paper's future work (§VII),
//! reconstructed along the same lines as the RMWP analysis in
//! [`crate::rmwp`]:
//!
//! * every mandatory part of every task runs at the task's (RM) fixed
//!   priority; optional parts never interfere with mandatory parts
//!   (the multi-stage analogue of the paper's Theorem 1);
//! * stage *j*'s optional deadline `OD_j` is the latest point at which
//!   the *remaining* mandatory demand `Σ_{i>j} m_i` still provably
//!   finishes by the deadline:
//!   `OD_j = D − R(Σ_{i>j} m_i)` with the standard RTA fixpoint over
//!   higher-priority tasks' total mandatory demand;
//! * the set is schedulable iff for every task and stage,
//!   `R(Σ_{i≤j} m_i) ≤ OD_j` — the prefix provably completes before the
//!   point where its successor must start.
//!
//! For two-stage tasks this reduces exactly to the RMWP analysis (see the
//! cross-check test).

use core::fmt;

use rtseed_model::practical::PracticalTaskSpec;
use rtseed_model::{Span, TaskId};
use serde::{Deserialize, Serialize};

use crate::rta::{response_time, Interferer, RtaError};

/// A set of practical imprecise tasks (one processor's partition).
#[derive(Debug, Clone, PartialEq)]
pub struct PracticalTaskSet {
    tasks: Vec<PracticalTaskSpec>,
}

impl PracticalTaskSet {
    /// Creates a set.
    ///
    /// # Errors
    ///
    /// Returns [`PracticalError::Empty`] if `tasks` is empty.
    pub fn new(tasks: Vec<PracticalTaskSpec>) -> Result<PracticalTaskSet, PracticalError> {
        if tasks.is_empty() {
            return Err(PracticalError::Empty);
        }
        Ok(PracticalTaskSet { tasks })
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always `false` for a constructed set.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn task(&self, id: TaskId) -> &PracticalTaskSpec {
        &self.tasks[id.index()]
    }

    /// Ids in Rate Monotonic order.
    pub fn rm_order(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = (0..self.tasks.len() as u32).map(TaskId).collect();
        ids.sort_by_key(|id| (self.tasks[id.index()].period(), id.0));
        ids
    }
}

/// Per-task, per-stage optional deadlines for a practical task set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PracticalAnalysis {
    // optional_deadline[task][stage]: termination point of stage's
    // optional parts (last stage's entry equals the deadline).
    optional_deadline: Vec<Vec<Span>>,
    prefix_response: Vec<Vec<Span>>,
}

impl PracticalAnalysis {
    /// Analyzes `set` under multi-stage semi-fixed-priority scheduling on
    /// one processor.
    ///
    /// # Errors
    ///
    /// [`PracticalError::Unschedulable`] naming the first failing task and
    /// stage.
    pub fn analyze(set: &PracticalTaskSet) -> Result<PracticalAnalysis, PracticalError> {
        let order = set.rm_order();
        let n = set.len();
        let mut optional_deadline = vec![Vec::new(); n];
        let mut prefix_response = vec![Vec::new(); n];

        for (rank, &id) in order.iter().enumerate() {
            let spec = set.task(id);
            let hp: Vec<Interferer> = order[..rank]
                .iter()
                .map(|&j| {
                    let s = set.task(j);
                    Interferer {
                        period: s.period(),
                        demand: s.total_mandatory(),
                    }
                })
                .collect();

            let stages = spec.stages().len();
            let mut ods = Vec::with_capacity(stages);
            let mut prefixes = Vec::with_capacity(stages);
            for j in 0..stages {
                let remaining = spec.remaining_mandatory_after(j);
                let od = if remaining.is_zero() {
                    spec.deadline()
                } else {
                    let r_rem = response_time(remaining, &hp, spec.deadline()).map_err(
                        |source| PracticalError::Unschedulable {
                            task: id,
                            stage: j,
                            source,
                        },
                    )?;
                    spec.deadline() - r_rem
                };
                let prefix = spec.mandatory_through(j);
                let r_prefix =
                    response_time(prefix, &hp, od).map_err(|source| {
                        PracticalError::Unschedulable {
                            task: id,
                            stage: j,
                            source,
                        }
                    })?;
                ods.push(od);
                prefixes.push(r_prefix);
            }
            optional_deadline[id.index()] = ods;
            prefix_response[id.index()] = prefixes;
        }

        Ok(PracticalAnalysis {
            optional_deadline,
            prefix_response,
        })
    }

    /// The optional deadline of `task`'s stage `stage` (relative to
    /// release). The last stage's value equals the task deadline.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn optional_deadline(&self, task: TaskId, stage: usize) -> Span {
        self.optional_deadline[task.index()][stage]
    }

    /// Worst-case response time of the mandatory prefix through `stage`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn prefix_response(&self, task: TaskId, stage: usize) -> Span {
        self.prefix_response[task.index()][stage]
    }
}

/// Errors from practical-model analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PracticalError {
    /// The set contained no tasks.
    Empty,
    /// A stage's mandatory chain misses its bound.
    Unschedulable {
        /// The failing task.
        task: TaskId,
        /// The failing stage index.
        stage: usize,
        /// Underlying RTA failure.
        source: RtaError,
    },
}

impl fmt::Display for PracticalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PracticalError::Empty => write!(f, "practical task set is empty"),
            PracticalError::Unschedulable { task, stage, .. } => {
                write!(f, "task {task} stage {stage} is unschedulable")
            }
        }
    }
}

impl std::error::Error for PracticalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PracticalError::Empty => None,
            PracticalError::Unschedulable { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmwp::RmwpAnalysis;
    use rtseed_model::practical::Stage;
    use rtseed_model::TaskSet;

    fn ms(v: u64) -> Span {
        Span::from_millis(v)
    }

    fn two_stage(period: u64, m: u64, w: u64) -> PracticalTaskSpec {
        PracticalTaskSpec::new(
            format!("p{period}"),
            ms(period),
            vec![
                Stage::new(ms(m), vec![ms(period)]).unwrap(),
                Stage::new(ms(w), vec![]).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_two_stage_matches_rmwp() {
        // The paper's evaluation task expressed as a practical task.
        let pset = PracticalTaskSet::new(vec![two_stage(1000, 250, 250)]).unwrap();
        let pa = PracticalAnalysis::analyze(&pset).unwrap();
        assert_eq!(pa.optional_deadline(TaskId(0), 0), ms(750));
        assert_eq!(pa.optional_deadline(TaskId(0), 1), ms(1000));
        assert_eq!(pa.prefix_response(TaskId(0), 0), ms(250));
    }

    #[test]
    fn cross_check_with_rmwp_under_interference() {
        // Two co-located tasks: the practical analysis of two-stage tasks
        // must agree with the RMWP analysis of the equivalent extended
        // tasks.
        let p1 = two_stage(100, 10, 10);
        let p2 = two_stage(1000, 100, 100);
        let pset = PracticalTaskSet::new(vec![p1.clone(), p2.clone()]).unwrap();
        let pa = PracticalAnalysis::analyze(&pset).unwrap();

        let eset = TaskSet::new(vec![
            p1.to_extended().unwrap(),
            p2.to_extended().unwrap(),
        ])
        .unwrap();
        let ra = RmwpAnalysis::analyze(&eset).unwrap();

        for id in [TaskId(0), TaskId(1)] {
            assert_eq!(
                pa.optional_deadline(id, 0),
                ra.optional_deadline(id),
                "{id}"
            );
        }
    }

    #[test]
    fn three_stage_ods_are_monotone() {
        let t = PracticalTaskSpec::new(
            "multi",
            ms(1000),
            vec![
                Stage::new(ms(100), vec![ms(500)]).unwrap(),
                Stage::new(ms(150), vec![ms(500)]).unwrap(),
                Stage::new(ms(50), vec![]).unwrap(),
            ],
        )
        .unwrap();
        let pset = PracticalTaskSet::new(vec![t]).unwrap();
        let pa = PracticalAnalysis::analyze(&pset).unwrap();
        // OD_0 = 1000 − (150 + 50) = 800; OD_1 = 1000 − 50 = 950;
        // OD_2 = deadline.
        assert_eq!(pa.optional_deadline(TaskId(0), 0), ms(800));
        assert_eq!(pa.optional_deadline(TaskId(0), 1), ms(950));
        assert_eq!(pa.optional_deadline(TaskId(0), 2), ms(1000));
        // Prefix responses are monotone and within their ODs.
        assert!(pa.prefix_response(TaskId(0), 0) <= pa.optional_deadline(TaskId(0), 0));
        assert!(pa.prefix_response(TaskId(0), 1) <= pa.optional_deadline(TaskId(0), 1));
        assert!(
            pa.prefix_response(TaskId(0), 0) < pa.prefix_response(TaskId(0), 1)
        );
    }

    #[test]
    fn interference_shrinks_every_stage_od() {
        let hi = two_stage(100, 10, 10);
        let multi = PracticalTaskSpec::new(
            "multi",
            ms(1000),
            vec![
                Stage::new(ms(100), vec![ms(100)]).unwrap(),
                Stage::new(ms(100), vec![ms(100)]).unwrap(),
                Stage::new(ms(100), vec![]).unwrap(),
            ],
        )
        .unwrap();
        let alone =
            PracticalAnalysis::analyze(&PracticalTaskSet::new(vec![multi.clone()]).unwrap())
                .unwrap();
        let shared = PracticalAnalysis::analyze(
            &PracticalTaskSet::new(vec![hi, multi]).unwrap(),
        )
        .unwrap();
        for stage in 0..2 {
            assert!(
                shared.optional_deadline(TaskId(1), stage)
                    < alone.optional_deadline(TaskId(0), stage),
                "stage {stage}"
            );
        }
    }

    #[test]
    fn unschedulable_stage_reported() {
        // Saturating high-priority task leaves no room for a 3-stage task.
        let hi = two_stage(10, 5, 4);
        let multi = PracticalTaskSpec::new(
            "multi",
            ms(100),
            vec![
                Stage::new(ms(20), vec![]).unwrap(),
                Stage::new(ms(20), vec![]).unwrap(),
                Stage::new(ms(20), vec![]).unwrap(),
            ],
        )
        .unwrap();
        let err = PracticalAnalysis::analyze(
            &PracticalTaskSet::new(vec![hi, multi]).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, PracticalError::Unschedulable { task: TaskId(1), .. }));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("unschedulable"));
    }

    #[test]
    fn empty_set_rejected() {
        assert_eq!(
            PracticalTaskSet::new(vec![]).unwrap_err(),
            PracticalError::Empty
        );
    }

    #[test]
    fn rm_order_by_period() {
        let set = PracticalTaskSet::new(vec![
            two_stage(1000, 10, 10),
            two_stage(100, 10, 10),
        ])
        .unwrap();
        assert_eq!(set.rm_order(), vec![TaskId(1), TaskId(0)]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }
}
