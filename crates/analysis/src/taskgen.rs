//! Synthetic task-set generation for experiments and property tests.
//!
//! Implements the standard **UUniFast** algorithm (Bini & Buttazzo) for
//! unbiased utilization vectors, log-uniform period sampling, and the
//! mandatory/wind-up split plus parallel-optional-part attachment needed by
//! the parallel-extended imprecise computation model.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtseed_model::{Span, TaskSet, TaskSpec};

/// Configuration for random task-set generation.
#[derive(Debug, Clone)]
pub struct TaskGenConfig {
    /// Number of tasks to generate.
    pub tasks: usize,
    /// Target total real-time utilization `Σ Uᵢ` (may exceed 1 for
    /// multiprocessor sets).
    pub total_utilization: f64,
    /// Minimum period (inclusive).
    pub period_min: Span,
    /// Maximum period (inclusive).
    pub period_max: Span,
    /// Fraction of each task's WCET allocated to the mandatory part (the
    /// rest is wind-up); sampled uniformly from this inclusive range.
    pub mandatory_fraction: (f64, f64),
    /// Number of parallel optional parts per task, sampled uniformly from
    /// this inclusive range.
    pub optional_parts: (usize, usize),
    /// Optional-part execution time as a multiple of the task period,
    /// sampled uniformly from this inclusive range (values ≥ 1 make parts
    /// always overrun, like the paper's §V-A workload).
    pub optional_scale: (f64, f64),
}

impl Default for TaskGenConfig {
    fn default() -> Self {
        TaskGenConfig {
            tasks: 4,
            total_utilization: 0.5,
            period_min: Span::from_millis(10),
            period_max: Span::from_secs(1),
            mandatory_fraction: (0.3, 0.7),
            optional_parts: (1, 8),
            optional_scale: (0.1, 1.0),
        }
    }
}

/// Generates an unbiased utilization vector summing to `total` using
/// UUniFast.
///
/// # Panics
///
/// Panics if `n == 0` or `total` is not a positive finite number.
pub fn uunifast(rng: &mut impl RngExt, n: usize, total: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    assert!(
        total.is_finite() && total > 0.0,
        "total utilization must be positive"
    );
    let mut utils = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let next = sum * rng.random::<f64>().powf(1.0 / (n - i) as f64);
        utils.push(sum - next);
        sum = next;
    }
    utils.push(sum);
    utils
}

/// Samples a period log-uniformly in `[min, max]`.
///
/// # Panics
///
/// Panics if `min` is zero or `min > max`.
pub fn log_uniform_period(rng: &mut impl RngExt, min: Span, max: Span) -> Span {
    assert!(!min.is_zero(), "minimum period must be positive");
    assert!(min <= max, "period range is inverted");
    if min == max {
        return min;
    }
    let (lo, hi) = (min.as_nanos() as f64, max.as_nanos() as f64);
    let x = rng.random_range(lo.ln()..=hi.ln()).exp();
    Span::from_nanos((x as u64).clamp(min.as_nanos(), max.as_nanos()))
}

/// Generates a random task set from `config`, deterministic in `seed`.
///
/// Each task's real-time WCET is `Uᵢ · Tᵢ` split between mandatory and
/// wind-up parts by a sampled fraction; optional parts are attached per the
/// configured ranges. Tasks whose sampled WCET would round to zero get a
/// 1 µs mandatory floor.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero tasks, non-positive
/// utilization, inverted ranges).
pub fn generate(config: &TaskGenConfig, seed: u64) -> TaskSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let utils = uunifast(&mut rng, config.tasks, config.total_utilization);
    let (f_lo, f_hi) = config.mandatory_fraction;
    assert!(
        (0.0..=1.0).contains(&f_lo) && f_lo <= f_hi && f_hi <= 1.0,
        "mandatory fraction range must be within [0, 1]"
    );
    let (np_lo, np_hi) = config.optional_parts;
    assert!(np_lo <= np_hi, "optional-part range is inverted");
    let (os_lo, os_hi) = config.optional_scale;
    assert!(os_lo <= os_hi && os_lo >= 0.0, "optional-scale range invalid");

    let mut tasks = Vec::with_capacity(config.tasks);
    for (i, &u) in utils.iter().enumerate() {
        let period = log_uniform_period(&mut rng, config.period_min, config.period_max);
        // Cap utilization at 1 per task; UUniFast can exceed it when the
        // requested total is large relative to n.
        let u = u.min(1.0);
        let wcet = period.mul_f64(u).max(Span::from_micros(1));
        let frac = rng.random_range(f_lo..=f_hi);
        let mut mandatory = wcet.mul_f64(frac);
        if mandatory.is_zero() {
            mandatory = Span::from_micros(1).min(wcet);
        }
        let windup = wcet.saturating_sub(mandatory);
        let np = rng.random_range(np_lo..=np_hi);
        let mut b = TaskSpec::builder(format!("gen{i}"));
        b.period(period).mandatory(mandatory);
        // The builder requires a wind-up part whenever optional parts
        // exist; give parts only to tasks that got a non-zero wind-up.
        if !windup.is_zero() {
            b.windup(windup);
            for _ in 0..np {
                let scale = rng.random_range(os_lo..=os_hi);
                b.optional_part(period.mul_f64(scale).max(Span::from_micros(1)));
            }
        }
        tasks.push(b.build().expect("generated task is valid"));
    }
    TaskSet::new(tasks).expect("non-empty generated set")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uunifast_sums_to_total() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 20] {
            for total in [0.1, 0.5, 1.0, 4.0] {
                let u = uunifast(&mut rng, n, total);
                assert_eq!(u.len(), n);
                let sum: f64 = u.iter().sum();
                assert!((sum - total).abs() < 1e-9, "n={n} total={total} sum={sum}");
                assert!(u.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn uunifast_rejects_zero_tasks() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = uunifast(&mut rng, 0, 0.5);
    }

    #[test]
    fn log_uniform_period_within_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let (min, max) = (Span::from_millis(10), Span::from_secs(1));
        for _ in 0..1000 {
            let p = log_uniform_period(&mut rng, min, max);
            assert!(p >= min && p <= max);
        }
        assert_eq!(log_uniform_period(&mut rng, min, min), min);
    }

    #[test]
    fn generate_is_deterministic_in_seed() {
        let cfg = TaskGenConfig::default();
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(a, b);
        let c = generate(&cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn generate_respects_utilization_roughly() {
        let cfg = TaskGenConfig {
            tasks: 8,
            total_utilization: 0.8,
            ..TaskGenConfig::default()
        };
        let set = generate(&cfg, 1);
        assert_eq!(set.len(), 8);
        // Rounding to the 1 µs floor can distort tiny tasks, but the sum
        // should be close.
        assert!((set.total_utilization() - 0.8).abs() < 0.05);
    }

    #[test]
    fn generate_honours_part_ranges() {
        let cfg = TaskGenConfig {
            tasks: 10,
            optional_parts: (3, 3),
            mandatory_fraction: (0.5, 0.5),
            ..TaskGenConfig::default()
        };
        let set = generate(&cfg, 5);
        for (_, t) in set.iter() {
            // Every generated task with a wind-up part gets exactly 3 parts.
            if !t.windup().is_zero() {
                assert_eq!(t.optional_count(), 3);
            }
            assert!(t.wcet() <= t.period());
        }
    }

    #[test]
    fn generated_sets_feed_the_analysis() {
        // Low utilization per task: every singleton must be schedulable.
        let cfg = TaskGenConfig {
            tasks: 6,
            total_utilization: 0.6,
            ..TaskGenConfig::default()
        };
        let set = generate(&cfg, 9);
        for (_, t) in set.iter() {
            let single = TaskSet::new(vec![t.clone()]).unwrap();
            assert!(crate::rmwp::RmwpAnalysis::analyze(&single).is_ok());
        }
    }
}
