//! Utilization-based schedulability bounds and the RMUS priority
//! separation rule used for the HPQ (paper §IV-B footnote 1).

use rtseed_model::TaskSet;

/// Liu–Layland utilization bound for `n` tasks under RM:
/// `n (2^{1/n} − 1)`; ~0.693 as `n → ∞`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let b = rtseed_analysis::bounds::liu_layland_bound(1);
/// assert!((b - 1.0).abs() < 1e-12);
/// ```
pub fn liu_layland_bound(n: usize) -> f64 {
    assert!(n > 0, "bound requires at least one task");
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Liu–Layland sufficient test: total utilization of real-time parts within
/// the bound for the set's cardinality.
pub fn liu_layland_schedulable(set: &TaskSet) -> bool {
    set.total_utilization() <= liu_layland_bound(set.len()) + 1e-12
}

/// Hyperbolic bound (Bini & Buttazzo): `Π (Uᵢ + 1) ≤ 2` — strictly less
/// pessimistic than Liu–Layland.
pub fn hyperbolic_schedulable(set: &TaskSet) -> bool {
    let prod: f64 = set
        .iter()
        .map(|(_, t)| t.utilization() + 1.0)
        .product();
    prod <= 2.0 + 1e-12
}

/// The RM-US utilization separation threshold `M / (3M − 2)` (Andersson,
/// Baruah & Jonsson): on `m` processors, tasks with `Uᵢ` above this value
/// receive the highest priority (RT-Seed reserves SCHED_FIFO level 99 —
/// the HPQ — for them).
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Examples
///
/// ```
/// // On one processor the threshold is 1: no task can exceed it.
/// assert!((rtseed_analysis::bounds::rmus_threshold(1) - 1.0).abs() < 1e-12);
/// ```
pub fn rmus_threshold(m: usize) -> f64 {
    assert!(m > 0, "threshold requires at least one processor");
    let m = m as f64;
    m / (3.0 * m - 2.0)
}

/// Task indices (in task-set order) whose utilization exceeds the RM-US
/// threshold for `m` processors; these are the tasks RT-Seed places in the
/// HPQ at priority 99.
pub fn hpq_tasks(set: &TaskSet, m: usize) -> Vec<rtseed_model::TaskId> {
    let thr = rmus_threshold(m);
    set.iter()
        .filter(|(_, t)| t.utilization() > thr)
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::{Span, TaskSpec};

    fn task(period_ms: u64, m_ms: u64, w_ms: u64) -> TaskSpec {
        let mut b = TaskSpec::builder("t");
        b.period(Span::from_millis(period_ms))
            .mandatory(Span::from_millis(m_ms))
            .windup(Span::from_millis(w_ms));
        b.build().unwrap()
    }

    #[test]
    fn liu_layland_known_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284271).abs() < 1e-6);
        assert!((liu_layland_bound(3) - 0.7797631).abs() < 1e-6);
        // Monotonically decreasing towards ln 2.
        assert!(liu_layland_bound(1000) > 2f64.ln());
        assert!(liu_layland_bound(1000) < liu_layland_bound(3));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn liu_layland_rejects_zero() {
        let _ = liu_layland_bound(0);
    }

    #[test]
    fn liu_layland_test_on_sets() {
        let ok = TaskSet::new(vec![task(10, 2, 1), task(20, 2, 2)]).unwrap(); // U = 0.5
        assert!(liu_layland_schedulable(&ok));
        let too_much = TaskSet::new(vec![task(10, 3, 2), task(20, 5, 4)]).unwrap(); // U = 0.95
        assert!(!liu_layland_schedulable(&too_much));
    }

    #[test]
    fn hyperbolic_less_pessimistic_than_ll() {
        // U1 = U2 = 0.41: sum 0.82 fails LL(2) ≈ 0.828? No, passes.
        // Pick U1 = U2 = 0.42: sum 0.84 > 0.828 fails LL but
        // (1.42)² = 2.0164 > 2 fails hyperbolic too. Use asymmetric:
        // U1 = 0.5, U2 = 0.33: sum 0.83 > 0.828, (1.5)(1.33) = 1.995 ≤ 2.
        let set = TaskSet::new(vec![task(100, 25, 25), task(100, 18, 15)]).unwrap();
        assert!(!liu_layland_schedulable(&set));
        assert!(hyperbolic_schedulable(&set));
    }

    #[test]
    fn rmus_threshold_known_values() {
        assert!((rmus_threshold(1) - 1.0).abs() < 1e-12);
        assert!((rmus_threshold(2) - 0.5).abs() < 1e-12);
        assert!((rmus_threshold(4) - 0.4).abs() < 1e-12);
        // Approaches 1/3 for many cores (M = 228 → 0.33455...).
        assert!((rmus_threshold(228) - 228.0 / 682.0).abs() < 1e-12);
    }

    #[test]
    fn hpq_selects_heavy_tasks() {
        // On 4 processors threshold = 0.4; the 0.5-utilization task is
        // heavy, the 0.2 one is not.
        let set = TaskSet::new(vec![task(100, 30, 20), task(100, 10, 10)]).unwrap();
        let heavy = hpq_tasks(&set, 4);
        assert_eq!(heavy, vec![rtseed_model::TaskId(0)]);
        // On one processor nothing exceeds 1.0.
        assert!(hpq_tasks(&set, 1).is_empty());
    }
}
