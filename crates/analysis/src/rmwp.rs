//! RMWP optional-deadline calculation and schedulability analysis.
//!
//! RMWP (Rate Monotonic with Wind-up Part, Chishiro et al. 2010) is the
//! uniprocessor semi-fixed-priority algorithm this middleware implements in
//! partitioned form (P-RMWP). Its key offline artifact is the **optional
//! deadline** `ODᵢ`: the instant (relative to release) when a job's
//! optional parts are terminated and its wind-up part is released (paper
//! §II-B).
//!
//! The paper cites the OD formula as "Theorem 2 of \[5\]" without reprinting
//! it; DESIGN.md documents our sound reconstruction:
//!
//! * `R^m_i` — worst-case response time of the mandatory part under
//!   interference from higher-priority tasks' mandatory **and** wind-up
//!   parts (conservative: both real-time parts of a higher-priority task
//!   may execute inside the window);
//! * `R^w_i` — worst-case response time of the wind-up part under the same
//!   interference;
//! * `ODᵢ = Dᵢ − R^w_i`, schedulable iff `R^m_i ≤ ODᵢ` for every task.
//!
//! For the single-task evaluation workload of §V-A this degenerates to the
//! exact formula the paper uses, `OD₁ = D₁ − w₁`.
//!
//! By Theorems 1 and 2 of the paper the same deadlines and tests apply
//! unchanged to the **parallel-extended** model (optional parts never
//! interfere with real-time parts), which is why this module never looks at
//! `oᵢ,ₖ`.

use core::fmt;

use rtseed_model::{Priority, Span, TaskId, TaskSet};
use serde::{Deserialize, Serialize};

use crate::rta::{response_time, Interferer, RtaError};

/// Result of analyzing a task set for RMWP on a single processor: per-task
/// response times and optional deadlines, in the task set's id order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmwpAnalysis {
    mandatory_response: Vec<Span>,
    windup_response: Vec<Span>,
    optional_deadline: Vec<Span>,
    rm_order: Vec<TaskId>,
}

impl RmwpAnalysis {
    /// Analyzes `set` for RMWP schedulability on one processor, computing
    /// every task's optional deadline.
    ///
    /// Priorities are Rate Monotonic over the *whole tasks* (part-level
    /// fixed priorities then follow §IV-B's band mapping).
    ///
    /// # Errors
    ///
    /// [`RmwpError::Unschedulable`] if any mandatory part cannot be
    /// guaranteed to finish by its optional deadline, or any wind-up part
    /// cannot finish by its deadline.
    pub fn analyze(set: &TaskSet) -> Result<RmwpAnalysis, RmwpError> {
        Self::analyze_with_order(set, set.rm_order())
    }

    /// Like [`RmwpAnalysis::analyze`], but with an explicit priority order
    /// (highest priority first). This is what RT-Seed's configuration
    /// layer uses so the admission test agrees with the *deployed*
    /// priorities — RM-US places heavy tasks in the HPQ *above* RM order
    /// (paper §IV-B footnote 1), and analysing against plain RM would
    /// silently under-estimate their interference.
    ///
    /// # Errors
    ///
    /// [`RmwpError::Unschedulable`] as for [`RmwpAnalysis::analyze`].
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the set's task ids.
    pub fn analyze_with_order(
        set: &TaskSet,
        order: Vec<TaskId>,
    ) -> Result<RmwpAnalysis, RmwpError> {
        Self::analyze_inner(set, order, None)
    }

    /// Like [`RmwpAnalysis::analyze_with_order`], but analyzed against the
    /// *deployed* SCHED_FIFO levels instead of a strict order. The level
    /// mapping ([`Priority::for_period`]) is many-to-one: tasks sharing a
    /// level are FIFO-ordered by the kernel under whatever phasing the
    /// run produces, so no strict priority order between them can be
    /// assumed. Each task is therefore charged interference from every
    /// *other* task at the same level as well as from all strictly higher
    /// levels — sound for arbitrary release phasing, which is exactly the
    /// situation online admission creates (`levels[i]` is task `i`'s
    /// level in the set's id order).
    ///
    /// # Errors
    ///
    /// [`RmwpError::Unschedulable`] as for [`RmwpAnalysis::analyze`].
    ///
    /// # Panics
    ///
    /// Panics if `levels` does not have one entry per task.
    pub fn analyze_with_levels(
        set: &TaskSet,
        levels: &[Priority],
    ) -> Result<RmwpAnalysis, RmwpError> {
        assert_eq!(levels.len(), set.len(), "one level per task");
        // Report rm_order as (level desc, id) — a representative of the
        // orders the kernel may produce.
        let mut order: Vec<TaskId> = set.ids().collect();
        order.sort_by(|&a, &b| levels[b.index()].cmp(&levels[a.index()]).then(a.cmp(&b)));
        Self::analyze_inner(set, order, Some(levels))
    }

    fn analyze_inner(
        set: &TaskSet,
        order: Vec<TaskId>,
        levels: Option<&[Priority]>,
    ) -> Result<RmwpAnalysis, RmwpError> {
        assert_eq!(order.len(), set.len(), "order must cover every task");
        let rm_order = order;
        let n = set.len();
        let mut mandatory_response = vec![Span::ZERO; n];
        let mut windup_response = vec![Span::ZERO; n];
        let mut optional_deadline = vec![Span::ZERO; n];

        for (rank, &id) in rm_order.iter().enumerate() {
            let spec = set.task(id);
            let interferes = |j: TaskId| match levels {
                // Strict order: exactly the higher-ranked tasks.
                None => rm_order[..rank].contains(&j),
                // Deployed levels: strictly higher levels always, and
                // same-level peers both ways (FIFO within a level).
                Some(levels) => j != id && levels[j.index()] >= levels[id.index()],
            };
            let hp: Vec<Interferer> = set
                .ids()
                .filter(|&j| interferes(j))
                .map(|j| {
                    let s = set.task(j);
                    Interferer {
                        period: s.period(),
                        demand: s.wcet(),
                    }
                })
                .collect();

            let rw = response_time(spec.windup(), &hp, spec.deadline()).map_err(|source| {
                RmwpError::Unschedulable {
                    task: id,
                    part: UnschedulablePart::Windup,
                    source,
                }
            })?;
            let od = spec.deadline() - rw;

            // A task without optional parts and without a wind-up part is a
            // plain RM task: its "optional deadline" is its deadline and
            // only the mandatory response matters.
            let rm_bound = if spec.windup().is_zero() && spec.optional_count() == 0 {
                spec.deadline()
            } else {
                od
            };
            let rm = response_time(spec.mandatory(), &hp, rm_bound).map_err(|source| {
                RmwpError::Unschedulable {
                    task: id,
                    part: UnschedulablePart::Mandatory,
                    source,
                }
            })?;

            let idx = id.index();
            mandatory_response[idx] = rm;
            windup_response[idx] = rw;
            optional_deadline[idx] = od;
        }

        Ok(RmwpAnalysis {
            mandatory_response,
            windup_response,
            optional_deadline,
            rm_order,
        })
    }

    /// The relative optional deadline `ODᵢ` of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range for the analyzed set.
    #[inline]
    pub fn optional_deadline(&self, task: TaskId) -> Span {
        self.optional_deadline[task.index()]
    }

    /// Worst-case response time of the mandatory part of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn mandatory_response(&self, task: TaskId) -> Span {
        self.mandatory_response[task.index()]
    }

    /// Worst-case response time of the wind-up part of `task` measured from
    /// its optional deadline.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn windup_response(&self, task: TaskId) -> Span {
        self.windup_response[task.index()]
    }

    /// Task ids in Rate Monotonic priority order (highest first).
    #[inline]
    pub fn rm_order(&self) -> &[TaskId] {
        &self.rm_order
    }

    /// The *guaranteed* slack available to optional parts of `task`:
    /// `ODᵢ − R^m_i`. Optional parts released when the mandatory part
    /// completes at its worst-case response time have at least this long
    /// before termination.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn guaranteed_optional_window(&self, task: TaskId) -> Span {
        self.optional_deadline[task.index()]
            .saturating_sub(self.mandatory_response[task.index()])
    }
}

/// Which real-time part failed the schedulability test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnschedulablePart {
    /// The mandatory part cannot be guaranteed to complete by the optional
    /// deadline.
    Mandatory,
    /// The wind-up part cannot be guaranteed to complete by the deadline.
    Windup,
}

impl fmt::Display for UnschedulablePart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnschedulablePart::Mandatory => write!(f, "mandatory"),
            UnschedulablePart::Windup => write!(f, "wind-up"),
        }
    }
}

/// Error from [`RmwpAnalysis::analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RmwpError {
    /// A real-time part misses its bound; the task set is not RMWP-
    /// schedulable on one processor.
    Unschedulable {
        /// The offending task.
        task: TaskId,
        /// Which part failed.
        part: UnschedulablePart,
        /// The underlying RTA failure.
        source: RtaError,
    },
}

impl fmt::Display for RmwpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmwpError::Unschedulable { task, part, .. } => {
                write!(f, "task {task} is unschedulable: {part} part misses its bound")
            }
        }
    }
}

impl std::error::Error for RmwpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmwpError::Unschedulable { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::TaskSpec;

    fn task(name: &str, period_ms: u64, m_ms: u64, w_ms: u64) -> TaskSpec {
        let mut b = TaskSpec::builder(name);
        b.period(Span::from_millis(period_ms))
            .mandatory(Span::from_millis(m_ms))
            .windup(Span::from_millis(w_ms));
        if w_ms > 0 {
            b.optional_part(Span::from_millis(period_ms));
        }
        b.build().unwrap()
    }

    #[test]
    fn single_task_matches_paper_formula() {
        // §V-A: OD₁ = D₁ − w₁.
        let set = TaskSet::new(vec![task("τ1", 1000, 250, 250)]).unwrap();
        let a = RmwpAnalysis::analyze(&set).unwrap();
        assert_eq!(a.optional_deadline(TaskId(0)), Span::from_millis(750));
        assert_eq!(a.mandatory_response(TaskId(0)), Span::from_millis(250));
        assert_eq!(a.windup_response(TaskId(0)), Span::from_millis(250));
        assert_eq!(a.guaranteed_optional_window(TaskId(0)), Span::from_millis(500));
    }

    #[test]
    fn two_task_interference_shrinks_od() {
        // τ1 = (T 100, m 10, w 10) τ2 = (T 1000, m 100, w 100).
        let set = TaskSet::new(vec![
            task("τ1", 100, 10, 10),
            task("τ2", 1000, 100, 100),
        ])
        .unwrap();
        let a = RmwpAnalysis::analyze(&set).unwrap();
        // τ1 is highest priority: OD = 100 − 10 = 90.
        assert_eq!(a.optional_deadline(TaskId(0)), Span::from_millis(90));
        // τ2 wind-up: R = 100 + ⌈R/100⌉·20 → 100+40... fixpoint:
        // R0=100 → 100+20·⌈100/100⌉=120 → 100+20·⌈120/100⌉=140 →
        // 100+20·⌈140/100⌉=140. OD = 1000 − 140 = 860.
        assert_eq!(a.windup_response(TaskId(1)), Span::from_millis(140));
        assert_eq!(a.optional_deadline(TaskId(1)), Span::from_millis(860));
        // Mandatory response is the same fixpoint shape: 140 ≤ 860. OK.
        assert_eq!(a.mandatory_response(TaskId(1)), Span::from_millis(140));
    }

    #[test]
    fn rm_order_is_priority_order() {
        let set = TaskSet::new(vec![
            task("slow", 1000, 10, 10),
            task("fast", 10, 1, 1),
        ])
        .unwrap();
        let a = RmwpAnalysis::analyze(&set).unwrap();
        assert_eq!(a.rm_order(), &[TaskId(1), TaskId(0)]);
    }

    #[test]
    fn unschedulable_windup_detected() {
        // Higher-priority task saturates the processor so the low-priority
        // wind-up cannot fit: τ1 = (10, 5, 4) U=0.9, τ2 = (100, 10, 10).
        let set = TaskSet::new(vec![
            task("τ1", 10, 5, 4),
            task("τ2", 100, 10, 10),
        ])
        .unwrap();
        let err = RmwpAnalysis::analyze(&set).unwrap_err();
        let RmwpError::Unschedulable { task: t, .. } = err;
        assert_eq!(t, TaskId(1));
    }

    #[test]
    fn mandatory_must_meet_optional_deadline() {
        // Construct a set where the wind-up fits but the mandatory part
        // cannot finish by OD: m huge, w tiny, heavy interference.
        // τ1 = (T 10, m 4, w 4): U = 0.8.
        // τ2 = (T 20, m 9, w 1): wind-up R = 1 + 8·⌈R/10⌉ → 9; OD = 11.
        // mandatory R: 9 + 8·⌈R/10⌉ → 9+8=17 → 9+16=25 > 11 → fail.
        let set = TaskSet::new(vec![task("τ1", 10, 4, 4), task("τ2", 20, 9, 1)]).unwrap();
        let err = RmwpAnalysis::analyze(&set).unwrap_err();
        let RmwpError::Unschedulable { task: t, part, .. } = err;
        assert_eq!(t, TaskId(1));
        assert_eq!(part, UnschedulablePart::Mandatory);
    }

    #[test]
    fn plain_rm_task_without_windup_uses_full_deadline() {
        // A classic Liu–Layland task (no optional, no wind-up) must be
        // admitted against D, not against OD = D − 0 (identical here, but
        // the code path differs).
        let plain = TaskSpec::builder("plain")
            .period(Span::from_millis(10))
            .mandatory(Span::from_millis(9))
            .build()
            .unwrap();
        let set = TaskSet::new(vec![plain]).unwrap();
        let a = RmwpAnalysis::analyze(&set).unwrap();
        assert_eq!(a.optional_deadline(TaskId(0)), Span::from_millis(10));
        assert_eq!(a.mandatory_response(TaskId(0)), Span::from_millis(9));
    }

    #[test]
    fn optional_parts_do_not_affect_analysis() {
        // Theorem 1/2: np must not change OD.
        let a1 = {
            let set = TaskSet::new(vec![task("τ1", 1000, 250, 250)]).unwrap();
            RmwpAnalysis::analyze(&set).unwrap()
        };
        let a2 = {
            let t = task("τ1", 1000, 250, 250).with_optional_parts(228, Span::from_secs(5));
            let set = TaskSet::new(vec![t]).unwrap();
            RmwpAnalysis::analyze(&set).unwrap()
        };
        assert_eq!(
            a1.optional_deadline(TaskId(0)),
            a2.optional_deadline(TaskId(0))
        );
    }

    #[test]
    fn error_display_and_source() {
        let set = TaskSet::new(vec![task("τ1", 10, 5, 4), task("τ2", 100, 10, 10)]).unwrap();
        let err = RmwpAnalysis::analyze(&set).unwrap_err();
        assert!(err.to_string().contains("unschedulable"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn harmonic_set_fully_schedulable() {
        let set = TaskSet::new(vec![
            task("a", 100, 20, 20),
            task("b", 200, 20, 20),
            task("c", 400, 20, 20),
        ])
        .unwrap();
        let a = RmwpAnalysis::analyze(&set).unwrap();
        for id in set.ids() {
            assert!(a.optional_deadline(id) > Span::ZERO);
            assert!(a.mandatory_response(id) <= a.optional_deadline(id));
        }
    }
}
