//! Partitioned task assignment for P-RMWP (paper §IV-B).
//!
//! P-RMWP assigns every task's mandatory thread to one hardware thread
//! *offline*; mandatory and wind-up parts never migrate (§II-A, §IV-B).
//! This module provides the classic bin-packing heuristics with the RMWP
//! response-time admission test from [`crate::rmwp`]: a task fits on a
//! hardware thread iff the tasks already there plus the candidate are RMWP-
//! schedulable together.

use core::fmt;

use rtseed_model::{HwThreadId, Span, TaskId, TaskSet, Topology};
use serde::{Deserialize, Serialize};

use crate::rmwp::RmwpAnalysis;

/// Bin-packing heuristic for partitioned assignment. All heuristics
/// consider tasks in decreasing-utilization order (the "-decreasing"
/// variants known to dominate their plain counterparts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionHeuristic {
    /// First hardware thread that admits the task.
    FirstFitDecreasing,
    /// Admitting hardware thread with the least remaining utilization.
    BestFitDecreasing,
    /// Admitting hardware thread with the most remaining utilization
    /// (spreads load; leaves room for optional parts on SMT siblings).
    WorstFitDecreasing,
}

impl fmt::Display for PartitionHeuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartitionHeuristic::FirstFitDecreasing => "first-fit-decreasing",
            PartitionHeuristic::BestFitDecreasing => "best-fit-decreasing",
            PartitionHeuristic::WorstFitDecreasing => "worst-fit-decreasing",
        };
        f.write_str(s)
    }
}

/// A valid partitioned assignment of tasks to hardware threads together
/// with the per-thread RMWP analyses (and hence every optional deadline).
#[derive(Debug, Clone)]
pub struct Partition {
    assignment: Vec<HwThreadId>,
    optional_deadline: Vec<Span>,
    per_thread: Vec<Vec<TaskId>>,
}

impl Partition {
    /// Partitions `set` onto the hardware threads of `topology` using
    /// `heuristic`, admitting each task with the exact RMWP test under
    /// Rate Monotonic priorities.
    ///
    /// # Errors
    ///
    /// [`PartitionError::TaskDoesNotFit`] if some task cannot be placed on
    /// any hardware thread.
    pub fn compute(
        set: &TaskSet,
        topology: &Topology,
        heuristic: PartitionHeuristic,
    ) -> Result<Partition, PartitionError> {
        Self::compute_with_order(set, topology, heuristic, set.rm_order())
    }

    /// Like [`Partition::compute`] but with an explicit global priority
    /// order (highest first) — required whenever the deployed priorities
    /// differ from plain RM (e.g. RM-US HPQ tasks at SCHED_FIFO level 99),
    /// so that admission and execution agree.
    ///
    /// # Errors
    ///
    /// [`PartitionError::TaskDoesNotFit`] as for [`Partition::compute`].
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the set's task ids.
    pub fn compute_with_order(
        set: &TaskSet,
        topology: &Topology,
        heuristic: PartitionHeuristic,
        order: Vec<TaskId>,
    ) -> Result<Partition, PartitionError> {
        assert_eq!(order.len(), set.len(), "order must cover every task");
        let mut rank = vec![usize::MAX; set.len()];
        for (r, id) in order.iter().enumerate() {
            rank[id.index()] = r;
        }
        assert!(
            rank.iter().all(|&r| r != usize::MAX),
            "order must be a permutation of the task ids"
        );
        let m = topology.hw_threads() as usize;
        let mut bins: Vec<Vec<TaskId>> = vec![Vec::new(); m];
        let mut bin_util = vec![0.0f64; m];
        let mut assignment = vec![HwThreadId(0); set.len()];

        // Placement considers tasks in decreasing utilization (ties by id
        // for determinism) — independent of the priority order above.
        let mut fit_order: Vec<TaskId> = set.ids().collect();
        fit_order.sort_by(|a, b| {
            let ua = set.task(*a).utilization();
            let ub = set.task(*b).utilization();
            ub.partial_cmp(&ua)
                .expect("utilizations are finite")
                .then(a.0.cmp(&b.0))
        });

        for &id in &fit_order {
            let u = set.task(id).utilization();
            let mut candidates: Vec<usize> = (0..m).collect();
            match heuristic {
                PartitionHeuristic::FirstFitDecreasing => {}
                PartitionHeuristic::BestFitDecreasing => {
                    candidates.sort_by(|&a, &b| {
                        bin_util[b]
                            .partial_cmp(&bin_util[a])
                            .expect("finite utilization")
                            .then(a.cmp(&b))
                    });
                }
                PartitionHeuristic::WorstFitDecreasing => {
                    candidates.sort_by(|&a, &b| {
                        bin_util[a]
                            .partial_cmp(&bin_util[b])
                            .expect("finite utilization")
                            .then(a.cmp(&b))
                    });
                }
            }

            let mut placed = false;
            for &bin in &candidates {
                if admits(set, &bins[bin], id, &rank) {
                    bins[bin].push(id);
                    bin_util[bin] += u;
                    assignment[id.index()] = HwThreadId(bin as u32);
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(PartitionError::TaskDoesNotFit { task: id });
            }
        }

        // Compute final per-thread analyses to extract optional deadlines.
        let mut optional_deadline = vec![Span::ZERO; set.len()];
        for tasks in bins.iter().filter(|b| !b.is_empty()) {
            let mut members = tasks.clone();
            members.sort_by_key(|t| rank[t.index()]);
            let specs = members.iter().map(|&t| set.task(t).clone()).collect();
            let sub = TaskSet::new(specs).expect("non-empty bin");
            let induced: Vec<TaskId> = (0..members.len() as u32).map(TaskId).collect();
            let analysis = RmwpAnalysis::analyze_with_order(&sub, induced)
                .expect("bin admitted incrementally");
            for (local, &global) in members.iter().enumerate() {
                optional_deadline[global.index()] =
                    analysis.optional_deadline(TaskId(local as u32));
            }
        }

        Ok(Partition {
            assignment,
            optional_deadline,
            per_thread: bins,
        })
    }

    /// The hardware thread the mandatory thread of `task` is pinned to.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn hw_thread_of(&self, task: TaskId) -> HwThreadId {
        self.assignment[task.index()]
    }

    /// The relative optional deadline of `task` within its partition.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[inline]
    pub fn optional_deadline(&self, task: TaskId) -> Span {
        self.optional_deadline[task.index()]
    }

    /// Tasks assigned to `thread`, in placement order.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    #[inline]
    pub fn tasks_on(&self, thread: HwThreadId) -> &[TaskId] {
        &self.per_thread[thread.index()]
    }

    /// Number of hardware threads that received at least one task.
    pub fn used_threads(&self) -> usize {
        self.per_thread.iter().filter(|b| !b.is_empty()).count()
    }
}

fn admits(set: &TaskSet, existing: &[TaskId], candidate: TaskId, rank: &[usize]) -> bool {
    let mut members: Vec<TaskId> = existing.to_vec();
    members.push(candidate);
    members.sort_by_key(|t| rank[t.index()]);
    let specs: Vec<_> = members.iter().map(|&t| set.task(t).clone()).collect();
    let sub = TaskSet::new(specs).expect("at least the candidate");
    let induced: Vec<TaskId> = (0..members.len() as u32).map(TaskId).collect();
    RmwpAnalysis::analyze_with_order(&sub, induced).is_ok()
}

/// Error from [`Partition::compute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// A task could not be admitted on any hardware thread.
    TaskDoesNotFit {
        /// The offending task.
        task: TaskId,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::TaskDoesNotFit { task } => {
                write!(f, "task {task} does not fit on any hardware thread")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::TaskSpec;

    fn task(name: &str, period_ms: u64, m_ms: u64, w_ms: u64) -> TaskSpec {
        let mut b = TaskSpec::builder(name);
        b.period(Span::from_millis(period_ms))
            .mandatory(Span::from_millis(m_ms))
            .windup(Span::from_millis(w_ms));
        b.build().unwrap()
    }

    fn heavy(n: usize) -> TaskSet {
        // n tasks of utilization 0.6 — at most one per thread.
        TaskSet::new((0..n).map(|i| task(&format!("t{i}"), 100, 30, 30)).collect()).unwrap()
    }

    #[test]
    fn single_task_on_uniprocessor() {
        let set = TaskSet::new(vec![task("τ1", 1000, 250, 250)]).unwrap();
        let p = Partition::compute(
            &set,
            &Topology::uniprocessor(),
            PartitionHeuristic::FirstFitDecreasing,
        )
        .unwrap();
        assert_eq!(p.hw_thread_of(TaskId(0)), HwThreadId(0));
        assert_eq!(p.optional_deadline(TaskId(0)), Span::from_millis(750));
        assert_eq!(p.used_threads(), 1);
        assert_eq!(p.tasks_on(HwThreadId(0)), &[TaskId(0)]);
    }

    #[test]
    fn heavy_tasks_spread_one_per_thread() {
        let set = heavy(4);
        for h in [
            PartitionHeuristic::FirstFitDecreasing,
            PartitionHeuristic::BestFitDecreasing,
            PartitionHeuristic::WorstFitDecreasing,
        ] {
            let p = Partition::compute(&set, &Topology::quad_core_smt2(), h).unwrap();
            assert_eq!(p.used_threads(), 4, "{h}");
        }
    }

    #[test]
    fn overload_reported() {
        // Five 0.6-utilization tasks on 4 hardware threads (uniprocessor
        // topology ×4? use 2 cores ×2 smt = 4 threads).
        let set = heavy(5);
        let topo = Topology::new(2, 2).unwrap();
        let err =
            Partition::compute(&set, &topo, PartitionHeuristic::FirstFitDecreasing).unwrap_err();
        assert!(matches!(err, PartitionError::TaskDoesNotFit { .. }));
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn ffd_packs_bestfit_spreads() {
        // Two light tasks (U = 0.2 each): FFD packs them on thread 0,
        // WFD spreads them across threads.
        let set = TaskSet::new(vec![task("a", 100, 10, 10), task("b", 100, 10, 10)]).unwrap();
        let topo = Topology::quad_core_smt2();
        let ffd =
            Partition::compute(&set, &topo, PartitionHeuristic::FirstFitDecreasing).unwrap();
        assert_eq!(ffd.used_threads(), 1);
        let wfd =
            Partition::compute(&set, &topo, PartitionHeuristic::WorstFitDecreasing).unwrap();
        assert_eq!(wfd.used_threads(), 2);
    }

    #[test]
    fn optional_deadlines_reflect_partition_interference() {
        // Two tasks co-located on a uniprocessor: the lower-priority task's
        // OD shrinks relative to running alone.
        let set = TaskSet::new(vec![task("hi", 100, 10, 10), task("lo", 1000, 100, 100)]).unwrap();
        let p = Partition::compute(
            &set,
            &Topology::uniprocessor(),
            PartitionHeuristic::FirstFitDecreasing,
        )
        .unwrap();
        // From the rmwp tests: OD(lo) = 860 with interference; alone it
        // would be 900.
        assert_eq!(p.optional_deadline(TaskId(1)), Span::from_millis(860));
    }

    #[test]
    fn deterministic_across_runs() {
        let set = heavy(4);
        let topo = Topology::quad_core_smt2();
        let p1 =
            Partition::compute(&set, &topo, PartitionHeuristic::BestFitDecreasing).unwrap();
        let p2 =
            Partition::compute(&set, &topo, PartitionHeuristic::BestFitDecreasing).unwrap();
        for id in set.ids() {
            assert_eq!(p1.hw_thread_of(id), p2.hw_thread_of(id));
        }
    }
}
