//! Exact response-time analysis (RTA) for uniprocessor fixed-priority
//! scheduling.
//!
//! The classic fixpoint of Joseph & Pandya / Audsley et al.:
//!
//! ```text
//! R = C + Σ_{j ∈ hp} ⌈R / Tⱼ⌉ · Cⱼ
//! ```
//!
//! iterated from `R₀ = C` until it converges or exceeds the deadline. This
//! is the work-horse for every higher-level test in this crate: plain RM
//! admission, the RMWP mandatory/wind-up response times, and partitioned
//! admission.

use core::fmt;

use rtseed_model::Span;

/// Interference source for RTA: a higher-priority periodic contributor with
/// period `period` demanding `demand` units each period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interferer {
    /// The contributor's period Tⱼ.
    pub period: Span,
    /// Execution demand per period (for RMWP this is `mⱼ + wⱼ`).
    pub demand: Span,
}

/// Errors from the RTA fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtaError {
    /// The response time exceeded the supplied bound (deadline): the task is
    /// unschedulable at this priority.
    ExceedsBound {
        /// Value of the iterate when it crossed the bound.
        reached: Span,
        /// The bound that was crossed.
        bound: Span,
    },
    /// The fixpoint failed to converge within the iteration budget, which
    /// only happens for pathological inputs (e.g. total utilization ≥ 1
    /// combined with an enormous bound).
    Diverged,
}

impl fmt::Display for RtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtaError::ExceedsBound { reached, bound } => {
                write!(f, "response time {reached} exceeds bound {bound}")
            }
            RtaError::Diverged => write!(f, "response-time iteration diverged"),
        }
    }
}

impl std::error::Error for RtaError {}

/// Maximum fixpoint iterations before declaring divergence. Each iteration
/// strictly increases the iterate by at least 1 ns when not converged, but
/// realistic task sets converge within a handful of steps; the budget only
/// guards against adversarial inputs.
const MAX_ITERS: usize = 1_000_000;

/// Computes the worst-case response time of a job of cost `cost` released
/// together with all higher-priority interferers (critical instant),
/// bounded by `bound`.
///
/// # Errors
///
/// * [`RtaError::ExceedsBound`] if the fixpoint crosses `bound` — the task
///   misses its deadline;
/// * [`RtaError::Diverged`] if the iteration budget is exhausted.
///
/// # Examples
///
/// ```
/// use rtseed_model::Span;
/// use rtseed_analysis::rta::{response_time, Interferer};
/// let hp = [Interferer { period: Span::from_millis(10), demand: Span::from_millis(2) }];
/// let r = response_time(Span::from_millis(3), &hp, Span::from_millis(20)).unwrap();
/// assert_eq!(r, Span::from_millis(5));
/// ```
pub fn response_time(
    cost: Span,
    higher_priority: &[Interferer],
    bound: Span,
) -> Result<Span, RtaError> {
    if cost > bound {
        return Err(RtaError::ExceedsBound {
            reached: cost,
            bound,
        });
    }
    let mut r = cost;
    for _ in 0..MAX_ITERS {
        let mut next = cost;
        for hp in higher_priority {
            debug_assert!(!hp.period.is_zero(), "interferer period must be positive");
            let jobs = r.div_ceil(hp.period).max(1);
            next = match hp
                .demand
                .checked_mul(jobs)
                .and_then(|d| next.checked_add(d))
            {
                Some(v) => v,
                None => {
                    return Err(RtaError::ExceedsBound {
                        reached: Span::MAX,
                        bound,
                    })
                }
            };
        }
        if next > bound {
            return Err(RtaError::ExceedsBound {
                reached: next,
                bound,
            });
        }
        if next == r {
            return Ok(r);
        }
        r = next;
    }
    Err(RtaError::Diverged)
}

/// Convenience: the worst-case response time of task `index` (0 = highest
/// priority) in a priority-ordered list of `(cost, period)` pairs with
/// implicit deadlines.
///
/// # Errors
///
/// Propagates [`RtaError`] from [`response_time`].
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn response_time_at(
    tasks: &[(Span, Span)],
    index: usize,
) -> Result<Span, RtaError> {
    let (cost, period) = tasks[index];
    let hp: Vec<Interferer> = tasks[..index]
        .iter()
        .map(|&(c, t)| Interferer {
            period: t,
            demand: c,
        })
        .collect();
    response_time(cost, &hp, period)
}

/// Checks whether every task in a priority-ordered `(cost, period)` list
/// meets its implicit deadline under preemptive fixed-priority scheduling.
pub fn all_schedulable(tasks: &[(Span, Span)]) -> bool {
    (0..tasks.len()).all(|i| response_time_at(tasks, i).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Span {
        Span::from_millis(v)
    }

    #[test]
    fn no_interference_is_cost() {
        assert_eq!(response_time(ms(3), &[], ms(10)).unwrap(), ms(3));
    }

    #[test]
    fn textbook_example() {
        // τ1 = (1, 4), τ2 = (2, 6), τ3 = (3, 13) — a classic RTA example.
        let tasks = [(ms(1), ms(4)), (ms(2), ms(6)), (ms(3), ms(13))];
        assert_eq!(response_time_at(&tasks, 0).unwrap(), ms(1));
        assert_eq!(response_time_at(&tasks, 1).unwrap(), ms(3));
        // R3 = 3 + ⌈R/4⌉·1 + ⌈R/6⌉·2 → fixpoint at 10 (3 + 3·1 + 2·2).
        assert_eq!(response_time_at(&tasks, 2).unwrap(), ms(10));
        assert!(all_schedulable(&tasks));
    }

    #[test]
    fn deadline_miss_detected() {
        // Two tasks with combined utilization 1.25 cannot fit.
        let tasks = [(ms(5), ms(8)), (ms(5), ms(8))];
        assert!(matches!(
            response_time_at(&tasks, 1),
            Err(RtaError::ExceedsBound { .. })
        ));
        assert!(!all_schedulable(&tasks));
    }

    #[test]
    fn cost_larger_than_bound_fails_fast() {
        let err = response_time(ms(10), &[], ms(5)).unwrap_err();
        assert_eq!(
            err,
            RtaError::ExceedsBound {
                reached: ms(10),
                bound: ms(5)
            }
        );
    }

    #[test]
    fn exact_fit_at_bound_is_schedulable() {
        // R = exactly the deadline is a (just) schedulable task.
        let tasks = [(ms(4), ms(8)), (ms(4), ms(8))];
        assert_eq!(response_time_at(&tasks, 1).unwrap(), ms(8));
    }

    #[test]
    fn full_utilization_harmonic_set() {
        // Harmonic periods schedule up to U = 1 under RM.
        let tasks = [(ms(2), ms(4)), (ms(2), ms(8)), (ms(2), ms(16))];
        assert!(all_schedulable(&tasks));
        assert_eq!(response_time_at(&tasks, 2).unwrap(), ms(8));
    }

    #[test]
    fn overflow_reported_as_exceeds_bound() {
        let hp = [Interferer {
            period: Span::from_nanos(1),
            demand: Span::MAX / 2,
        }];
        assert!(response_time(Span::from_nanos(1), &hp, Span::MAX).is_err());
    }

    #[test]
    fn interference_counts_at_least_one_job() {
        // Even an interferer with a huge period contributes one job at the
        // critical instant.
        let hp = [Interferer {
            period: Span::from_secs(1000),
            demand: ms(5),
        }];
        assert_eq!(response_time(ms(1), &hp, ms(100)).unwrap(), ms(6));
    }

    #[test]
    fn error_display() {
        let e = RtaError::ExceedsBound {
            reached: ms(12),
            bound: ms(10),
        };
        assert_eq!(e.to_string(), "response time 12ms exceeds bound 10ms");
        assert_eq!(RtaError::Diverged.to_string(), "response-time iteration diverged");
    }
}
