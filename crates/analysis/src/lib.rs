//! # rtseed-analysis
//!
//! Schedulability analysis substrate for semi-fixed-priority scheduling:
//!
//! * classic fixed-priority **response-time analysis** ([`rta`]),
//! * utilization **bounds** (Liu–Layland, hyperbolic, RMUS separation)
//!   ([`bounds`]),
//! * **RMWP optional-deadline calculation** and schedulability test
//!   ([`rmwp`]) — the offline analysis that makes semi-fixed-priority
//!   scheduling possible (paper §III and Theorems 1–2 of §IV-A),
//! * **partitioned task assignment** for P-RMWP ([`partition`]),
//! * incremental **online admission control** over the same bins and the
//!   same RMWP test ([`admission`]) — what the serving layer consults on
//!   every tenant arrival/departure — and its **sharded** form for
//!   tenant-scale parallel admission rounds ([`shard`]),
//! * synthetic **task-set generators** ([`taskgen`]).
//!
//! The parallel-extended model analysis is identical to the extended-model
//! analysis by the paper's Theorems 1 and 2 (optional parts never interfere
//! with real-time parts), so everything here is expressed over mandatory and
//! wind-up parts only.
//!
//! # Examples
//!
//! ```
//! use rtseed_model::{Span, TaskSpec, TaskSet};
//! use rtseed_analysis::rmwp::RmwpAnalysis;
//!
//! // Paper §V-A: single task, T = 1 s, m = w = 250 ms → OD = D − w = 750 ms.
//! let t = TaskSpec::builder("τ1")
//!     .period(Span::from_secs(1))
//!     .mandatory(Span::from_millis(250))
//!     .windup(Span::from_millis(250))
//!     .optional_parts(57, Span::from_secs(1))
//!     .build()?;
//! let set = TaskSet::new(vec![t])?;
//! let analysis = RmwpAnalysis::analyze(&set).expect("schedulable");
//! assert_eq!(analysis.optional_deadline(rtseed_model::TaskId(0)), Span::from_millis(750));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod admission;
pub mod bounds;
pub mod partition;
pub mod practical;
pub mod rmwp;
pub mod rta;
pub mod shard;
pub mod taskgen;

pub use admission::{
    Admission, AdmissionCacheStats, AdmissionController, AdmissionError, AdmissionPlan,
    AdmittedTask, EvictPlan, OdUpdate, TaskKey,
};
pub use shard::{ShardPlan, ShardedAdmission};
pub use partition::{Partition, PartitionError, PartitionHeuristic};
pub use rmwp::{RmwpAnalysis, RmwpError};
pub use rta::{response_time, RtaError};
