//! Sharded admission: the [`AdmissionController`] partitioned into
//! disjoint CPU-set shards for tenant-scale serving.
//!
//! Online middleware that admits work at scale partitions its admission
//! state so disjoint resources are analysed independently (cf. YASMIN's
//! per-resource allocation, PAPERS.md). RT-Seed's P-RMWP test is per-CPU
//! by construction, so the natural shard is a **contiguous block of
//! hardware-thread bins**: a placement that stays inside one shard
//! cannot perturb any other shard's response-time fixpoints.
//!
//! [`ShardedAdmission`] deliberately wraps **one** underlying
//! [`AdmissionController`] rather than composing per-shard controllers:
//!
//! * a single key space — sharding can never mint duplicate
//!   [`TaskKey`]s;
//! * the placement search still ranks **all** bins with the global
//!   heuristic, so decisions are bit-identical to the unsharded
//!   controller by construction (the shard map is pure metadata);
//! * **cross-shard fallback** is automatic: when a submission does not
//!   fit in the shard its first-ranked candidate lives in, the search
//!   simply continues into other shards, and the resulting
//!   [`ShardPlan`] reports [`ShardPlan::is_cross_shard`].
//!
//! What sharding adds on top is *conflict metadata* for speculative
//! parallelism: a [`ShardPlan`] carries bitmasks of the shards the
//! placement search **examined** and **placed into**. Two plans whose
//! examined-shard masks are disjoint ran their RMWP tests on disjoint
//! bins, so the serving layer can plan batched admission rounds for
//! disjoint shards concurrently (planning takes `&self`) and commit them
//! sequentially — re-planning only the requests whose examined shards a
//! prior commit touched. The commit order stays the deterministic FIFO
//! order, so traces are byte-identical to the sequential path; see
//! `rtseed::serve`'s parallel admission rounds.

use rtseed_model::{HwThreadId, QosFloor, Span, TaskSpec};

use crate::admission::{
    Admission, AdmissionCacheStats, AdmissionController, AdmissionError, AdmissionPlan,
    EvictPlan, OdUpdate, TaskKey,
};
use crate::partition::PartitionHeuristic;

/// Maximum number of shards — shard sets are `u64` bitmasks.
pub const MAX_SHARDS: u32 = 64;

/// A placement plan annotated with the shards it examined and placed
/// into (see the [module docs](self) for how the serving layer uses the
/// masks to parallelize admission rounds).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    plan: AdmissionPlan,
    examined_shards: u64,
    placed_shards: u64,
    primary_shard: u32,
    cross_shard: bool,
}

impl ShardPlan {
    /// The underlying bin-level plan.
    pub fn plan(&self) -> &AdmissionPlan {
        &self.plan
    }

    /// Bitmask of every shard the placement search ran an RMWP test in.
    /// A commit touching only shards outside this mask cannot change
    /// what this plan would decide.
    pub fn examined_shards(&self) -> u64 {
        self.examined_shards
    }

    /// Bitmask of the shards the batch actually landed in.
    pub fn placed_shards(&self) -> u64 {
        self.placed_shards
    }

    /// The shard-selection heuristic's pick: the shard of the first bin
    /// the search examined, i.e. where the global bin-packing heuristic
    /// ranked this batch first.
    pub fn primary_shard(&self) -> u32 {
        self.primary_shard
    }

    /// Whether any task fell back outside the primary shard.
    pub fn is_cross_shard(&self) -> bool {
        self.cross_shard
    }
}

/// [`AdmissionController`] plus a static map of hardware-thread bins to
/// disjoint shards. Mirrors the controller's API; see the
/// [module docs](self) for why decisions are identical to the unsharded
/// controller.
#[derive(Debug, Clone)]
pub struct ShardedAdmission {
    ctl: AdmissionController,
    /// Bin index → shard index (contiguous blocks of `ceil(m/shards)`).
    shard_of: Vec<u32>,
    shards: u32,
}

impl ShardedAdmission {
    /// Creates a sharded controller over `hw_threads` bins split into
    /// `shards` contiguous blocks. `shards == 0` picks automatically:
    /// one shard per 32 hardware threads, clamped to
    /// `[1, min(MAX_SHARDS, hw_threads)]` — small machines stay
    /// single-shard (no speculative overhead), big ones get enough
    /// shards for round parallelism. `full_rta` selects the monolithic
    /// oracle mode exactly as in [`AdmissionController::with_mode`].
    ///
    /// # Panics
    ///
    /// Panics if `hw_threads` is zero or `shards > MAX_SHARDS`.
    pub fn new(
        hw_threads: usize,
        heuristic: PartitionHeuristic,
        shards: u32,
        full_rta: bool,
    ) -> ShardedAdmission {
        assert!(hw_threads > 0, "need at least one hardware thread");
        assert!(shards <= MAX_SHARDS, "shard sets are u64 bitmasks");
        let shards = if shards == 0 {
            (hw_threads as u32).div_ceil(32).min(MAX_SHARDS).min(hw_threads as u32).max(1)
        } else {
            shards.min(hw_threads as u32)
        };
        let chunk = hw_threads.div_ceil(shards as usize);
        let shard_of = (0..hw_threads).map(|b| (b / chunk) as u32).collect();
        ShardedAdmission {
            ctl: AdmissionController::with_mode(hw_threads, heuristic, full_rta),
            shard_of,
            shards,
        }
    }

    /// Number of shards the bins are split into.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard containing hardware thread `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    #[inline]
    pub fn shard_of(&self, bin: usize) -> u32 {
        self.shard_of[bin]
    }

    /// Plans `tasks` without mutating state (see
    /// [`AdmissionController::plan_admit_bounded`]) and annotates the
    /// plan with its shard masks.
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::try_admit_bounded`].
    pub fn plan(
        &self,
        tasks: &[TaskSpec],
        floors: &[QosFloor],
        od_bounds: &[(TaskKey, Span)],
    ) -> Result<ShardPlan, AdmissionError> {
        let plan = self.ctl.plan_admit_bounded(tasks, floors, od_bounds)?;
        let mut examined_shards = 0u64;
        for &b in plan.examined_bins() {
            examined_shards |= 1 << self.shard_of[b];
        }
        let mut placed_shards = 0u64;
        for &b in plan.placed_bins() {
            placed_shards |= 1 << self.shard_of[b];
        }
        let primary_shard = plan
            .examined_bins()
            .first()
            .map(|&b| self.shard_of[b])
            .unwrap_or(0);
        let cross_shard = placed_shards & !(1 << primary_shard) != 0;
        Ok(ShardPlan {
            plan,
            examined_shards,
            placed_shards,
            primary_shard,
            cross_shard,
        })
    }

    /// Applies a plan from [`ShardedAdmission::plan`] (see
    /// [`AdmissionController::commit_admission`]).
    pub fn commit(
        &mut self,
        tasks: &[TaskSpec],
        floors: &[QosFloor],
        plan: &ShardPlan,
    ) -> Admission {
        self.ctl.commit_admission(tasks, floors, &plan.plan)
    }

    /// One-shot plan + commit (see [`AdmissionController::try_admit`]).
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::try_admit`].
    pub fn try_admit(&mut self, tasks: &[TaskSpec]) -> Result<Admission, AdmissionError> {
        self.ctl.try_admit(tasks)
    }

    /// One-shot bounded plan + commit (see
    /// [`AdmissionController::try_admit_bounded`]).
    ///
    /// # Errors
    ///
    /// As [`AdmissionController::try_admit_bounded`].
    pub fn try_admit_bounded(
        &mut self,
        tasks: &[TaskSpec],
        floors: &[QosFloor],
        od_bounds: &[(TaskKey, Span)],
    ) -> Result<Admission, AdmissionError> {
        self.ctl.try_admit_bounded(tasks, floors, od_bounds)
    }

    /// Evicts `keys` (see [`AdmissionController::evict`]).
    pub fn evict(&mut self, keys: &[TaskKey]) -> Vec<OdUpdate> {
        self.ctl.evict(keys)
    }

    /// The bins a batched eviction must re-analyze (see
    /// [`AdmissionController::evict_touched_bins`]). The serving layer
    /// stripes these across scoped planning threads.
    pub fn evict_touched_bins(&self, keys: &[TaskKey]) -> Vec<usize> {
        self.ctl.evict_touched_bins(keys)
    }

    /// Plans one touched bin of a batched eviction; read-only, so
    /// disjoint bins can be planned concurrently (see
    /// [`AdmissionController::plan_evict_bin`]).
    pub fn plan_evict_bin(&self, bin: usize, keys: &[TaskKey]) -> (usize, Vec<Span>) {
        self.ctl.plan_evict_bin(bin, keys)
    }

    /// Plans the whole eviction sequentially (see
    /// [`AdmissionController::plan_evict`]).
    pub fn plan_evict(&self, keys: &[TaskKey]) -> EvictPlan {
        self.ctl.plan_evict(keys)
    }

    /// Commits a planned eviction (see
    /// [`AdmissionController::commit_evict`]).
    pub fn commit_evict(&mut self, keys: &[TaskKey], plan: &EvictPlan) -> Vec<OdUpdate> {
        self.ctl.commit_evict(keys, plan)
    }

    /// See [`AdmissionController::fits_empty`].
    pub fn fits_empty(&self, tasks: &[TaskSpec]) -> bool {
        self.ctl.fits_empty(tasks)
    }

    /// See [`AdmissionController::resident_ods`].
    pub fn resident_ods(&self) -> Vec<(TaskKey, Span)> {
        self.ctl.resident_ods()
    }

    /// See [`AdmissionController::floor_of`].
    pub fn floor_of(&self, key: TaskKey) -> Option<Span> {
        self.ctl.floor_of(key)
    }

    /// See [`AdmissionController::resident_tasks`].
    pub fn resident_tasks(&self) -> usize {
        self.ctl.resident_tasks()
    }

    /// See [`AdmissionController::total_utilization`].
    pub fn total_utilization(&self) -> f64 {
        self.ctl.total_utilization()
    }

    /// See [`AdmissionController::thread_utilization`].
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn thread_utilization(&self, thread: HwThreadId) -> f64 {
        self.ctl.thread_utilization(thread)
    }

    /// See [`AdmissionController::hw_threads`].
    #[inline]
    pub fn hw_threads(&self) -> usize {
        self.ctl.hw_threads()
    }

    /// See [`AdmissionController::heuristic`].
    #[inline]
    pub fn heuristic(&self) -> PartitionHeuristic {
        self.ctl.heuristic()
    }

    /// See [`AdmissionController::is_full_rta`].
    #[inline]
    pub fn is_full_rta(&self) -> bool {
        self.ctl.is_full_rta()
    }

    /// See [`AdmissionController::cache_stats`].
    pub fn cache_stats(&self) -> AdmissionCacheStats {
        self.ctl.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::Span;

    fn task(name: &str, period_ms: u64, m_ms: u64, w_ms: u64) -> TaskSpec {
        let mut b = TaskSpec::builder(name);
        b.period(Span::from_millis(period_ms))
            .mandatory(Span::from_millis(m_ms))
            .windup(Span::from_millis(w_ms));
        b.build().unwrap()
    }

    /// Utilization 0.6 — at most one per thread.
    fn heavy(name: &str) -> TaskSpec {
        task(name, 100, 30, 30)
    }

    #[test]
    fn contiguous_shard_map() {
        let s = ShardedAdmission::new(8, PartitionHeuristic::FirstFitDecreasing, 4, false);
        assert_eq!(s.shards(), 4);
        assert_eq!(
            (0..8).map(|b| s.shard_of(b)).collect::<Vec<_>>(),
            vec![0, 0, 1, 1, 2, 2, 3, 3]
        );
    }

    #[test]
    fn auto_shard_rule() {
        // One shard per 32 threads, clamped to the machine.
        for (hw, want) in [(1, 1), (8, 1), (32, 1), (33, 2), (64, 2), (228, 8), (1024, 32)] {
            let s = ShardedAdmission::new(hw, PartitionHeuristic::WorstFitDecreasing, 0, false);
            assert_eq!(s.shards(), want, "hw_threads = {hw}");
        }
        // Requested shards are clamped to the thread count.
        let s = ShardedAdmission::new(2, PartitionHeuristic::WorstFitDecreasing, 8, false);
        assert_eq!(s.shards(), 2);
    }

    #[test]
    fn decisions_identical_to_unsharded() {
        // Sharding is pure metadata: any shard count yields the same
        // placements, ODs, and rejections as the plain controller.
        let mut plain = AdmissionController::new(8, PartitionHeuristic::WorstFitDecreasing);
        let mut sharded = ShardedAdmission::new(8, PartitionHeuristic::WorstFitDecreasing, 4, false);
        for i in 0..12 {
            let batch = [task(&format!("t{i}"), 100 - (i % 3) as u64 * 20, 10 + i as u64, 5)];
            let a = plain.try_admit(&batch);
            let b = sharded.try_admit(&batch);
            assert_eq!(a, b, "submission {i}");
        }
        assert_eq!(plain.resident_ods(), sharded.resident_ods());
    }

    #[test]
    fn plan_reports_shard_masks_and_fallback() {
        // 4 threads, 2 shards; WFD fills emptiest-first so the first two
        // heavies land in shard 0 (bins 0, 1).
        let mut s = ShardedAdmission::new(4, PartitionHeuristic::FirstFitDecreasing, 2, false);
        let p = s.plan(&[heavy("a")], &[], &[]).unwrap();
        assert_eq!(p.primary_shard(), 0);
        assert!(!p.is_cross_shard());
        assert_eq!(p.placed_shards(), 0b01);
        s.try_admit(&[heavy("a")]).unwrap();
        s.try_admit(&[heavy("b")]).unwrap();
        // Shard 0 is now full: FFD examines its bins first (fails), then
        // falls into shard 1 — a cross-shard placement.
        let p = s.plan(&[heavy("c")], &[], &[]).unwrap();
        assert_eq!(p.primary_shard(), 0, "first-ranked candidate is still bin 0");
        assert!(p.is_cross_shard());
        assert_eq!(p.placed_shards(), 0b10);
        assert_eq!(p.examined_shards(), 0b11, "search crossed both shards");
        let a = s.commit(&[heavy("c")], &[], &p);
        assert_eq!(a.tasks[0].hw_thread.index(), 2);
    }

    #[test]
    fn disjoint_plans_examine_disjoint_shards() {
        // With per-shard pressure, two independent light submissions on
        // an empty machine both rank bin 0 first — but after committing
        // one, the other's plan (WFD) goes to an empty bin. The masks
        // expose exactly the overlap the serving layer must check.
        let mut s = ShardedAdmission::new(4, PartitionHeuristic::WorstFitDecreasing, 4, false);
        let p1 = s.plan(&[heavy("a")], &[], &[]).unwrap();
        s.commit(&[heavy("a")], &[], &p1);
        let p2 = s.plan(&[heavy("b")], &[], &[]).unwrap();
        assert_eq!(p2.placed_shards() & p1.placed_shards(), 0, "WFD spreads");
    }
}
