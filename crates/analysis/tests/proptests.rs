//! Property-based tests for the analysis substrate.

use proptest::prelude::*;
use rtseed_analysis::bounds::{hyperbolic_schedulable, liu_layland_schedulable};
use rtseed_analysis::rmwp::RmwpAnalysis;
use rtseed_analysis::rta::{all_schedulable, response_time, Interferer};
use rtseed_analysis::taskgen::{generate, log_uniform_period, uunifast, TaskGenConfig};
use rtseed_model::{Span, TaskSet};

proptest! {
    #[test]
    fn uunifast_always_sums(n in 1usize..30, total in 0.01f64..8.0, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let utils = uunifast(&mut rng, n, total);
        prop_assert_eq!(utils.len(), n);
        let sum: f64 = utils.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9);
        prop_assert!(utils.iter().all(|&u| u >= -1e-12));
    }

    #[test]
    fn log_uniform_stays_in_range(seed in 0u64..1000, lo in 1u64..1_000_000, width in 0u64..1_000_000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let min = Span::from_nanos(lo);
        let max = Span::from_nanos(lo + width);
        let p = log_uniform_period(&mut rng, min, max);
        prop_assert!(p >= min && p <= max);
    }

    /// RTA is monotone in cost: more execution never shrinks the response.
    #[test]
    fn rta_monotone_in_cost(c1 in 1u64..1000, extra in 0u64..1000) {
        let hp = [Interferer {
            period: Span::from_micros(50),
            demand: Span::from_micros(10),
        }];
        let bound = Span::from_millis(100);
        let r1 = response_time(Span::from_micros(c1), &hp, bound);
        let r2 = response_time(Span::from_micros(c1 + extra), &hp, bound);
        if let (Ok(r1), Ok(r2)) = (r1, r2) {
            prop_assert!(r2 >= r1);
        }
    }

    /// Response time is at least the cost plus one job of every interferer.
    #[test]
    fn rta_lower_bound(cost in 1u64..10_000) {
        let hp = [
            Interferer { period: Span::from_micros(100), demand: Span::from_micros(7) },
            Interferer { period: Span::from_micros(300), demand: Span::from_micros(11) },
        ];
        if let Ok(r) = response_time(Span::from_nanos(cost), &hp, Span::from_secs(1)) {
            prop_assert!(r >= Span::from_nanos(cost) + Span::from_micros(18));
        }
    }

    /// Utilization-bound tests are *sufficient*: whenever they accept, the
    /// exact RTA accepts too.
    #[test]
    fn bounds_imply_rta(seed in 0u64..300, n in 1usize..8) {
        let set = generate(&TaskGenConfig {
            tasks: n,
            total_utilization: 0.9,
            optional_parts: (0, 0),
            ..TaskGenConfig::default()
        }, seed);
        let order = set.rm_order();
        let pairs: Vec<(Span, Span)> = order
            .iter()
            .map(|&id| {
                let t = set.task(id);
                (t.wcet(), t.period())
            })
            .collect();
        if liu_layland_schedulable(&set) || hyperbolic_schedulable(&set) {
            prop_assert!(all_schedulable(&pairs), "sufficient bound accepted an RTA-rejected set");
        }
    }

    /// RMWP schedulable ⇒ plain RM (on C = m + w) schedulable: RMWP's test
    /// is strictly more conservative.
    #[test]
    fn rmwp_implies_rm(seed in 0u64..300, n in 1usize..6) {
        let set = generate(&TaskGenConfig {
            tasks: n,
            total_utilization: 0.7,
            ..TaskGenConfig::default()
        }, seed);
        if RmwpAnalysis::analyze(&set).is_ok() {
            let order = set.rm_order();
            let pairs: Vec<(Span, Span)> = order
                .iter()
                .map(|&id| (set.task(id).wcet(), set.task(id).period()))
                .collect();
            prop_assert!(all_schedulable(&pairs));
        }
    }

    /// The analysis is deterministic and order-independent in ids.
    #[test]
    fn analysis_deterministic(seed in 0u64..300) {
        let set = generate(&TaskGenConfig {
            tasks: 4,
            total_utilization: 0.5,
            ..TaskGenConfig::default()
        }, seed);
        let a = RmwpAnalysis::analyze(&set);
        let b = RmwpAnalysis::analyze(&set);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                for id in set.ids() {
                    prop_assert_eq!(a.optional_deadline(id), b.optional_deadline(id));
                }
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "non-deterministic schedulability"),
        }
    }

    /// Higher-priority demand can only shrink a lower-priority OD.
    #[test]
    fn od_antimonotone_in_interference(extra_ms in 1u64..40) {
        let mk = |hp_cost: u64| {
            let hi = rtseed_model::TaskSpec::builder("hi")
                .period(Span::from_millis(100))
                .mandatory(Span::from_millis(hp_cost))
                .windup(Span::from_millis(5))
                .build()
                .unwrap();
            let lo = rtseed_model::TaskSpec::builder("lo")
                .period(Span::from_millis(1000))
                .mandatory(Span::from_millis(50))
                .windup(Span::from_millis(50))
                .build()
                .unwrap();
            TaskSet::new(vec![hi, lo]).unwrap()
        };
        let light = RmwpAnalysis::analyze(&mk(1));
        let heavy = RmwpAnalysis::analyze(&mk(1 + extra_ms));
        if let (Ok(light), Ok(heavy)) = (light, heavy) {
            let id = rtseed_model::TaskId(1);
            prop_assert!(heavy.optional_deadline(id) <= light.optional_deadline(id));
        }
    }
}
