//! Seeded chaos scenarios for the serving layer: churn × fault storms ×
//! submission bursts, all derived from one seed.
//!
//! A [`ChaosPlan`] is pure data — a [`ChurnPlan`] of queued submission
//! bursts and departures plus a [`FaultPlan`] of WCET storms — generated
//! deterministically from a `(config, seed)` pair by [`chaos_plan`]. The
//! serving layer replays it like any other churn plan, so the same seed
//! always produces the same admissions, sheds, health transitions, and
//! trace bytes. The chaos harness (`chaosbench` and the serving-layer
//! chaos proptests) asserts its graceful-degradation invariants over many
//! seeds without ever hand-writing a scenario.
//!
//! Which tenants are "rogue" is not scripted here: WCET storms target
//! engine task slots, and the harness classifies tenants *post hoc* from
//! the `wcet_fault` events in the trace — a tenant is compliant iff no
//! fault ever fired on one of its tasks.

use rtseed_model::{QosFloor, Span, TaskSpec, Time};

use crate::churn::ChurnPlan;
use crate::fault::{FaultPlan, FaultTarget, JobWindow, WcetFault};

/// Shape of a generated chaos scenario ([`chaos_plan`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Queued tenant submissions scattered over the churn window.
    pub tenants: usize,
    /// Largest same-instant submission burst the generator may emit.
    pub burst_max: usize,
    /// Scripted departures in the second half of the window.
    pub departures: usize,
    /// WCET fault storms aimed at engine task slots (rogue tenants).
    pub storms: usize,
    /// Largest demand multiplier a storm may draw (≥ 2).
    pub storm_factor_max: f64,
    /// Window over which submissions are scattered.
    pub window: Span,
    /// Queue deadline for every submission (from its submit instant).
    pub timeout: Span,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            tenants: 24,
            burst_max: 4,
            departures: 8,
            storms: 3,
            storm_factor_max: 30.0,
            window: Span::from_millis(600),
            timeout: Span::from_millis(400),
        }
    }
}

impl ChaosConfig {
    /// A smaller scenario for smoke runs (`chaosbench --quick`).
    pub fn quick() -> ChaosConfig {
        ChaosConfig {
            tenants: 10,
            departures: 3,
            storms: 2,
            ..ChaosConfig::default()
        }
    }
}

/// A generated scenario: churn script plus fault schedule, replayable
/// byte-for-byte from `(config, seed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// The seed everything was derived from.
    pub seed: u64,
    /// Submission bursts and departures.
    pub churn: ChurnPlan,
    /// The WCET storms (and the executor's jitter seed).
    pub faults: FaultPlan,
}

/// A splitmix64 stream: the standard 64-bit mixer, good enough for
/// scenario generation and fully portable (no `rand` dependency on this
/// path).
#[derive(Debug, Clone)]
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `0` when `n == 0`.
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The task set tenant `i` submits: one or two pipeline tasks with
/// periods, demands, and optional-part counts drawn from the stream.
fn tenant_tasks(rng: &mut Mix, i: usize) -> Vec<TaskSpec> {
    let count = 1 + rng.below(2) as usize;
    (0..count)
        .map(|k| {
            let period_ms = [40u64, 50, 80, 100][rng.below(4) as usize];
            let mandatory_ms = 3 + rng.below(6);
            let windup_ms = 2 + rng.below(4);
            let parts = rng.below(4) as usize;
            let part_ms = 5 + rng.below(11);
            TaskSpec::builder(format!("c{i}/{k}"))
                .period(Span::from_millis(period_ms))
                .mandatory(Span::from_millis(mandatory_ms))
                .windup(Span::from_millis(windup_ms))
                .optional_parts(parts, Span::from_millis(part_ms))
                .build()
                .expect("generated demands stay far below the period")
        })
        .collect()
}

/// Generates the deterministic chaos scenario for `(cfg, seed)`.
///
/// Submissions go through the bounded submit queue in bursts of up to
/// [`ChaosConfig::burst_max`] same-instant requests; each draws a QoS
/// floor (none, or 30–90 % of its granted OD). Departures hit distinct
/// tenants in the second half of the window. Storms are mandatory or
/// wind-up WCET faults over a bounded job window, aimed at engine task
/// slots — slots that never materialize (the submission was rejected)
/// simply never fire.
pub fn chaos_plan(cfg: &ChaosConfig, seed: u64) -> ChaosPlan {
    let mut rng = Mix(seed ^ 0xC4A0_5C4A_05C4_A05C);
    let mut churn = ChurnPlan::new();

    // Submission bursts: the time cursor advances between bursts, and up
    // to `burst_max` tenants share each instant.
    let mut at = Time::ZERO;
    let mut in_burst = 0usize;
    for i in 0..cfg.tenants {
        if in_burst > rng.below(cfg.burst_max.max(1) as u64) as usize {
            let step_ns = 10_000_000 + rng.below(50_000_000);
            at += Span::from_nanos(step_ns.min(cfg.window.as_nanos()));
            in_burst = 0;
        }
        let floor = if rng.below(3) == 0 {
            QosFloor::none()
        } else {
            QosFloor::fraction(0.3 + 0.6 * rng.unit())
        };
        churn = churn.submit(at, format!("c{i}"), tenant_tasks(&mut rng, i), floor, cfg.timeout);
        in_burst += 1;
    }

    // Departures: distinct tenants, second half of the window.
    let half = cfg.window.as_nanos() / 2;
    let mut departed = Vec::new();
    while departed.len() < cfg.departures.min(cfg.tenants) {
        let who = rng.below(cfg.tenants as u64);
        if departed.contains(&who) {
            continue;
        }
        departed.push(who);
        let when = Time::from_nanos(half + rng.below(half.max(1)));
        churn = churn.depart(when, format!("c{who}"));
    }

    // Fault storms: each picks an engine slot, a job window, a real-time
    // part, and a demand multiplier.
    let mut faults = FaultPlan::new(seed);
    for _ in 0..cfg.storms {
        let slot = rng.below(cfg.tenants as u64) as u32;
        let from = rng.below(6);
        // Long enough that a storm on a single-task tenant can walk the
        // whole health ladder (Degraded → Quarantined → Evicted).
        let len = 1 + rng.below(14);
        let target = if rng.below(4) == 0 {
            FaultTarget::Windup
        } else {
            FaultTarget::Mandatory
        };
        let factor = 2.0 + (cfg.storm_factor_max - 2.0).max(0.0) * rng.unit();
        faults = faults.with_wcet_fault(WcetFault {
            task: Some(slot),
            jobs: JobWindow::new(from, from + len),
            target,
            factor,
        });
    }

    ChaosPlan { seed, churn, faults }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnAction;

    #[test]
    fn same_seed_same_plan() {
        let cfg = ChaosConfig::default();
        assert_eq!(chaos_plan(&cfg, 42), chaos_plan(&cfg, 42));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ChaosConfig::default();
        assert_ne!(chaos_plan(&cfg, 1), chaos_plan(&cfg, 2));
    }

    #[test]
    fn plan_has_the_configured_shape() {
        let cfg = ChaosConfig::default();
        let plan = chaos_plan(&cfg, 7);
        let submits = plan
            .churn
            .events()
            .iter()
            .filter(|e| matches!(e.action, ChurnAction::Submit { .. }))
            .count();
        let departs = plan
            .churn
            .events()
            .iter()
            .filter(|e| matches!(e.action, ChurnAction::Depart { .. }))
            .count();
        assert_eq!(submits, cfg.tenants);
        assert_eq!(departs, cfg.departures);
        // Bursts exist: at least two submissions share an instant across
        // a handful of seeds.
        let bursty = (0..8).any(|seed| {
            let p = chaos_plan(&cfg, seed);
            let mut times: Vec<u64> = p
                .churn
                .events()
                .iter()
                .filter(|e| matches!(e.action, ChurnAction::Submit { .. }))
                .map(|e| e.at.as_nanos())
                .collect();
            let before = times.len();
            times.dedup();
            times.len() < before
        });
        assert!(bursty, "no seed produced a same-instant burst");
    }
}
